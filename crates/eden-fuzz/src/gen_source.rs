//! Random-but-type-correct eden-lang sources.
//!
//! The generator builds a random (but always valid) state schema, then a
//! statement sequence that respects every static rule the type checker
//! enforces: names are bound before use, only `let mutable` locals and
//! `ReadWrite` state are assigned, arrays are touched through aliases, and
//! value-position `if`s always carry an `else`. Runtime traps (division by
//! zero, array index out of range, negative `randRange` bounds) are left
//! in deliberately — the differential oracle requires the optimized and
//! unoptimized builds to trap *identically*, so traps are signal, not
//! noise. Recursion is emitted only from self-terminating templates whose
//! argument is clamped, keeping call depth under the VM limit.

use crate::rng::FuzzRng;
use eden_lang::{Access, Schema};

/// A generated schema in list form — the differential host is sized from
/// this, and failure reports render it.
#[derive(Debug, Clone)]
pub struct SchemaDesc {
    /// `(name, writable)` per scope.
    pub pkt: Vec<(String, bool)>,
    pub msg: Vec<(String, bool)>,
    pub glob: Vec<(String, bool)>,
    /// `(name, element fields, writable)`.
    pub arrays: Vec<(String, Vec<String>, bool)>,
}

impl SchemaDesc {
    pub fn to_schema(&self) -> Schema {
        let acc = |w: bool| {
            if w {
                Access::ReadWrite
            } else {
                Access::ReadOnly
            }
        };
        let mut s = Schema::new();
        for (n, w) in &self.pkt {
            s = s.packet_field(n, acc(*w), None);
        }
        for (n, w) in &self.msg {
            s = s.msg_field(n, acc(*w));
        }
        for (n, w) in &self.glob {
            s = s.global_field(n, acc(*w));
        }
        for (n, fields, w) in &self.arrays {
            let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            s = s.global_array(n, &refs, acc(*w));
        }
        s
    }
}

/// A generated fuzz case: schema + source, ready for both compile modes.
#[derive(Debug, Clone)]
pub struct SourceCase {
    pub desc: SchemaDesc,
    pub source: String,
}

pub fn gen_schema(rng: &mut FuzzRng) -> SchemaDesc {
    let field = |prefix: &str, i: usize| format!("{prefix}{i}");
    let mut pkt = Vec::new();
    for i in 0..rng.range(1, 4) {
        pkt.push((field("P", i), rng.chance(2, 3)));
    }
    let mut msg = Vec::new();
    for i in 0..rng.range(0, 3) {
        msg.push((field("M", i), rng.chance(2, 3)));
    }
    let mut glob = Vec::new();
    for i in 0..rng.range(0, 3) {
        glob.push((field("G", i), rng.chance(2, 3)));
    }
    let mut arrays = Vec::new();
    for i in 0..rng.range(0, 3) {
        let nf = rng.range(1, 3);
        let fields = (0..nf).map(|j| field("F", j)).collect();
        arrays.push((format!("Xs{i}"), fields, rng.chance(1, 2)));
    }
    SchemaDesc {
        pkt,
        msg,
        glob,
        arrays,
    }
}

/// Scope of names visible at a generation point.
struct Env {
    /// Immutable and mutable locals (mutable ones are assignable).
    imm: Vec<String>,
    mutb: Vec<String>,
    /// `(alias, array index in the schema)`.
    aliases: Vec<(String, usize)>,
    next_id: usize,
}

impl Env {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = format!("{prefix}{}", self.next_id);
        self.next_id += 1;
        n
    }
}

pub fn gen_source(rng: &mut FuzzRng, desc: &SchemaDesc) -> String {
    let mut env = Env {
        imm: Vec::new(),
        mutb: Vec::new(),
        aliases: Vec::new(),
        next_id: 0,
    };
    let mut lines = Vec::new();
    // bind every array up front so expressions can index them
    for (i, (name, _, _)) in desc.arrays.iter().enumerate() {
        if rng.chance(3, 4) {
            let alias = env.fresh("arr");
            lines.push(format!("let {alias} = _global.{name}"));
            env.aliases.push((alias, i));
        }
    }
    let n_stmts = rng.range(2, 9);
    for _ in 0..n_stmts {
        lines.push(gen_statement(rng, desc, &mut env));
    }
    // occasionally end on a divergent disposition or a value expression
    match rng.below(5) {
        0 => lines.push("drop ()".to_string()),
        1 => lines.push("toController ()".to_string()),
        2 => lines.push(format!("gotoTable ({})", gen_clamped(rng, desc, &env, 4))),
        _ => lines.push(gen_expr(rng, desc, &env, 2)),
    }
    render(&lines)
}

/// Assemble body lines under the fixed 3-parameter header.
pub fn render(lines: &[String]) -> String {
    let mut s = String::from("fun (packet: Packet, msg: Message, _global: Global) ->\n");
    for l in lines {
        s.push_str("    ");
        s.push_str(l);
        s.push('\n');
    }
    s
}

/// Split a rendered source back into its body lines (for the minimizer).
pub fn body_lines(source: &str) -> Vec<String> {
    source
        .lines()
        .skip(1)
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect()
}

fn gen_statement(rng: &mut FuzzRng, desc: &SchemaDesc, env: &mut Env) -> String {
    // collect assignable targets once; fall back to a `let` when none exist
    let mut writes: Vec<String> = Vec::new();
    for (n, w) in &desc.pkt {
        if *w {
            writes.push(format!("packet.{n}"));
        }
    }
    for (n, w) in &desc.msg {
        if *w {
            writes.push(format!("msg.{n}"));
        }
    }
    for (n, w) in &desc.glob {
        if *w {
            writes.push(format!("_global.{n}"));
        }
    }
    match rng.below(10) {
        0 | 1 => {
            // let binding, sometimes recursive
            if rng.chance(1, 5) {
                return gen_let_rec(rng, desc, env);
            }
            let v = gen_expr(rng, desc, env, 2);
            let name = env.fresh("x");
            if rng.chance(1, 3) {
                env.mutb.push(name.clone());
                format!("let mutable {name} = {v}")
            } else {
                env.imm.push(name.clone());
                format!("let {name} = {v}")
            }
        }
        2 if !env.mutb.is_empty() => {
            let t = rng.pick(&env.mutb).clone();
            format!("{t} <- {}", gen_expr(rng, desc, env, 2))
        }
        3 | 4 if !writes.is_empty() => {
            let t = rng.pick(&writes).clone();
            format!("{t} <- {}", gen_expr(rng, desc, env, 2))
        }
        5 if has_writable_alias(desc, env) => {
            let (alias, fields) = pick_writable_alias(rng, desc, env);
            let field = rng.pick(&fields).clone();
            let idx = gen_index(rng, desc, env, &alias);
            format!("{alias}.[{idx}].{field} <- {}", gen_expr(rng, desc, env, 2))
        }
        6 => {
            // unit `if` statement; branches are effect blocks
            let cond = gen_expr(rng, desc, env, 1);
            let then = gen_effect_block(rng, desc, env, &writes);
            if rng.chance(1, 2) {
                let els = gen_effect_block(rng, desc, env, &writes);
                format!("if {cond} then ({then}) else ({els})")
            } else {
                format!("if {cond} then ({then})")
            }
        }
        7 => format!(
            "setQueue (({} % 3 + 1), {})",
            gen_expr(rng, desc, env, 1),
            gen_expr(rng, desc, env, 1)
        ),
        _ => gen_expr(rng, desc, env, 2), // discarded value statement
    }
}

fn gen_let_rec(rng: &mut FuzzRng, desc: &SchemaDesc, env: &mut Env) -> String {
    let f = env.fresh("rec");
    let base = gen_expr(rng, desc, env, 1);
    let step = gen_expr(rng, desc, env, 1);
    let body = if rng.chance(1, 2) {
        // tail form: compiled to a loop by the §3.4.4 optimization
        format!("if n <= 0 then {base} else {f} ((n - 1))")
    } else {
        // non-tail form: real call frames; the clamp keeps depth < the
        // VM's call-depth limit
        format!("if n <= 0 then {base} else ({step} + {f} ((n - 1)))")
    };
    let arg = gen_clamped(rng, desc, env, 10);
    let name = env.fresh("x");
    let out = format!("let rec {f} n = {body}\n    let {name} = {f} ({arg})");
    env.imm.push(name);
    out
}

/// A short `;`-joined block of unit statements for `if` arms.
fn gen_effect_block(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env, writes: &[String]) -> String {
    let mut parts = Vec::new();
    for _ in 0..rng.range(1, 3) {
        if !writes.is_empty() && rng.chance(3, 4) {
            let t = rng.pick(writes).clone();
            parts.push(format!("{t} <- {}", gen_expr(rng, desc, env, 1)));
        } else if !env.mutb.is_empty() {
            let t = rng.pick(&env.mutb).clone();
            parts.push(format!("{t} <- {}", gen_expr(rng, desc, env, 1)));
        } else {
            parts.push(format!("setQueue (1, {})", gen_expr(rng, desc, env, 1)));
        }
    }
    parts.join("; ")
}

fn has_writable_alias(desc: &SchemaDesc, env: &Env) -> bool {
    env.aliases.iter().any(|(_, i)| desc.arrays[*i].2)
}

fn pick_writable_alias(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env) -> (String, Vec<String>) {
    let options: Vec<&(String, usize)> = env
        .aliases
        .iter()
        .filter(|(_, i)| desc.arrays[*i].2)
        .collect();
    let (alias, i) = rng.pick(&options);
    (alias.clone(), desc.arrays[*i].1.clone())
}

/// An index expression, usually bounded by the array length so loads land
/// in range, occasionally wild so out-of-range trapping is exercised.
fn gen_index(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env, alias: &str) -> String {
    if rng.chance(4, 5) {
        format!("({} % ({alias}.Length + 1))", gen_expr(rng, desc, env, 1))
    } else {
        gen_expr(rng, desc, env, 1)
    }
}

/// A small always-non-negative expression (recursion arguments, table ids).
fn gen_clamped(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env, bound: i64) -> String {
    format!(
        "(({}) % {bound} + ({} % {bound}))",
        gen_expr(rng, desc, env, 1),
        rng.below(bound as u64)
    )
}

/// An Int-typed expression. `depth` bounds nesting so the unoptimized
/// build's operand stack stays well under the VM limit (resource-limit
/// asymmetry between the two builds is skipped, not flagged, but rare is
/// better).
fn gen_expr(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env, depth: u32) -> String {
    if depth == 0 {
        return gen_leaf(rng, desc, env);
    }
    match rng.below(12) {
        0..=3 => gen_leaf(rng, desc, env),
        4 => format!("(-({}))", gen_expr(rng, desc, env, depth - 1)),
        5 => format!("(not ({}))", gen_expr(rng, desc, env, depth - 1)),
        6 => {
            let c = gen_expr(rng, desc, env, depth - 1);
            let a = gen_expr(rng, desc, env, depth - 1);
            let b = gen_expr(rng, desc, env, depth - 1);
            format!("(if {c} then {a} else {b})")
        }
        7 => match rng.below(4) {
            0 => "rand ()".to_string(),
            1 => {
                // usually a positive bound; sometimes raw to hit the trap
                if rng.chance(4, 5) {
                    format!("randRange (({} % 7 + 8))", gen_expr(rng, desc, env, 0))
                } else {
                    format!("randRange ({})", gen_expr(rng, desc, env, 0))
                }
            }
            2 => "now ()".to_string(),
            _ => format!(
                "hash ({}, {})",
                gen_expr(rng, desc, env, depth - 1),
                gen_expr(rng, desc, env, 0)
            ),
        },
        _ => {
            let op = *rng.pick(&[
                "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "&&", "||",
            ]);
            let a = gen_expr(rng, desc, env, depth - 1);
            let b = if (op == "/" || op == "%") && rng.chance(4, 5) {
                // usually a non-zero denominator; sometimes raw to hit the
                // divide-by-zero trap in both builds
                format!("({} % 5 + 7)", gen_expr(rng, desc, env, 0))
            } else {
                gen_expr(rng, desc, env, depth - 1)
            };
            format!("({a} {op} {b})")
        }
    }
}

fn gen_leaf(rng: &mut FuzzRng, desc: &SchemaDesc, env: &Env) -> String {
    let mut reads: Vec<String> = Vec::new();
    for (n, _) in &desc.pkt {
        reads.push(format!("packet.{n}"));
    }
    for (n, _) in &desc.msg {
        reads.push(format!("msg.{n}"));
    }
    for (n, _) in &desc.glob {
        reads.push(format!("_global.{n}"));
    }
    for n in env.imm.iter().chain(env.mutb.iter()) {
        reads.push(n.clone());
    }
    match rng.below(10) {
        0..=2 => rng.interesting_i64().to_string(),
        3 if !env.aliases.is_empty() => {
            let (alias, i) = rng.pick(&env.aliases).clone();
            if rng.chance(1, 4) {
                format!("{alias}.Length")
            } else {
                let field = rng.pick(&desc.arrays[i].1).clone();
                // leaf position: index by a literal or schema field read,
                // bounded by length so most loads succeed
                let idx = if reads.is_empty() {
                    rng.below(4).to_string()
                } else {
                    rng.pick(&reads).clone()
                };
                format!("{alias}.[({idx} % ({alias}.Length + 1))].{field}")
            }
        }
        _ if !reads.is_empty() => rng.pick(&reads).clone(),
        _ => rng.interesting_i64().to_string(),
    }
}

/// A complete generated case.
pub fn gen_case(rng: &mut FuzzRng) -> SourceCase {
    let desc = gen_schema(rng);
    let source = gen_source(rng, &desc);
    SourceCase { desc, source }
}
