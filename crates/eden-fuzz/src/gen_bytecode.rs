//! Raw bytecode generation and byte-level mutation.
//!
//! Two generators feed the verifier oracle:
//!
//! * **wild** — arbitrary op vectors with *mostly* plausible operands
//!   (slots that usually exist, jump targets that are usually in range).
//!   Fully random operands would make the verifier reject ~everything at
//!   the first op; biased operands keep a useful share of programs alive
//!   deep into the dataflow pass, where the interesting bugs live.
//! * **structured** — stack-depth-tracked straight-line programs that are
//!   correct by construction, exercising the *accept* path: the verifier
//!   must pass them and the interpreter must then never hit a
//!   verifier-class trap.
//!
//! [`mutate_bytes`] is the shared byte mutator for the codec oracle.

use crate::rng::FuzzRng;
use eden_vm::{Cmp, FuncInfo, Op};

/// A generated raw program, pre-verification.
#[derive(Debug, Clone)]
pub struct RawProgram {
    pub ops: Vec<Op>,
    pub funcs: Vec<FuncInfo>,
    pub entry_locals: u8,
}

/// Locals/slots/arrays the verifier-oracle host will actually provide;
/// wild operands are biased toward (but not limited to) these.
pub const HOST_SLOTS: u8 = 8;
pub const HOST_ARRAYS: u8 = 4;

fn wild_slot(rng: &mut FuzzRng) -> u8 {
    if rng.chance(9, 10) {
        rng.below(HOST_SLOTS as u64 + 2) as u8
    } else {
        rng.next_u64() as u8
    }
}

fn wild_array(rng: &mut FuzzRng) -> u8 {
    if rng.chance(9, 10) {
        rng.below(HOST_ARRAYS as u64 + 1) as u8
    } else {
        rng.next_u64() as u8
    }
}

fn wild_target(rng: &mut FuzzRng, len: usize) -> u32 {
    if rng.chance(15, 16) {
        rng.below(len as u64 + 2) as u32
    } else {
        rng.next_u64() as u32
    }
}

fn wild_cmp(rng: &mut FuzzRng) -> Cmp {
    *rng.pick(&[Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge])
}

fn wild_op(rng: &mut FuzzRng, len: usize, nfuncs: usize) -> Op {
    match rng.below(29) {
        0 => Op::Push(rng.interesting_i64()),
        1 => Op::Dup,
        2 => Op::Pop,
        3 => Op::Swap,
        4 => Op::LoadLocal(wild_slot(rng)),
        5 => Op::StoreLocal(wild_slot(rng)),
        6 => Op::LoadPkt(wild_slot(rng)),
        7 => Op::StorePkt(wild_slot(rng)),
        8 => Op::LoadMsg(wild_slot(rng)),
        9 => Op::StoreMsg(wild_slot(rng)),
        10 => Op::LoadGlob(wild_slot(rng)),
        11 => Op::StoreGlob(wild_slot(rng)),
        12 => Op::ArrLoad(wild_array(rng)),
        13 => Op::ArrStore(wild_array(rng)),
        14 => Op::ArrLen(wild_array(rng)),
        15 => *rng.pick(&[Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Rem, Op::Neg]),
        16 => *rng.pick(&[Op::And, Op::Or, Op::Xor, Op::Not, Op::Shl, Op::Shr]),
        17 => *rng.pick(&[Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge]),
        18 => Op::Jmp(wild_target(rng, len)),
        19 => Op::JmpIf(wild_target(rng, len)),
        20 => Op::JmpIfNot(wild_target(rng, len)),
        21 => Op::Call(rng.below(nfuncs as u64 + 2) as u16),
        22 => Op::Ret,
        23 => *rng.pick(&[Op::Rand, Op::RandRange, Op::Now, Op::Hash]),
        24 => *rng.pick(&[Op::Drop, Op::SetQueue, Op::ToController, Op::GotoTable]),
        // codec-v2 superinstructions get the same wild treatment as the
        // ops they fuse
        25 => match rng.below(7) {
            0 => Op::AddImm(rng.interesting_i64()),
            1 => Op::MulImm(rng.interesting_i64()),
            2 => Op::LoadPktAddImm(wild_slot(rng), rng.interesting_i64()),
            3 => Op::LoadPktMulImm(wild_slot(rng), rng.interesting_i64()),
            4 => Op::IncrLocal(wild_slot(rng), rng.interesting_i64()),
            5 => Op::IncrMsg(wild_slot(rng), rng.interesting_i64()),
            _ => Op::IncrGlob(wild_slot(rng), rng.interesting_i64()),
        },
        26 => Op::CmpBr(wild_cmp(rng), wild_target(rng, len)),
        27 => Op::PushCmpBr(wild_cmp(rng), rng.interesting_i64(), wild_target(rng, len)),
        _ => Op::Halt,
    }
}

/// Arbitrary op vector; most are rejected by the verifier (that's the
/// point — every rejection path gets exercised), some survive and run.
pub fn gen_wild(rng: &mut FuzzRng) -> RawProgram {
    let len = rng.range(1, 40);
    let nfuncs = rng.below(3) as usize;
    let funcs = (0..nfuncs)
        .map(|_| {
            let arity = rng.below(3) as u8;
            FuncInfo {
                entry: if rng.chance(15, 16) {
                    rng.below(len as u64) as u32
                } else {
                    rng.next_u64() as u32
                },
                arity,
                n_locals: if rng.chance(7, 8) {
                    arity + rng.below(3) as u8
                } else {
                    rng.next_u64() as u8
                },
            }
        })
        .collect();
    let ops = (0..len).map(|_| wild_op(rng, len, nfuncs)).collect();
    RawProgram {
        ops,
        funcs,
        entry_locals: HOST_SLOTS,
    }
}

/// Stack-tracked straight-line program: always verifies, and the verifier
/// accepting it is then a *promise* the oracle holds the interpreter to.
pub fn gen_structured(rng: &mut FuzzRng) -> RawProgram {
    let n = rng.range(3, 30);
    let mut ops: Vec<Op> = Vec::with_capacity(n + 1);
    let mut depth: i32 = 0;
    for _ in 0..n {
        // pick ops legal at the current depth; keep depth modest so the
        // runtime stack limit stays out of the picture
        let imm = rng.interesting_i64();
        let slot = rng.below(HOST_SLOTS as u64) as u8;
        let arr = rng.below(HOST_ARRAYS as u64) as u8;
        let op = if depth == 0 {
            match rng.below(11) {
                0 => Op::Push(imm),
                1 => Op::LoadLocal(slot),
                2 => Op::LoadPkt(slot),
                3 => Op::LoadGlob(slot),
                4 => Op::ArrLen(arr),
                5 => Op::Rand,
                6 => Op::LoadPktAddImm(slot, imm),
                7 => Op::LoadPktMulImm(slot, imm),
                8 => Op::IncrLocal(slot, imm),
                9 => Op::IncrMsg(slot, imm),
                _ => Op::Now,
            }
        } else if depth == 1 {
            match rng.below(15) {
                0 => Op::Push(imm),
                1 => Op::Dup,
                2 => Op::Pop,
                3 => Op::Neg,
                4 => Op::Not,
                5 => Op::StoreLocal(slot),
                6 => Op::StorePkt(slot),
                7 => Op::StoreMsg(slot),
                8 => Op::StoreGlob(slot),
                9 => Op::ArrLoad(arr),
                10 => Op::LoadMsg(slot),
                11 => Op::AddImm(imm),
                12 => Op::MulImm(imm),
                13 => Op::IncrGlob(slot, imm),
                _ => Op::RandRange,
            }
        } else if depth >= 6 {
            *rng.pick(&[Op::Pop, Op::Add, Op::Xor, Op::Hash, Op::Eq])
        } else {
            match rng.below(25) {
                0 => Op::Push(imm),
                1 => Op::Dup,
                2 => Op::Pop,
                3 => Op::Swap,
                4 => Op::Add,
                5 => Op::Sub,
                6 => Op::Mul,
                7 => Op::Div,
                8 => Op::Rem,
                9 => Op::And,
                10 => Op::Or,
                11 => Op::Xor,
                12 => Op::Shl,
                13 => Op::Shr,
                14 => Op::Eq,
                15 => Op::Ne,
                16 => Op::Lt,
                17 => Op::Le,
                18 => Op::Gt,
                19 => Op::Ge,
                20 => Op::Hash,
                21 => Op::ArrStore(arr),
                22 => Op::AddImm(imm),
                23 => Op::MulImm(imm),
                _ => Op::LoadLocal(slot),
            }
        };
        depth += delta(&op);
        debug_assert!(depth >= 0, "structured generator broke its own invariant");
        ops.push(op);
    }
    ops.push(Op::Halt);
    RawProgram {
        ops,
        funcs: vec![],
        entry_locals: HOST_SLOTS,
    }
}

/// Stack delta for the ops the structured generator emits (mirror of the
/// verifier's table, kept local because the VM's copy is crate-private).
fn delta(op: &Op) -> i32 {
    use Op::*;
    match op {
        Push(_) | Dup | LoadLocal(_) | LoadPkt(_) | LoadMsg(_) | LoadGlob(_) | ArrLen(_) | Rand
        | Now | LoadPktAddImm(..) | LoadPktMulImm(..) => 1,
        Pop | StoreLocal(_) | StorePkt(_) | StoreMsg(_) | StoreGlob(_) | Add | Sub | Mul | Div
        | Rem | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge | Hash | PushCmpBr(..) => {
            -1
        }
        ArrStore(_) | CmpBr(..) => -2,
        _ => 0,
    }
}

/// Apply 1–8 random byte edits: flips, insertions, deletions, and tail
/// truncation. Used on encoded programs and proto frames — the decoder
/// under test must return an error or a (different) value, never panic.
pub fn mutate_bytes(rng: &mut FuzzRng, bytes: &mut Vec<u8>) {
    let edits = rng.range(1, 8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(rng.next_u64() as u8);
            continue;
        }
        match rng.below(4) {
            0 => {
                // bit flip
                let at = rng.below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.below(8);
            }
            1 => {
                // byte overwrite (biased toward interesting values)
                let at = rng.below(bytes.len() as u64) as usize;
                let wild = rng.next_u64() as u8;
                bytes[at] = *rng.pick(&[0x00, 0x01, 0x7F, 0x80, 0xFF, wild]);
            }
            2 => {
                // insert
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.insert(at, rng.next_u64() as u8);
            }
            _ => {
                // truncate the tail
                let keep = rng.below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_vm::Program;

    #[test]
    fn structured_programs_always_verify() {
        let mut rng = FuzzRng::for_case(99, "gen-structured", 0);
        for _ in 0..200 {
            let raw = gen_structured(&mut rng);
            let r = Program::new("structured", raw.ops.clone(), raw.funcs, raw.entry_locals);
            assert!(
                r.is_ok(),
                "structured program rejected: {:?}\n{:?}",
                r,
                raw.ops
            );
        }
    }

    #[test]
    fn wild_programs_sometimes_verify() {
        let mut rng = FuzzRng::for_case(99, "gen-wild", 0);
        let mut accepted = 0;
        for _ in 0..500 {
            let raw = gen_wild(&mut rng);
            if Program::new("wild", raw.ops, raw.funcs, raw.entry_locals).is_ok() {
                accepted += 1;
            }
        }
        // the wild generator must not be so wild that nothing survives
        assert!(accepted > 0, "no wild program ever verified");
    }

    #[test]
    fn mutate_changes_bytes_deterministically() {
        let base: Vec<u8> = (0..64).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        mutate_bytes(&mut FuzzRng::for_case(5, "mut", 3), &mut a);
        mutate_bytes(&mut FuzzRng::for_case(5, "mut", 3), &mut b);
        assert_eq!(a, b, "same seed, same mutation");
        assert_ne!(a, base, "mutation changed something");
    }
}
