//! Verifier soundness: "accepted means it never traps with a
//! verifier-class error".
//!
//! Wild and structured raw programs go through [`eden_vm::Program::new`]
//! (which runs the verifier). Rejections are tallied per pinned
//! [`VerifyError`] variant — a new variant, or a variant that stops
//! firing, shows up as a tally shift in the deterministic report.
//! Acceptances are *executed*: if a verified program then traps with
//! `StackUnderflow`, `BadJump`, `BadLocal`, `BadFunction`, or
//! `ReturnFromTopLevel`, the verifier's core promise is broken and the
//! case is a failure (shrunk with ddmin over the op vector).

use crate::gen_bytecode::{gen_structured, gen_wild, RawProgram, HOST_ARRAYS, HOST_SLOTS};
use crate::minimize::ddmin;
use crate::report::{Failure, OracleReport};
use crate::rng::FuzzRng;
use eden_vm::{
    disassemble, FuncInfo, Interpreter, Limits, Op, Program, VecHost, VerifyError, VmError,
};

const FUEL: u64 = 50_000;
const MINIMIZE_BUDGET: usize = 300;

fn verify_error_tag(e: &VerifyError) -> &'static str {
    match e {
        VerifyError::JumpOutOfRange { .. } => "rejected.JumpOutOfRange",
        VerifyError::FallsOffEnd { .. } => "rejected.FallsOffEnd",
        VerifyError::InconsistentStack { .. } => "rejected.InconsistentStack",
        VerifyError::Underflow { .. } => "rejected.Underflow",
        VerifyError::LocalOutOfRange { .. } => "rejected.LocalOutOfRange",
        VerifyError::UnknownFunction { .. } => "rejected.UnknownFunction",
        VerifyError::BadFunctionEntry { .. } => "rejected.BadFunctionEntry",
        VerifyError::ArityExceedsLocals { .. } => "rejected.ArityExceedsLocals",
        VerifyError::RetAtTopLevel { .. } => "rejected.RetAtTopLevel",
        VerifyError::TooLarge(_) => "rejected.TooLarge",
        VerifyError::Empty => "rejected.Empty",
    }
}

/// Traps the verifier statically rules out. Seeing one from a verified
/// program is a soundness failure; everything else (division, array
/// bounds, resource limits, …) is legitimately dynamic.
fn is_forbidden_trap(e: &VmError) -> bool {
    matches!(
        e,
        VmError::StackUnderflow
            | VmError::BadJump(_)
            | VmError::BadLocal(_)
            | VmError::BadFunction(_)
            | VmError::ReturnFromTopLevel
    )
}

fn run_program(p: &Program, host_seed: u64) -> Result<eden_vm::Outcome, VmError> {
    let mut host = VecHost::with_slots(
        HOST_SLOTS as usize,
        HOST_SLOTS as usize,
        HOST_SLOTS as usize,
    );
    for a in 0..HOST_ARRAYS {
        host.arrays.push(vec![(a as i64 + 1) * 3; 4]);
    }
    host.seed(host_seed);
    let mut interp = Interpreter::new(Limits {
        fuel: Some(FUEL),
        ..Limits::default()
    });
    interp.run(p, &mut host)
}

/// Does this exact (ops, funcs) pair verify and then hit a forbidden
/// trap? Used both for detection and as the ddmin predicate.
fn soundness_broken(
    ops: &[Op],
    funcs: &[FuncInfo],
    entry_locals: u8,
    host_seed: u64,
) -> Option<VmError> {
    let p = Program::new("fuzz", ops.to_vec(), funcs.to_vec(), entry_locals).ok()?;
    match run_program(&p, host_seed) {
        Err(e) if is_forbidden_trap(&e) => Some(e),
        _ => None,
    }
}

fn runtime_tag(r: &Result<eden_vm::Outcome, VmError>) -> &'static str {
    match r {
        Ok(_) => "accepted.ran_ok",
        Err(VmError::OutOfFuel) => "accepted.out_of_fuel",
        Err(VmError::StackOverflow | VmError::HeapOverflow | VmError::CallDepthExceeded) => {
            "accepted.resource_trap"
        }
        Err(_) => "accepted.dynamic_trap",
    }
}

pub fn run(seed: u64, start: u64, cases: u64) -> OracleReport {
    let mut rep = OracleReport::new("verifier");
    for index in start..start + cases {
        rep.cases += 1;
        let mut rng = FuzzRng::for_case(seed, "verifier", index);
        // 3:1 wild to structured — wild explores the reject paths,
        // structured guarantees steady pressure on the accept path
        let raw: RawProgram = if rng.chance(3, 4) {
            gen_wild(&mut rng)
        } else {
            gen_structured(&mut rng)
        };
        let host_seed = rng.next_u64();
        match Program::new("fuzz", raw.ops.clone(), raw.funcs.clone(), raw.entry_locals) {
            Err(e) => rep.note(verify_error_tag(&e), 1),
            Ok(p) => {
                let r = run_program(&p, host_seed);
                rep.note(runtime_tag(&r), 1);
                if let Err(e) = &r {
                    if is_forbidden_trap(e) {
                        // shrink the op vector; the predicate re-verifies, so
                        // every candidate that reaches the interpreter was
                        // itself verifier-approved
                        let kept = ddmin(&raw.ops, MINIMIZE_BUDGET, |cand| {
                            soundness_broken(cand, &raw.funcs, raw.entry_locals, host_seed)
                                .is_some()
                        });
                        let shrunk = Program::new(
                            "repro",
                            kept.clone(),
                            raw.funcs.clone(),
                            raw.entry_locals,
                        )
                        .expect("ddmin predicate only keeps verified candidates");
                        rep.failures.push(Failure {
                            oracle: "verifier",
                            index,
                            detail: format!("verified program trapped with {e:?}"),
                            repro: format!(
                                "{}funcs: {:?}\nentry_locals: {}\nhost_seed: {host_seed}",
                                disassemble(&shrunk),
                                raw.funcs,
                                raw.entry_locals
                            ),
                        });
                    }
                }
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_sound() {
        let a = run(11, 0, 300);
        let b = run(11, 0, 300);
        assert_eq!(a.failures.len(), 0, "soundness holes: {:?}", a.failures);
        assert_eq!(a.notes, b.notes);
        // both accept and reject paths must actually be exercised
        let accepted: u64 = a
            .notes
            .iter()
            .filter(|(k, _)| k.starts_with("accepted."))
            .map(|(_, v)| v)
            .sum();
        let rejected: u64 = a
            .notes
            .iter()
            .filter(|(k, _)| k.starts_with("rejected."))
            .map(|(_, v)| v)
            .sum();
        assert!(accepted >= 50, "too few accepted programs: {:?}", a.notes);
        assert!(rejected >= 50, "too few rejected programs: {:?}", a.notes);
    }
}
