//! Token-bucket rate limiters — the "rate limited queues" of the Pulsar
//! case study (§2.1.2).
//!
//! The defining feature, straight from the paper: a packet is charged an
//! explicit number of bytes that may differ from its wire size. A 100-byte
//! storage READ request can be charged its 64 KB *operation* size, so the
//! limiter polices the server-side cost rather than the forward-path bytes.

use std::collections::VecDeque;

use netsim::{Packet, Time};

/// A token bucket with an attached FIFO of (packet, charge) waiting for
/// tokens.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate in bytes per second.
    rate_bytes_per_sec: f64,
    /// Maximum accumulated tokens (burst), bytes.
    burst_bytes: f64,
    tokens: f64,
    last_refill: Time,
    queue: VecDeque<(Packet, u64)>,
    /// Packets released so far.
    pub released: u64,
    /// Bytes charged so far (≥ bytes released when charges are inflated).
    pub charged_bytes: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_bps` (bits/second, to match link specs)
    /// holding at most `burst_bytes` of headroom.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_sec: rate_bps as f64 / 8.0,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_refill: Time::ZERO,
            queue: VecDeque::new(),
            released: 0,
            charged_bytes: 0,
        }
    }

    /// Change the refill rate (controller updates at runtime).
    pub fn set_rate(&mut self, rate_bps: u64, now: Time) {
        self.refill(now);
        self.rate_bytes_per_sec = rate_bps as f64 / 8.0;
    }

    fn refill(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last_refill).as_nanos() as f64 / 1e9;
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        self.last_refill = now;
    }

    /// Enqueue `packet` charging `charge` bytes.
    pub fn enqueue(&mut self, packet: Packet, charge: u64, now: Time) {
        self.refill(now);
        self.queue.push_back((packet, charge));
    }

    /// Release every packet whose charge fits the current tokens, in FIFO
    /// order. Returns the released packets.
    pub fn release(&mut self, now: Time) -> Vec<Packet> {
        self.refill(now);
        let mut out = Vec::new();
        while let Some((_, charge)) = self.queue.front() {
            let charge = *charge as f64;
            if charge <= self.tokens {
                let (p, c) = self.queue.pop_front().expect("peeked");
                self.tokens -= charge;
                self.released += 1;
                self.charged_bytes += c;
                out.push(p);
            } else {
                break;
            }
        }
        out
    }

    /// When the head packet will have enough tokens, if any is waiting.
    pub fn next_release_at(&self, now: Time) -> Option<Time> {
        let (_, charge) = self.queue.front()?;
        let deficit = *charge as f64 - self.tokens;
        if deficit <= 0.0 {
            return Some(now);
        }
        let secs = deficit / self.rate_bytes_per_sec;
        let ns = (secs * 1e9).ceil() as u64;
        Some(now + Time::from_nanos(ns.max(1)))
    }

    /// Packets waiting for tokens.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TcpHeader;

    fn pkt(payload: usize) -> Packet {
        Packet::tcp(1, 2, TcpHeader::default(), payload)
    }

    #[test]
    fn releases_when_tokens_suffice() {
        // 8 Mbps = 1 MB/s; burst 1500B
        let mut tb = TokenBucket::new(8_000_000, 1500);
        tb.enqueue(pkt(960), 1000, Time::ZERO);
        let rel = tb.release(Time::ZERO);
        assert_eq!(rel.len(), 1, "burst covers the first packet");
        tb.enqueue(pkt(960), 1000, Time::ZERO);
        assert!(tb.release(Time::ZERO).is_empty(), "tokens exhausted");
        // 1000 bytes at 1 MB/s = 1ms; deficit is 500B after the first spend
        let at = tb.next_release_at(Time::ZERO).unwrap();
        assert!(at > Time::ZERO && at <= Time::from_millis(1));
        let rel = tb.release(at);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn charge_can_exceed_packet_size() {
        // READ-style: tiny packet, huge charge
        let mut tb = TokenBucket::new(8_000_000, 65536);
        tb.enqueue(pkt(100), 65536, Time::ZERO);
        assert_eq!(tb.release(Time::ZERO).len(), 1);
        tb.enqueue(pkt(100), 65536, Time::ZERO);
        // needs a full 65536B refill at 1MB/s ≈ 65.5ms
        let at = tb.next_release_at(Time::ZERO).unwrap();
        assert!(at >= Time::from_millis(65), "{at}");
        assert_eq!(tb.charged_bytes, 65536);
    }

    #[test]
    fn fifo_order_and_head_of_line() {
        let mut tb = TokenBucket::new(8_000_000, 1000);
        tb.enqueue(pkt(900), 2000, Time::ZERO); // head too expensive
        tb.enqueue(pkt(10), 10, Time::ZERO); // cheap behind it
        assert!(
            tb.release(Time::ZERO).is_empty(),
            "head-of-line blocks (FIFO, not deficit round-robin)"
        );
        assert_eq!(tb.backlog(), 2);
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut tb = TokenBucket::new(8_000_000, 1000);
        // after a long idle period tokens cap at burst
        tb.enqueue(pkt(100), 3000, Time::from_secs(10));
        assert!(tb.release(Time::from_secs(10)).is_empty());
    }

    #[test]
    fn rate_change_applies() {
        let mut tb = TokenBucket::new(8_000, 0); // 1 KB/s, no burst
        tb.enqueue(pkt(100), 1000, Time::ZERO);
        assert_eq!(tb.next_release_at(Time::ZERO).unwrap(), Time::from_secs(1));
        tb.set_rate(8_000_000, Time::ZERO); // 1 MB/s
        assert_eq!(
            tb.next_release_at(Time::ZERO).unwrap(),
            Time::from_millis(1)
        );
    }
}
