//! The host node: a [`Stack`] plus an application.
//!
//! Applications implement [`App`] and receive socket events with `&mut
//! Stack` in hand, so a request handler can immediately send its response.
//! Timer tokens are partitioned: applications own the `TOKEN_APP` subsystem
//! (56 usable bits); TCP RTOs and limiter releases use the others.

use std::any::Any;

use netsim::{Ctx, Node, NodeEvent};

use crate::stack::{
    token, AppEvent, Stack, TOKEN_APP, TOKEN_LIMITER, TOKEN_PAYLOAD_MASK, TOKEN_REORDER, TOKEN_RTO,
};

/// Application logic running on a host. All methods default to no-ops so
/// simple apps implement only what they need.
#[allow(unused_variables)]
pub trait App: 'static {
    /// An application timer (scheduled with a token from
    /// [`app_timer_token`]) fired.
    fn on_timer(&mut self, token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// An active open completed.
    fn on_connected(&mut self, conn: crate::ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// A passive open completed.
    fn on_accept(&mut self, conn: crate::ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// New in-order bytes were delivered on `conn`.
    fn on_data(&mut self, conn: crate::ConnId, bytes: u32, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// A complete application message arrived on `conn`.
    fn on_message(
        &mut self,
        conn: crate::ConnId,
        app_tag: u64,
        size: u32,
        stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
    }

    /// The peer closed `conn`.
    fn on_peer_closed(&mut self, conn: crate::ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// Our close of `conn` completed.
    fn on_closed(&mut self, conn: crate::ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {}

    /// A non-TCP packet arrived.
    fn on_raw(&mut self, packet: netsim::Packet, stack: &mut Stack, ctx: &mut Ctx<'_>) {}
}

/// Token an application passes to [`netsim::Ctx::timer_at`] directly (the
/// host demultiplexes it back to [`App::on_timer`] with `payload`).
pub fn app_timer_token(payload: u64) -> u64 {
    token(TOKEN_APP, payload)
}

/// A host node: stack + application.
pub struct Host<A: App> {
    pub stack: Stack,
    pub app: A,
}

impl<A: App> Host<A> {
    /// Build a host from a stack and application.
    pub fn new(stack: Stack, app: A) -> Host<A> {
        Host { stack, app }
    }

    fn drain_events(&mut self, ctx: &mut Ctx<'_>) {
        // App callbacks may trigger sends that produce further events;
        // loop until quiescent.
        while let Some(ev) = self.stack.take_event() {
            match ev {
                AppEvent::Connected(c) => self.app.on_connected(c, &mut self.stack, ctx),
                AppEvent::Accepted(c) => self.app.on_accept(c, &mut self.stack, ctx),
                AppEvent::Data { conn, bytes } => {
                    self.app.on_data(conn, bytes, &mut self.stack, ctx)
                }
                AppEvent::Message {
                    conn,
                    app_tag,
                    size,
                } => self
                    .app
                    .on_message(conn, app_tag, size, &mut self.stack, ctx),
                AppEvent::PeerClosed(c) => self.app.on_peer_closed(c, &mut self.stack, ctx),
                AppEvent::Closed(c) => self.app.on_closed(c, &mut self.stack, ctx),
                AppEvent::Raw(p) => self.app.on_raw(p, &mut self.stack, ctx),
            }
        }
    }
}

impl<A: App> Node for Host<A> {
    fn on_event(&mut self, event: NodeEvent, ctx: &mut Ctx<'_>) {
        match event {
            NodeEvent::Packet { packet, .. } => self.stack.handle_ingress(packet, ctx),
            NodeEvent::TxDone { .. } => self.stack.handle_tx_done(ctx),
            NodeEvent::Timer { token: t } => {
                let payload = t & TOKEN_PAYLOAD_MASK;
                match t >> 56 {
                    TOKEN_APP => self.app.on_timer(payload, &mut self.stack, ctx),
                    TOKEN_RTO => self.stack.handle_rto_timer(payload, ctx),
                    TOKEN_REORDER => self.stack.handle_reorder_timer(payload, ctx),
                    TOKEN_LIMITER => self.stack.handle_limiter_timer(payload as usize, ctx),
                    other => panic!("unknown timer subsystem {other}"),
                }
            }
        }
        self.drain_events(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
