//! The egress/ingress hook: where the Eden enclave attaches.
//!
//! The paper's enclave "resides along the end host network stack" and
//! "extends and replaces functionality typically performed by the end host
//! virtual switch" (§3.1). This trait is that attachment point, kept in
//! `transport` so the stack does not depend on `eden-core`: the enclave
//! implements [`PacketHook`], a host installs it with
//! [`Stack::set_hook`](crate::Stack::set_hook), and from then on every
//! packet leaving (and entering) the host passes through it.
//!
//! The verdicts mirror the side effects an action function may request
//! (§3.4.2): continue, drop, or send to a rate-limited queue charging an
//! explicit number of bytes. Header modifications (priority, route label)
//! happen by mutating the packet in place.

use netsim::{Packet, SimRng, Time};

/// What the hook decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Continue down the stack (possibly with mutated headers).
    Pass,
    /// Drop the packet (stateful firewall, admission control, …).
    Drop,
    /// Send to rate-limited queue `queue`, charging `charge` bytes against
    /// its token budget (Pulsar's size-aware policing, §2.1.2).
    Queue { queue: usize, charge: u64 },
}

/// Environment handed to the hook on each packet.
pub struct HookEnv<'a> {
    /// Virtual time now.
    pub now: Time,
    /// Deterministic randomness (action functions' `rand()`).
    pub rng: &'a mut SimRng,
}

/// A packet processor sitting at the bottom of the host stack.
pub trait PacketHook: 'static {
    /// Called for every packet about to leave the host (after TCP, before
    /// the NIC queues).
    fn on_egress(&mut self, packet: &mut Packet, env: &mut HookEnv<'_>) -> HookVerdict;

    /// Called with every packet the host emits in one transmission
    /// opportunity, appending one verdict per packet (same order) to
    /// `verdicts` — a caller-owned buffer the stack recycles across
    /// batches, so the steady-state batch path allocates nothing. The
    /// default simply loops [`on_egress`](Self::on_egress); hooks with a
    /// real batch path (the Eden enclave's staged pipeline) override it.
    fn on_egress_batch(
        &mut self,
        packets: &mut [Packet],
        env: &mut HookEnv<'_>,
        verdicts: &mut Vec<HookVerdict>,
    ) {
        verdicts.extend(packets.iter_mut().map(|p| self.on_egress(p, env)));
    }

    /// Called for every packet arriving at the host, before TCP. The
    /// default passes everything (most Eden functions are egress-side).
    fn on_ingress(&mut self, _packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        HookVerdict::Pass
    }

    /// Called with one control-plane frame addressed to this host's
    /// control endpoint (see [`Stack::set_ctrl_port`](crate::Stack::set_ctrl_port)).
    /// `from` is the sender's IPv4 address; each returned byte vector is
    /// sent back to the sender as its own control frame. The default
    /// ignores control traffic — only hooks that speak a control protocol
    /// (the `eden-ctrl` enclave agent) override this.
    fn on_ctrl(&mut self, _from: u32, _frame: &[u8], _env: &mut HookEnv<'_>) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Downcast support, so the controller can reach an installed enclave
    /// through [`Stack::hook_mut`](crate::Stack::hook_mut).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A hook that does nothing — the "vanilla TCP" baseline of §5.1.
pub struct NullHook;

impl PacketHook for NullHook {
    fn on_egress(&mut self, _packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        HookVerdict::Pass
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
