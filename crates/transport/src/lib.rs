//! # transport — the end-host network stack
//!
//! Everything that runs *on* a host in the simulated testbed:
//!
//! * a Reno-style TCP ([`tcp`]) with slow start, congestion avoidance, fast
//!   retransmit on three duplicate ACKs, and RFC 6298 retransmission
//!   timeouts — the congestion behaviour the paper's case studies depend on
//!   (WCMP's reordering penalty in Figure 10 is precisely Reno's dup-ACK
//!   sensitivity);
//! * sockets with the paper's **extended send primitive** (§4.2): an
//!   application sends a *message* together with class/metadata information;
//!   the stack records the sender sequence-number range of each message, and
//!   the bottom-of-stack intercept tags every outgoing packet with its
//!   message's metadata before the enclave sees it;
//! * an egress [`hook`] where the Eden enclave (or any packet processor)
//!   plugs in, with the verdicts of §3.4.2: pass, drop, or direct to a
//!   rate-limited queue with an explicit byte charge;
//! * token-bucket [`ratelimit`] queues for Pulsar-style QoS, where the
//!   charged bytes may differ from the packet size;
//! * the [`host::Host`] node gluing a [`stack::Stack`] to an application
//!   ([`host::App`]) over the `netsim` fabric.

pub mod hook;
pub mod host;
pub mod ratelimit;
pub mod stack;
pub mod tcp;

pub use eden_telemetry::{
    FlowCounters, HostCounters, TraceEvent, TraceLayer, TraceRing, TraceVerdict,
};
pub use hook::{HookEnv, HookVerdict, NullHook, PacketHook};
pub use host::{app_timer_token, App, Host};
pub use ratelimit::TokenBucket;
pub use stack::{AppEvent, ConnId, Stack, StackConfig};
pub use tcp::{ConnStats, TcpConfig, MSS};
