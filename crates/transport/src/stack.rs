//! The per-host stack: socket table, demux, NIC queues, rate limiters, and
//! the enclave hook.
//!
//! Packet path down: TCP emits a segment → the §4.2 intercept has already
//! tagged it with its message's metadata → [`PacketHook::on_egress`] (the
//! Eden enclave) → verdict: pass to the NIC's priority queues, drop, or
//! detour through a token-bucket rate limiter → NIC serializer.
//!
//! Packet path up: NIC → [`PacketHook::on_ingress`] → TCP demux →
//! application events.

use std::collections::{HashMap, HashSet};

use eden_telemetry::{FlowCounters, HostCounters, TimeSeries, TraceLayer, TraceRing, TraceVerdict};
use netsim::{Ctx, EdenMeta, Packet, PacketArena, PortId, PriorityPort, Time};

use crate::hook::{HookEnv, HookVerdict, PacketHook};
use crate::ratelimit::TokenBucket;
use crate::tcp::{Conn, ConnState, ConnStats, TcpConfig, TcpEvent, TcpOutput};

/// Handle to one connection on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub usize);

/// Stack construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    pub tcp: TcpConfig,
    /// Per-priority-class byte capacity of the NIC egress queues.
    pub nic_queue_bytes: usize,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            tcp: TcpConfig::default(),
            nic_queue_bytes: 1 << 20,
        }
    }
}

/// Events surfaced to the application (see [`crate::host::App`]).
#[derive(Debug)]
pub enum AppEvent {
    /// Active open completed.
    Connected(ConnId),
    /// Passive open completed.
    Accepted(ConnId),
    /// In-order payload delivered.
    Data { conn: ConnId, bytes: u32 },
    /// A full application message arrived.
    Message {
        conn: ConnId,
        app_tag: u64,
        size: u32,
    },
    /// The peer closed its half of the connection.
    PeerClosed(ConnId),
    /// Our close completed.
    Closed(ConnId),
    /// A non-TCP packet arrived (raw apps, e.g. the port-knocking example).
    Raw(Packet),
}

// Timer-token subsystems (top byte of the u64 token).
pub(crate) const TOKEN_APP: u64 = 0;
pub(crate) const TOKEN_RTO: u64 = 1;
pub(crate) const TOKEN_LIMITER: u64 = 2;
pub(crate) const TOKEN_REORDER: u64 = 3;
pub(crate) const TOKEN_PAYLOAD_MASK: u64 = (1 << 56) - 1;

pub(crate) fn token(subsystem: u64, payload: u64) -> u64 {
    (subsystem << 56) | (payload & TOKEN_PAYLOAD_MASK)
}

/// The host network stack.
pub struct Stack {
    /// This host's IPv4 address.
    pub addr: u32,
    cfg: StackConfig,
    conns: Vec<Conn>,
    /// (remote ip, remote port, local port) → connection index.
    demux: HashMap<(u32, u16, u16), usize>,
    listeners: HashSet<u16>,
    next_ephemeral: u16,
    hook: Option<Box<dyn PacketHook>>,
    /// UDP port of the control-plane endpoint, if one is open.
    ctrl_port: Option<u16>,
    /// Control frames delivered to the hook's `on_ctrl`.
    pub ctrl_frames_in: u64,
    /// Control frames emitted in reply by the hook's `on_ctrl`.
    pub ctrl_frames_out: u64,
    limiters: Vec<TokenBucket>,
    limiter_armed: Vec<bool>,
    nic: PriorityPort,
    events: Vec<AppEvent>,
    /// Packets dropped by the hook's `Drop` verdict.
    pub hook_drops: u64,
    /// Packets dropped at the NIC queues (overflow).
    pub nic_drops: u64,
    /// Packets directed to a queue id that does not exist.
    pub bad_queue_drops: u64,
    /// Packet-path trace ring; `None` (the default) records nothing and
    /// costs one branch per trace point. Enabled by the `EDEN_TRACE` env
    /// var or [`Stack::enable_trace`].
    trace: Option<TraceRing>,
    /// Per-host sequence for trace packet ids (only advanced while
    /// tracing; ids are namespaced by `addr` so two hosts' traces can be
    /// merged without collisions).
    trace_pkt_seq: u64,
    /// Per-connection cwnd time series, filled by [`Stack::sample_flows`].
    cwnd_series: Vec<TimeSeries>,
    /// Recycled batch buffers: every [`TcpOutput`] batch is taken from
    /// here and returned after egress, so steady-state transmission
    /// opportunities reuse warm allocations instead of churning
    /// `Vec<Packet>` per TCP call. Dropped packets are salvaged through
    /// it too (metadata capacity recovery).
    arena: PacketArena,
    /// Recycled verdict buffer for the batch egress path.
    verdict_buf: Vec<HookVerdict>,
}

/// First Eden class on a packet (0 = unclassified) — the class a trace
/// event is labelled with.
fn pkt_class(p: &Packet) -> u32 {
    p.meta
        .as_ref()
        .and_then(|m| m.classes.first().copied())
        .unwrap_or(0)
}

impl Stack {
    /// A stack for a host with address `addr`.
    ///
    /// Packet-path tracing starts enabled when the `EDEN_TRACE` env var is
    /// set to anything but `0`; a numeric value is used as the ring
    /// capacity (default 4096).
    pub fn new(addr: u32, cfg: StackConfig) -> Stack {
        let trace = match std::env::var("EDEN_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => Some(TraceRing::new(v.parse().unwrap_or(4096))),
            _ => None,
        };
        Stack {
            addr,
            cfg,
            conns: Vec::new(),
            demux: HashMap::new(),
            listeners: HashSet::new(),
            next_ephemeral: 40_000,
            hook: None,
            ctrl_port: None,
            ctrl_frames_in: 0,
            ctrl_frames_out: 0,
            limiters: Vec::new(),
            limiter_armed: Vec::new(),
            nic: PriorityPort::new(cfg.nic_queue_bytes),
            events: Vec::new(),
            hook_drops: 0,
            nic_drops: 0,
            bad_queue_drops: 0,
            trace,
            trace_pkt_seq: 0,
            cwnd_series: Vec::new(),
            arena: PacketArena::new(),
            verdict_buf: Vec::new(),
        }
    }

    /// A [`TcpOutput`] whose packet batch is an arena-recycled buffer;
    /// [`apply_output`](Self::apply_output) returns it after egress.
    fn new_output(&mut self) -> TcpOutput {
        TcpOutput {
            packets: self.arena.take_batch(),
            ..TcpOutput::default()
        }
    }

    /// The stack's batch-buffer arena (recycling instrumentation).
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    // ------------------------------------------------------------------
    // telemetry
    // ------------------------------------------------------------------

    /// Start packet-path tracing into a fresh ring of `capacity` events
    /// (replaces any existing ring).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Stop tracing and hand over the ring (e.g. to dump as JSON).
    pub fn take_trace(&mut self) -> Option<TraceRing> {
        self.trace.take()
    }

    /// Borrow the trace ring, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Per-flow TCP counters for every connection ever created here.
    pub fn flow_counters(&self) -> Vec<FlowCounters> {
        self.conns
            .iter()
            .enumerate()
            .map(|(i, c)| FlowCounters {
                conn: i,
                state: format!("{:?}", c.state),
                packets_sent: c.stats.packets_sent,
                bytes_acked: c.stats.bytes_acked,
                retransmits: c.stats.retransmits,
                fast_retransmits: c.stats.fast_retransmits,
                timeouts: c.stats.timeouts,
                dup_acks: c.stats.dup_acks_received,
                reorder_events: c.stats.reorder_events,
                cwnd_bytes: u64::from(c.cwnd()),
                srtt_ns: c.srtt_ns(),
                in_flight: u64::from(c.in_flight()),
            })
            .collect()
    }

    /// Host-level drop counters outside the enclave.
    pub fn host_counters(&self) -> HostCounters {
        HostCounters {
            hook_drops: self.hook_drops,
            nic_drops: self.nic_drops,
            bad_queue_drops: self.bad_queue_drops,
        }
    }

    /// Append one cwnd sample per connection to the per-flow time series
    /// (call periodically from the driving application or host).
    pub fn sample_flows(&mut self, now: Time) {
        for (i, c) in self.conns.iter().enumerate() {
            if self.cwnd_series.len() <= i {
                self.cwnd_series
                    .push(TimeSeries::new(format!("conn{i}.cwnd"), 4096));
            }
            self.cwnd_series[i].push(now.as_nanos(), f64::from(c.cwnd()));
        }
    }

    /// The cwnd series filled by [`Stack::sample_flows`].
    pub fn cwnd_series(&self) -> &[TimeSeries] {
        &self.cwnd_series
    }

    /// Install the enclave (or any packet processor).
    pub fn set_hook(&mut self, hook: impl PacketHook) {
        self.hook = Some(Box::new(hook));
    }

    /// Remove the hook, returning to the vanilla path.
    pub fn clear_hook(&mut self) {
        self.hook = None;
    }

    /// Borrow the hook downcast to a concrete type (controller access to an
    /// installed enclave).
    pub fn hook_mut<T: PacketHook>(&mut self) -> Option<&mut T> {
        self.hook
            .as_mut()
            .and_then(|h| h.as_any_mut().downcast_mut::<T>())
    }

    /// Open the control-plane endpoint on UDP `port`: control frames
    /// arriving there are handed to the hook's
    /// [`on_ctrl`](PacketHook::on_ctrl) instead of the data path, and its
    /// replies are sent straight to the NIC. Replies bypass the egress
    /// hook by design — the management plane must stay reachable even
    /// when the data-plane tables are mid-update.
    pub fn set_ctrl_port(&mut self, port: u16) {
        self.ctrl_port = Some(port);
    }

    /// Create a rate-limited queue (Pulsar's `queueMap` targets); returns
    /// its queue id for `HookVerdict::Queue`.
    pub fn add_limiter(&mut self, rate_bps: u64, burst_bytes: u64) -> usize {
        self.limiters.push(TokenBucket::new(rate_bps, burst_bytes));
        self.limiter_armed.push(false);
        self.limiters.len() - 1
    }

    /// Update a limiter's rate at runtime (controller action).
    pub fn set_limiter_rate(&mut self, queue: usize, rate_bps: u64, now: Time) {
        self.limiters[queue].set_rate(rate_bps, now);
    }

    /// Borrow a limiter (stats).
    pub fn limiter(&self, queue: usize) -> &TokenBucket {
        &self.limiters[queue]
    }

    /// Start listening on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Active-open a connection; the SYN leaves immediately.
    pub fn connect(&mut self, remote_ip: u32, remote_port: u16, ctx: &mut Ctx<'_>) -> ConnId {
        let local_port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(40_000);
        let mut out = self.new_output();
        let conn = Conn::connect(
            self.cfg.tcp,
            (self.addr, local_port),
            (remote_ip, remote_port),
            ctx.now(),
            &mut out,
        );
        let idx = self.conns.len();
        self.conns.push(conn);
        self.demux.insert((remote_ip, remote_port, local_port), idx);
        self.apply_output(idx, out, ctx);
        ConnId(idx)
    }

    /// The paper's extended send primitive (§4.2): send `bytes` as one
    /// application message with optional class/metadata information. The
    /// final segment carries `app_tag` so the receiving application can
    /// frame the message.
    pub fn send_message(
        &mut self,
        conn: ConnId,
        bytes: u32,
        app_tag: u64,
        meta: Option<EdenMeta>,
        ctx: &mut Ctx<'_>,
    ) {
        if let Some(t) = self.trace.as_mut() {
            let class = meta
                .as_ref()
                .and_then(|m| m.classes.first().copied())
                .unwrap_or(0);
            // at the app layer the packet doesn't exist yet; the message's
            // app_tag stands in as the event id
            t.record(
                ctx.now().as_nanos(),
                app_tag,
                class,
                TraceLayer::App,
                TraceVerdict::Send,
            );
        }
        let mut out = self.new_output();
        self.conns[conn.0].send_message(bytes, app_tag, meta, ctx.now(), &mut out);
        self.conns[conn.0].gc_messages();
        self.apply_output(conn.0, out, ctx);
    }

    /// Close after all queued data drains.
    pub fn close(&mut self, conn: ConnId, ctx: &mut Ctx<'_>) {
        let mut out = self.new_output();
        self.conns[conn.0].close(ctx.now(), &mut out);
        self.apply_output(conn.0, out, ctx);
    }

    /// Connection state (for tests/instrumentation).
    pub fn conn_state(&self, conn: ConnId) -> ConnState {
        self.conns[conn.0].state
    }

    /// Connection counters.
    pub fn conn_stats(&self, conn: ConnId) -> ConnStats {
        self.conns[conn.0].stats
    }

    /// Congestion window, bytes.
    pub fn conn_cwnd(&self, conn: ConnId) -> u32 {
        self.conns[conn.0].cwnd()
    }

    /// Smoothed RTT, nanoseconds.
    pub fn conn_srtt_ns(&self, conn: ConnId) -> u64 {
        self.conns[conn.0].srtt_ns()
    }

    /// Bytes in flight.
    pub fn conn_in_flight(&self, conn: ConnId) -> u32 {
        self.conns[conn.0].in_flight()
    }

    /// Whether all data queued on `conn` has been acknowledged.
    pub fn conn_all_acked(&self, conn: ConnId) -> bool {
        self.conns[conn.0].all_acked()
    }

    /// Number of connections ever created on this stack.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Send a raw (typically UDP) packet through the egress path.
    pub fn send_raw(&mut self, packet: Packet, ctx: &mut Ctx<'_>) {
        self.egress(packet, ctx);
    }

    /// Drain application events produced by the last stack call.
    pub fn take_event(&mut self) -> Option<AppEvent> {
        if self.events.is_empty() {
            None
        } else {
            Some(self.events.remove(0))
        }
    }

    // ------------------------------------------------------------------
    // fabric-facing entry points (called by Host)
    // ------------------------------------------------------------------

    /// A packet arrived from the NIC.
    pub(crate) fn handle_ingress(&mut self, mut packet: Packet, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.trace.as_mut() {
            t.record(
                ctx.now().as_nanos(),
                packet.id,
                pkt_class(&packet),
                TraceLayer::Wire,
                TraceVerdict::Deliver,
            );
        }
        // Control-endpoint demux: frames for the control port short-circuit
        // to the hook's control handler before the data-path ingress hook,
        // so a half-updated rule table can never filter its own repairs.
        if let Some(port) = self.ctrl_port {
            let udp_dst = match &packet.l4 {
                netsim::L4Header::Udp(u) if u.dst_port == port => Some(u.src_port),
                _ => None,
            };
            if let (Some(reply_port), Some(frame)) = (udp_dst, packet.ctrl.as_ref()) {
                self.ctrl_frames_in += 1;
                let from = packet.ip.src;
                let replies = match self.hook.as_mut() {
                    Some(hook) => {
                        let mut env = HookEnv {
                            now: ctx.now(),
                            rng: ctx.rng(),
                        };
                        hook.on_ctrl(from, frame, &mut env)
                    }
                    None => Vec::new(),
                };
                for bytes in replies {
                    self.ctrl_frames_out += 1;
                    let reply = Packet::ctrl(
                        self.addr,
                        from,
                        netsim::UdpHeader {
                            src_port: port,
                            dst_port: reply_port,
                        },
                        bytes,
                    );
                    self.nic_enqueue(reply, ctx);
                }
                return;
            }
        }
        if let Some(hook) = self.hook.as_mut() {
            let mut env = HookEnv {
                now: ctx.now(),
                rng: ctx.rng(),
            };
            let verdict = hook.on_ingress(&mut packet, &mut env);
            match verdict {
                HookVerdict::Pass => {}
                HookVerdict::Drop | HookVerdict::Queue { .. } => {
                    // a Queue verdict on ingress is not part of the model
                    // and drops like a Drop verdict
                    self.hook_drops += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(
                            ctx.now().as_nanos(),
                            packet.id,
                            pkt_class(&packet),
                            TraceLayer::Enclave,
                            TraceVerdict::Drop,
                        );
                    }
                    self.arena.recycle_packet(packet);
                    return;
                }
            }
        }
        let Some(hdr) = packet.tcp_header().copied() else {
            self.events.push(AppEvent::Raw(packet));
            return;
        };
        let key = (packet.ip.src, hdr.src_port, hdr.dst_port);
        if let Some(&idx) = self.demux.get(&key) {
            let mut out = self.new_output();
            self.conns[idx].on_segment(&packet, ctx.now(), &mut out);
            self.apply_output(idx, out, ctx);
        } else if hdr.flags.syn && !hdr.flags.ack && self.listeners.contains(&hdr.dst_port) {
            let mut out = self.new_output();
            let conn = Conn::accept(
                self.cfg.tcp,
                (self.addr, hdr.dst_port),
                (packet.ip.src, hdr.src_port),
                hdr.seq,
                ctx.now(),
                &mut out,
            );
            let idx = self.conns.len();
            self.conns.push(conn);
            self.demux.insert(key, idx);
            self.apply_output(idx, out, ctx);
        }
        // else: no socket — silently dropped (no RST machinery)
    }

    /// The NIC finished serializing a packet.
    pub(crate) fn handle_tx_done(&mut self, ctx: &mut Ctx<'_>) {
        match self.nic.dequeue() {
            Some(next) => {
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        ctx.now().as_nanos(),
                        next.id,
                        pkt_class(&next),
                        TraceLayer::Wire,
                        TraceVerdict::Tx,
                    );
                }
                ctx.start_tx(PortId(0), next)
            }
            None => self.nic.busy = false,
        }
    }

    /// An RTO timer fired; `payload` encodes (conn, generation).
    pub(crate) fn handle_rto_timer(&mut self, payload: u64, ctx: &mut Ctx<'_>) {
        let idx = (payload >> 24) as usize;
        let generation = payload & ((1 << 24) - 1);
        let Some(conn) = self.conns.get_mut(idx) else {
            return;
        };
        if !conn.rto_armed || (conn.rto_gen & ((1 << 24) - 1)) != generation {
            return; // stale timer
        }
        let mut out = self.new_output();
        self.conns[idx].on_rto(ctx.now(), &mut out);
        self.apply_output(idx, out, ctx);
    }

    /// A reorder-tolerance timer fired; `payload` encodes (conn, generation).
    pub(crate) fn handle_reorder_timer(&mut self, payload: u64, ctx: &mut Ctx<'_>) {
        let idx = (payload >> 24) as usize;
        let generation = payload & ((1 << 24) - 1);
        let Some(conn) = self.conns.get_mut(idx) else {
            return;
        };
        if !conn.reorder_armed || (conn.reorder_gen & ((1 << 24) - 1)) != generation {
            return; // resolved or superseded
        }
        let mut out = self.new_output();
        self.conns[idx].on_reorder_timeout(ctx.now(), &mut out);
        self.apply_output(idx, out, ctx);
    }

    /// A limiter release timer fired.
    pub(crate) fn handle_limiter_timer(&mut self, queue: usize, ctx: &mut Ctx<'_>) {
        if queue >= self.limiters.len() {
            return;
        }
        self.limiter_armed[queue] = false;
        let released = self.limiters[queue].release(ctx.now());
        for p in released {
            self.nic_enqueue(p, ctx);
        }
        self.arm_limiter(queue, ctx);
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn apply_output(&mut self, idx: usize, out: TcpOutput, ctx: &mut Ctx<'_>) {
        for ev in out.events {
            let conn = ConnId(idx);
            self.events.push(match ev {
                TcpEvent::Connected => AppEvent::Connected(conn),
                TcpEvent::Accepted => AppEvent::Accepted(conn),
                TcpEvent::Data { bytes } => AppEvent::Data { conn, bytes },
                TcpEvent::Message { app_tag, size } => AppEvent::Message {
                    conn,
                    app_tag,
                    size,
                },
                TcpEvent::PeerClosed => AppEvent::PeerClosed(conn),
                TcpEvent::Closed => AppEvent::Closed(conn),
            });
        }
        if let Some(deadline) = out.arm_rto {
            let generation = self.conns[idx].rto_gen & ((1 << 24) - 1);
            let payload = ((idx as u64) << 24) | generation;
            ctx.timer_at(deadline, token(TOKEN_RTO, payload));
        }
        if let Some(deadline) = out.arm_reorder {
            let generation = self.conns[idx].reorder_gen & ((1 << 24) - 1);
            let payload = ((idx as u64) << 24) | generation;
            ctx.timer_at(deadline, token(TOKEN_REORDER, payload));
        }
        // Everything TCP emitted in this transmission opportunity leaves as
        // one batch, so a hook with a real batch path (the enclave's staged
        // pipeline) sees the packets together.
        self.egress_batch(out.packets, ctx);
    }

    /// Pre-hook egress fixup: stamp the source address and, while tracing,
    /// assign the packet a trace id namespaced by host address so merged
    /// multi-host traces cannot collide with each other or with the
    /// fabric's small sequential ids. With tracing off the id is untouched.
    fn prep_egress(&mut self, packet: &mut Packet) {
        packet.eth.src = u64::from(self.addr);
        if self.trace.is_some() && packet.id == 0 {
            self.trace_pkt_seq += 1;
            packet.id = (u64::from(self.addr) << 40) | self.trace_pkt_seq;
        }
    }

    fn egress(&mut self, mut packet: Packet, ctx: &mut Ctx<'_>) {
        self.prep_egress(&mut packet);
        if self.hook.is_some() {
            let verdict = {
                let hook = self.hook.as_mut().expect("checked above");
                let mut env = HookEnv {
                    now: ctx.now(),
                    rng: ctx.rng(),
                };
                hook.on_egress(&mut packet, &mut env)
            };
            self.route_egress_verdict(packet, verdict, ctx);
        } else {
            self.nic_enqueue(packet, ctx);
        }
    }

    /// Send a same-tick batch of packets through the hook and route each
    /// verdict, in order — observably identical to calling
    /// [`egress`](Self::egress) per packet, since everything happens at one
    /// simulated instant and verdict routing preserves batch order. The
    /// batch buffer and the verdict buffer are both recycled: the hook
    /// mutates packets in place (zero-copy handoff), the drained `Vec`
    /// goes back to the arena, and the next batch reuses it warm.
    fn egress_batch(&mut self, mut packets: Vec<Packet>, ctx: &mut Ctx<'_>) {
        if packets.len() == 1 {
            let packet = packets.pop().expect("length checked");
            self.arena.recycle_batch(packets);
            self.egress(packet, ctx);
            return;
        }
        for packet in packets.iter_mut() {
            self.prep_egress(packet);
        }
        if self.hook.is_none() {
            for packet in packets.drain(..) {
                self.nic_enqueue(packet, ctx);
            }
            self.arena.recycle_batch(packets);
            return;
        }
        let mut verdicts = std::mem::take(&mut self.verdict_buf);
        verdicts.clear();
        {
            let hook = self.hook.as_mut().expect("checked above");
            let mut env = HookEnv {
                now: ctx.now(),
                rng: ctx.rng(),
            };
            hook.on_egress_batch(&mut packets, &mut env, &mut verdicts);
        }
        debug_assert_eq!(verdicts.len(), packets.len(), "one verdict per packet");
        for (packet, verdict) in packets.drain(..).zip(verdicts.drain(..)) {
            self.route_egress_verdict(packet, verdict, ctx);
        }
        self.verdict_buf = verdicts;
        self.arena.recycle_batch(packets);
    }

    fn route_egress_verdict(&mut self, packet: Packet, verdict: HookVerdict, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.trace.as_mut() {
            let v = match verdict {
                HookVerdict::Pass => TraceVerdict::Pass,
                HookVerdict::Drop => TraceVerdict::Drop,
                HookVerdict::Queue { .. } => TraceVerdict::Queue,
            };
            t.record(
                ctx.now().as_nanos(),
                packet.id,
                pkt_class(&packet),
                TraceLayer::Enclave,
                v,
            );
        }
        match verdict {
            HookVerdict::Pass => self.nic_enqueue(packet, ctx),
            HookVerdict::Drop => {
                self.hook_drops += 1;
                self.arena.recycle_packet(packet);
            }
            HookVerdict::Queue { queue, charge } => {
                if queue >= self.limiters.len() {
                    self.bad_queue_drops += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(
                            ctx.now().as_nanos(),
                            packet.id,
                            pkt_class(&packet),
                            TraceLayer::Limiter,
                            TraceVerdict::Drop,
                        );
                    }
                    self.arena.recycle_packet(packet);
                    return;
                }
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        ctx.now().as_nanos(),
                        packet.id,
                        pkt_class(&packet),
                        TraceLayer::Limiter,
                        TraceVerdict::Enqueue,
                    );
                }
                self.limiters[queue].enqueue(packet, charge, ctx.now());
                let released = self.limiters[queue].release(ctx.now());
                for p in released {
                    self.nic_enqueue(p, ctx);
                }
                self.arm_limiter(queue, ctx);
            }
        }
    }

    fn arm_limiter(&mut self, queue: usize, ctx: &mut Ctx<'_>) {
        if self.limiter_armed[queue] {
            return;
        }
        if let Some(at) = self.limiters[queue].next_release_at(ctx.now()) {
            let at = at.max(ctx.now() + Time::from_nanos(1));
            self.limiter_armed[queue] = true;
            ctx.timer_at(at, token(TOKEN_LIMITER, queue as u64));
        }
    }

    fn nic_enqueue(&mut self, packet: Packet, ctx: &mut Ctx<'_>) {
        if !self.nic.busy && !self.nic.has_backlog() {
            if let Some(t) = self.trace.as_mut() {
                t.record(
                    ctx.now().as_nanos(),
                    packet.id,
                    pkt_class(&packet),
                    TraceLayer::Wire,
                    TraceVerdict::Tx,
                );
            }
            self.nic.busy = true;
            ctx.start_tx(PortId(0), packet);
            return;
        }
        // Local ACK prioritization: pure control packets (no payload) jump
        // the host's own data backlog, like real stacks' thin-stream
        // handling. This is host-local — the wire 802.1Q priority is
        // untouched, so switches still schedule by the enclave's marking.
        // Without it, a host saturating its uplink with data starves the
        // ACK stream that clocks its peers (visible as total WRITE-tenant
        // collapse in the Figure 11 scenario).
        let class = if packet.payload_len == 0 {
            7
        } else {
            packet.priority()
        };
        let (pid, pclass) = (packet.id, pkt_class(&packet));
        let accepted = self.nic.enqueue_with_class(packet, class);
        if !accepted {
            self.nic_drops += 1;
        }
        if let Some(t) = self.trace.as_mut() {
            t.record(
                ctx.now().as_nanos(),
                pid,
                pclass,
                TraceLayer::Nic,
                if accepted {
                    TraceVerdict::Enqueue
                } else {
                    TraceVerdict::Drop
                },
            );
        }
    }
}
