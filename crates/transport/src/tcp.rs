//! Reno-style TCP.
//!
//! Implements the congestion behaviour that the paper's evaluation leans on:
//! slow start, congestion avoidance, fast retransmit/recovery on three
//! duplicate ACKs (NewReno-flavoured partial-ACK handling), and RFC 6298
//! RTO estimation with exponential backoff. Receive-side: cumulative ACKs,
//! out-of-order segment buffering, and delivery of application message
//! markers in order.
//!
//! Sequence space: the simulator uses ISS = 0 on both sides (flows in the
//! evaluation are far below 4 GB, and nothing here needs ISN randomization).
//! The SYN and FIN each consume one sequence number, per the RFC.
//!
//! Message tagging (§4.2): [`Conn::send_message`] records the sequence range
//! and metadata of each application message; every emitted segment is
//! tagged with its message's [`EdenMeta`] (and an [`AppMarker`] on the
//! final segment), including on retransmission.

use std::collections::BTreeMap;

use netsim::{AppMarker, EdenMeta, Packet, TcpFlags, TcpHeader, Time};

/// Maximum segment size, bytes of payload per packet (1500 MTU − 40).
pub const MSS: usize = 1460;

/// TCP tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial congestion window, bytes.
    pub init_cwnd: u32,
    /// Receive window advertised to the peer, bytes.
    pub rwnd: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Time,
    /// Upper bound on the retransmission timeout.
    pub max_rto: Time,
    /// Reordering tolerance (RACK-style): on the third duplicate ACK, wait
    /// this long for the hole to fill before declaring loss. `None` is
    /// classic Reno (immediate fast retransmit). Per-packet multipath
    /// spraying (the paper's WCMP case study) needs `Some(_)` to avoid
    /// collapsing on benign reordering, mirroring the reordering
    /// resilience of production stacks.
    pub reorder_window: Option<Time>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            init_cwnd: 10 * MSS as u32,
            rwnd: 1 << 20,
            min_rto: Time::from_millis(2),
            max_rto: Time::from_secs(2),
            reorder_window: None,
        }
    }
}

/// Connection lifecycle states (simplified TCP state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Active open sent a SYN.
    SynSent,
    /// Passive open answered with SYN-ACK.
    SynReceived,
    /// Data may flow.
    Established,
    /// We sent a FIN and await its ACK.
    FinWait,
    /// Both sides are done.
    Closed,
}

/// Counters kept per connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    pub packets_sent: u64,
    pub bytes_acked: u64,
    pub retransmits: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub dup_acks_received: u64,
    /// Dup-ACK episodes that resolved as reordering (no window cut).
    pub reorder_events: u64,
}

/// One application message's place in the sequence space (§4.2: "we record
/// the sequence number of the sender along with the extra information").
#[derive(Debug, Clone)]
struct MsgRange {
    start: u32,
    end: u32,
    app_tag: u64,
    meta: Option<EdenMeta>,
}

/// Events a connection reports up to the application layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpEvent {
    /// Three-way handshake finished (active side).
    Connected,
    /// Three-way handshake finished (passive side).
    Accepted,
    /// `bytes` new in-order payload bytes were delivered.
    Data { bytes: u32 },
    /// A complete application message arrived.
    Message { app_tag: u64, size: u32 },
    /// The peer closed (FIN received and all data delivered).
    PeerClosed,
    /// Our FIN was acknowledged; the connection is fully closed.
    Closed,
}

/// A TCP connection.
#[derive(Debug)]
pub struct Conn {
    pub state: ConnState,
    pub local_ip: u32,
    pub local_port: u16,
    pub remote_ip: u32,
    pub remote_port: u16,
    cfg: TcpConfig,

    // --- send side -------------------------------------------------------
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// End of data buffered by the application (exclusive).
    buffered_end: u32,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// NewReno: in fast recovery until snd_una passes `recover`.
    in_recovery: bool,
    recover: u32,
    /// Peer's advertised window, bytes.
    peer_wnd: u32,
    messages: Vec<MsgRange>,
    fin_queued: bool,
    fin_sent: bool,

    // --- RTO -------------------------------------------------------------
    srtt: Option<f64>,
    rttvar: f64,
    rto: Time,
    /// Outstanding RTT probe: (sequence that must be acked, send time).
    rtt_probe: Option<(u32, Time)>,
    /// Generation counter: a fired timer is valid only if it carries the
    /// current generation (rearming bumps it, implicitly cancelling).
    pub(crate) rto_gen: u64,
    pub(crate) rto_armed: bool,
    /// Reorder-tolerance timer state (see [`TcpConfig::reorder_window`]).
    pub(crate) reorder_gen: u64,
    pub(crate) reorder_armed: bool,
    /// The unacked sequence the pending reorder timer is watching.
    reorder_hole: u32,

    // --- receive side ----------------------------------------------------
    rcv_nxt: u32,
    /// Out-of-order segments: start seq → (len, marker).
    ooo: BTreeMap<u32, (u32, Option<AppMarker>)>,
    /// Markers whose message end has not yet been delivered in order.
    pending_markers: Vec<AppMarker>,
    peer_fin_at: Option<u32>,
    peer_closed_delivered: bool,

    pub stats: ConnStats,
}

/// What `Conn` methods hand back to the stack for transmission and timer
/// management.
#[derive(Debug, Default)]
pub struct TcpOutput {
    /// Packets to push down the egress path (enclave → NIC).
    pub packets: Vec<Packet>,
    /// Application-visible events.
    pub events: Vec<TcpEvent>,
    /// `Some(deadline)`: (re)arm the RTO timer; `None`: leave as is. The
    /// stack reads `rto_armed == false` to cancel.
    pub arm_rto: Option<Time>,
    /// `Some(deadline)`: arm the reorder-tolerance timer.
    pub arm_reorder: Option<Time>,
}

impl Conn {
    fn new(cfg: TcpConfig, state: ConnState, local: (u32, u16), remote: (u32, u16)) -> Conn {
        Conn {
            state,
            local_ip: local.0,
            local_port: local.1,
            remote_ip: remote.0,
            remote_port: remote.1,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            buffered_end: 1, // SYN occupies seq 0; data starts at 1
            cwnd: cfg.init_cwnd as f64,
            ssthresh: f64::MAX,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            peer_wnd: cfg.rwnd,
            messages: Vec::new(),
            fin_queued: false,
            fin_sent: false,
            srtt: None,
            rttvar: 0.0,
            rto: Time::from_millis(200),
            rtt_probe: None,
            rto_gen: 0,
            rto_armed: false,
            reorder_gen: 0,
            reorder_armed: false,
            reorder_hole: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            pending_markers: Vec::new(),
            peer_fin_at: None,
            peer_closed_delivered: false,
            stats: ConnStats::default(),
        }
    }

    /// Active open: returns the connection and its SYN.
    pub fn connect(
        cfg: TcpConfig,
        local: (u32, u16),
        remote: (u32, u16),
        now: Time,
        out: &mut TcpOutput,
    ) -> Conn {
        let mut c = Conn::new(cfg, ConnState::SynSent, local, remote);
        let syn = c.control_packet(
            0,
            TcpFlags {
                syn: true,
                ..Default::default()
            },
        );
        c.snd_nxt = 1;
        c.stats.packets_sent += 1;
        out.packets.push(syn);
        c.arm_rto(now, out);
        c
    }

    /// Passive open from a received SYN: returns the connection and its
    /// SYN-ACK.
    pub fn accept(
        cfg: TcpConfig,
        local: (u32, u16),
        remote: (u32, u16),
        syn_seq: u32,
        now: Time,
        out: &mut TcpOutput,
    ) -> Conn {
        let mut c = Conn::new(cfg, ConnState::SynReceived, local, remote);
        c.rcv_nxt = syn_seq.wrapping_add(1);
        let synack = c.control_packet(
            0,
            TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
        );
        c.snd_nxt = 1;
        c.stats.packets_sent += 1;
        out.packets.push(synack);
        c.arm_rto(now, out);
        c
    }

    /// Queue an application message of `bytes` with optional Eden metadata;
    /// the final segment will carry an [`AppMarker`] with `app_tag`.
    pub fn send_message(
        &mut self,
        bytes: u32,
        app_tag: u64,
        meta: Option<EdenMeta>,
        now: Time,
        out: &mut TcpOutput,
    ) {
        assert!(bytes > 0, "empty messages are not sendable");
        assert!(!self.fin_queued, "send after close");
        let start = self.buffered_end;
        let end = start + bytes;
        self.messages.push(MsgRange {
            start,
            end,
            app_tag,
            meta,
        });
        self.buffered_end = end;
        self.try_send(now, out);
    }

    /// Ask to close once all buffered data is sent.
    pub fn close(&mut self, now: Time, out: &mut TcpOutput) {
        if !self.fin_queued {
            self.fin_queued = true;
            self.try_send(now, out);
        }
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked(&self) -> u32 {
        self.buffered_end.saturating_sub(self.snd_una.max(1))
    }

    /// Whether every buffered byte has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.snd_una >= self.buffered_end
    }

    /// Current congestion window in bytes (for tests/instrumentation).
    pub fn cwnd(&self) -> u32 {
        self.cwnd as u32
    }

    /// Current retransmission timeout (for tests/instrumentation).
    pub fn rto(&self) -> Time {
        self.rto
    }

    /// Smoothed RTT estimate in nanoseconds (0 before the first sample).
    pub fn srtt_ns(&self) -> u64 {
        self.srtt.unwrap_or(0.0) as u64
    }

    /// Bytes currently in flight (sent, unacked).
    pub fn in_flight(&self) -> u32 {
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    // ------------------------------------------------------------------
    // segment construction
    // ------------------------------------------------------------------

    fn header(&self, seq: u32, flags: TcpFlags) -> TcpHeader {
        TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: self.rcv_nxt,
            flags,
            // advertised window in units of 64 bytes (fixed scale)
            window: (self.cfg.rwnd / 64).min(u16::MAX as u32) as u16,
        }
    }

    fn control_packet(&self, seq: u32, flags: TcpFlags) -> Packet {
        Packet::tcp(self.local_ip, self.remote_ip, self.header(seq, flags), 0)
    }

    /// Build the data segment starting at `seq`, clipped to MSS, buffered
    /// data, and its message boundary (segments never span messages, so
    /// every packet has exactly one message's metadata).
    fn data_segment(&self, seq: u32) -> Packet {
        let msg = self
            .messages
            .iter()
            .find(|m| m.start <= seq && seq < m.end)
            .expect("segment sequence inside a recorded message");
        let end = (seq + MSS as u32).min(msg.end).min(self.buffered_end);
        let len = (end - seq) as usize;
        let is_msg_end = end == msg.end;
        let mut p = Packet::tcp(
            self.local_ip,
            self.remote_ip,
            self.header(
                seq,
                TcpFlags {
                    ack: true,
                    psh: is_msg_end,
                    ..Default::default()
                },
            ),
            len,
        );
        if let Some(meta) = &msg.meta {
            let mut meta = meta.clone();
            meta.msg_start = seq == msg.start;
            p.meta = Some(meta);
        }
        if is_msg_end {
            p.app_marker = Some(AppMarker {
                app_tag: msg.app_tag,
                end_seq: msg.end,
                msg_size: msg.end - msg.start,
            });
        }
        p
    }

    fn effective_window(&self) -> u32 {
        (self.cwnd as u32).min(self.peer_wnd)
    }

    /// Emit as many new segments as the window allows.
    fn try_send(&mut self, now: Time, out: &mut TcpOutput) {
        if !matches!(self.state, ConnState::Established | ConnState::FinWait) {
            return;
        }
        let mut sent_any = false;
        while self.snd_nxt < self.buffered_end {
            let in_flight = self.snd_nxt.saturating_sub(self.snd_una);
            if in_flight >= self.effective_window() {
                break;
            }
            let p = self.data_segment(self.snd_nxt);
            self.snd_nxt += p.payload_len as u32;
            self.stats.packets_sent += 1;
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            out.packets.push(p);
            sent_any = true;
        }
        // FIN once all data is out
        if self.fin_queued && !self.fin_sent && self.snd_nxt == self.buffered_end {
            let fin = self.control_packet(
                self.snd_nxt,
                TcpFlags {
                    fin: true,
                    ack: true,
                    ..Default::default()
                },
            );
            self.snd_nxt += 1;
            self.fin_sent = true;
            self.state = ConnState::FinWait;
            self.stats.packets_sent += 1;
            out.packets.push(fin);
            sent_any = true;
        }
        if sent_any && !self.rto_armed {
            self.arm_rto(now, out);
        }
    }

    fn arm_rto(&mut self, now: Time, out: &mut TcpOutput) {
        self.rto_gen += 1;
        self.rto_armed = true;
        out.arm_rto = Some(now + self.rto);
    }

    fn cancel_rto(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
    }

    // ------------------------------------------------------------------
    // inbound processing
    // ------------------------------------------------------------------

    /// Process a segment addressed to this connection.
    pub fn on_segment(&mut self, packet: &Packet, now: Time, out: &mut TcpOutput) {
        let hdr = match packet.tcp_header() {
            Some(h) => *h,
            None => return,
        };
        self.peer_wnd = u32::from(hdr.window) * 64;

        // --- handshake ---------------------------------------------------
        if hdr.flags.syn && hdr.flags.ack {
            if self.state == ConnState::SynSent {
                self.rcv_nxt = hdr.seq.wrapping_add(1);
                self.snd_una = hdr.ack; // = 1
                self.state = ConnState::Established;
                self.cancel_rto();
                let ack = self.control_packet(
                    self.snd_nxt,
                    TcpFlags {
                        ack: true,
                        ..Default::default()
                    },
                );
                self.stats.packets_sent += 1;
                out.packets.push(ack);
                out.events.push(TcpEvent::Connected);
                self.try_send(now, out);
            }
            return;
        }
        if hdr.flags.syn {
            // duplicate SYN for an existing connection: re-send SYN-ACK
            let synack = self.control_packet(
                0,
                TcpFlags {
                    syn: true,
                    ack: true,
                    ..Default::default()
                },
            );
            self.stats.packets_sent += 1;
            out.packets.push(synack);
            return;
        }

        // --- ACK processing ------------------------------------------------
        if hdr.flags.ack {
            self.process_ack(hdr.ack, packet.payload_len == 0 && !hdr.flags.fin, now, out);
        }

        // --- payload ---------------------------------------------------------
        if packet.payload_len > 0 {
            self.process_data(&hdr, packet, now, out);
        }

        // --- FIN -------------------------------------------------------------
        if hdr.flags.fin {
            let fin_seq = hdr.seq + packet.payload_len as u32;
            self.peer_fin_at = Some(fin_seq);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = fin_seq + 1;
            }
            let ack = self.control_packet(
                self.snd_nxt,
                TcpFlags {
                    ack: true,
                    ..Default::default()
                },
            );
            self.stats.packets_sent += 1;
            out.packets.push(ack);
            if !self.peer_closed_delivered && self.rcv_nxt > fin_seq {
                self.peer_closed_delivered = true;
                out.events.push(TcpEvent::PeerClosed);
            }
        }
    }

    fn process_ack(&mut self, ack: u32, pure_ack: bool, now: Time, out: &mut TcpOutput) {
        if self.state == ConnState::SynReceived && ack >= 1 {
            self.state = ConnState::Established;
            self.cancel_rto();
            out.events.push(TcpEvent::Accepted);
        }

        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            // a late ACK may overtake a go-back-N rewind of snd_nxt
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.stats.bytes_acked += u64::from(newly);
            self.dupacks = 0;
            if self.reorder_armed {
                // hole filled: benign reordering, cancel the pending cut
                self.reorder_armed = false;
                self.reorder_gen += 1;
                self.stats.reorder_events += 1;
            }

            // RTT sample (Karn's algorithm: probe invalidated on retransmit)
            if let Some((need, sent)) = self.rtt_probe {
                if ack >= need {
                    self.rtt_sample(now.saturating_sub(sent));
                    self.rtt_probe = None;
                }
            }

            if self.in_recovery {
                if ack >= self.recover {
                    // full recovery
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole
                    let seg = self.data_segment(self.snd_una);
                    self.stats.packets_sent += 1;
                    self.stats.retransmits += 1;
                    out.packets.push(seg);
                }
            } else if self.cwnd < self.ssthresh {
                // slow start
                self.cwnd += (newly as f64).min(MSS as f64);
            } else {
                // congestion avoidance: ~MSS per RTT
                self.cwnd += (MSS as f64) * (MSS as f64) / self.cwnd;
            }

            // FIN acknowledged?
            if self.fin_sent && ack > self.buffered_end && self.state == ConnState::FinWait {
                self.state = ConnState::Closed;
                self.cancel_rto();
                out.events.push(TcpEvent::Closed);
                return;
            }

            if self.snd_una < self.snd_nxt {
                self.arm_rto(now, out); // restart for remaining data
            } else {
                self.cancel_rto();
            }
            self.try_send(now, out);
        } else if ack == self.snd_una && pure_ack && self.snd_una < self.snd_nxt {
            // duplicate ACK
            self.dupacks += 1;
            self.stats.dup_acks_received += 1;
            if self.dupacks == 3 && !self.in_recovery {
                match self.cfg.reorder_window {
                    // RACK-style: give reordering a chance to resolve
                    Some(window) => {
                        if !self.reorder_armed {
                            self.reorder_armed = true;
                            self.reorder_gen += 1;
                            self.reorder_hole = self.snd_una;
                            out.arm_reorder = Some(now + window);
                        }
                    }
                    None => self.fast_retransmit(now, out),
                }
            } else if self.in_recovery {
                // window inflation keeps the pipe full during recovery
                self.cwnd += MSS as f64;
                self.try_send(now, out);
            }
        }
    }

    fn process_data(&mut self, hdr: &TcpHeader, packet: &Packet, _now: Time, out: &mut TcpOutput) {
        let seq = hdr.seq;
        let len = packet.payload_len as u32;

        if seq.wrapping_add(len) <= self.rcv_nxt {
            // old retransmission — re-ACK
        } else if seq <= self.rcv_nxt {
            // in-order (possibly partially old)
            let before = self.rcv_nxt;
            let new_end = seq + len;
            self.rcv_nxt = new_end;
            if let Some(m) = packet.app_marker {
                self.pending_markers.push(m);
            }
            // drain contiguous out-of-order segments
            while let Some((&s, &(l, marker))) = self.ooo.iter().next() {
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&s);
                let seg_end = s + l;
                if seg_end > self.rcv_nxt {
                    self.rcv_nxt = seg_end;
                }
                if let Some(m) = marker {
                    self.pending_markers.push(m);
                }
            }
            // everything newly contiguous counts: the fresh segment plus
            // whatever it released from the out-of-order buffer
            out.events.push(TcpEvent::Data {
                bytes: self.rcv_nxt - before,
            });
            // deliver completed messages in order
            self.pending_markers.sort_by_key(|m| m.end_seq);
            while let Some(m) = self.pending_markers.first().copied() {
                if m.end_seq <= self.rcv_nxt {
                    self.pending_markers.remove(0);
                    out.events.push(TcpEvent::Message {
                        app_tag: m.app_tag,
                        size: m.msg_size,
                    });
                } else {
                    break;
                }
            }
            // FIN that arrived earlier out of order
            if let Some(fin_seq) = self.peer_fin_at {
                if fin_seq == self.rcv_nxt {
                    self.rcv_nxt = fin_seq + 1;
                    if !self.peer_closed_delivered {
                        self.peer_closed_delivered = true;
                        out.events.push(TcpEvent::PeerClosed);
                    }
                }
            }
        } else {
            // out of order: buffer and dup-ACK
            self.ooo.insert(seq, (len, packet.app_marker));
        }

        let ack = self.control_packet(
            self.snd_nxt,
            TcpFlags {
                ack: true,
                ..Default::default()
            },
        );
        self.stats.packets_sent += 1;
        out.packets.push(ack);
    }

    fn rtt_sample(&mut self, rtt: Time) {
        let r = rtt.as_nanos() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto_ns = self.srtt.expect("set above") + (4.0 * self.rttvar).max(1000.0);
        let rto = Time::from_nanos(rto_ns as u64);
        self.rto = rto.max(self.cfg.min_rto).min(self.cfg.max_rto);
    }

    /// Classic Reno fast retransmit + entry into (New)Reno recovery.
    fn fast_retransmit(&mut self, now: Time, out: &mut TcpOutput) {
        let flight = (self.snd_nxt - self.snd_una) as f64;
        self.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
        self.cwnd = self.ssthresh + 3.0 * MSS as f64;
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        let seg = self.data_segment(self.snd_una);
        self.stats.packets_sent += 1;
        self.stats.retransmits += 1;
        self.stats.fast_retransmits += 1;
        out.packets.push(seg);
        self.arm_rto(now, out);
    }

    /// The reorder-tolerance timer fired: if the hole is still unfilled,
    /// the dup-ACKs meant loss, not reordering — retransmit and cut. If it
    /// resolved in the meantime, the event was benign reordering and the
    /// window is untouched (the WCMP case study depends on this).
    pub fn on_reorder_timeout(&mut self, now: Time, out: &mut TcpOutput) {
        self.reorder_armed = false;
        if self.snd_una == self.reorder_hole
            && self.snd_una < self.snd_nxt
            && !self.in_recovery
            && self.dupacks >= 3
        {
            self.fast_retransmit(now, out);
        } else {
            self.stats.reorder_events += 1;
        }
    }

    /// The RTO timer fired (stack verified the generation matches).
    pub fn on_rto(&mut self, now: Time, out: &mut TcpOutput) {
        self.rto_armed = false;
        match self.state {
            ConnState::SynSent => {
                let syn = self.control_packet(
                    0,
                    TcpFlags {
                        syn: true,
                        ..Default::default()
                    },
                );
                self.stats.packets_sent += 1;
                self.stats.timeouts += 1;
                out.packets.push(syn);
            }
            ConnState::SynReceived => {
                let synack = self.control_packet(
                    0,
                    TcpFlags {
                        syn: true,
                        ack: true,
                        ..Default::default()
                    },
                );
                self.stats.packets_sent += 1;
                self.stats.timeouts += 1;
                out.packets.push(synack);
            }
            ConnState::Established | ConnState::FinWait => {
                if self.snd_una >= self.snd_nxt {
                    return; // nothing outstanding
                }
                self.stats.timeouts += 1;
                self.stats.retransmits += 1;
                let flight = (self.snd_nxt - self.snd_una) as f64;
                self.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
                self.cwnd = MSS as f64;
                self.dupacks = 0;
                self.in_recovery = false;
                self.rtt_probe = None; // Karn: no sample from retransmit
                if self.fin_sent && self.snd_una == self.buffered_end {
                    // only the FIN is outstanding
                    let fin = self.control_packet(
                        self.buffered_end,
                        TcpFlags {
                            fin: true,
                            ack: true,
                            ..Default::default()
                        },
                    );
                    self.stats.packets_sent += 1;
                    out.packets.push(fin);
                } else {
                    // Go-back-N: rewind to the oldest unacked byte and let
                    // slow start re-send from there. Without SACK the
                    // sender cannot know which later segments survived;
                    // retransmitting only the head would leave every
                    // subsequent hole to its own full (backed-off) RTO.
                    self.snd_nxt = self.snd_una;
                    if self.fin_sent {
                        self.fin_sent = false; // resend the FIN after data
                    }
                    self.try_send(now, out);
                }
            }
            ConnState::Closed => return,
        }
        // exponential backoff
        self.rto = Time::from_nanos((self.rto.as_nanos() * 2).min(self.cfg.max_rto.as_nanos()));
        self.arm_rto(now, out);
    }

    /// Drop message ranges that are fully acknowledged (bounds memory on
    /// long-lived connections).
    pub fn gc_messages(&mut self) {
        let una = self.snd_una;
        if self.messages.len() > 64 {
            self.messages.retain(|m| m.end > una);
        }
    }
}
