//! End-to-end transport tests over the simulated fabric: handshake, bulk
//! transfer at line rate, loss recovery (fast retransmit and RTO),
//! message framing, rate-limited queues, and close.

use netsim::{Ctx, LinkSpec, Network, NodeId, Packet, PortId, Time};
use transport::{
    app_timer_token, App, ConnId, HookEnv, HookVerdict, Host, PacketHook, Stack, StackConfig, MSS,
};

/// Client: at t=0 connects and sends `send_bytes` as one message; records
/// when its request is fully acked and when a response arrives.
#[derive(Default)]
struct Client {
    server: u32,
    port: u16,
    send_bytes: u32,
    conn: Option<ConnId>,
    connected_at: Option<Time>,
    response_at: Option<Time>,
    response_size: u32,
}

impl App for Client {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        let conn = stack.connect(self.server, self.port, ctx);
        self.conn = Some(conn);
    }

    fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        self.connected_at = Some(ctx.now());
        if self.send_bytes > 0 {
            stack.send_message(conn, self.send_bytes, 1, None, ctx);
        }
    }

    fn on_message(
        &mut self,
        _conn: ConnId,
        _tag: u64,
        size: u32,
        _stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        self.response_at = Some(ctx.now());
        self.response_size = size;
    }
}

/// Server: listens; when a full request message arrives, responds with
/// `respond_bytes` (0 = no response).
#[derive(Default)]
struct Server {
    respond_bytes: u32,
    requests: Vec<(Time, u64, u32)>,
}

impl App for Server {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        stack.listen(7000);
    }

    fn on_message(
        &mut self,
        conn: ConnId,
        app_tag: u64,
        size: u32,
        stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        self.requests.push((ctx.now(), app_tag, size));
        if self.respond_bytes > 0 {
            stack.send_message(conn, self.respond_bytes, app_tag | 0x8000_0000, None, ctx);
        }
    }
}

/// Build: client(ip=1) — switch — server(ip=2), both links `spec`.
fn pair(spec: LinkSpec, client: Client, server: Server) -> (Network, NodeId, NodeId) {
    let mut net = Network::new(1);
    let c = net.add_node(Host::new(Stack::new(1, StackConfig::default()), client));
    let s = net.add_node(Host::new(Stack::new(2, StackConfig::default()), server));
    let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
    net.connect(c, sw, spec);
    net.connect(s, sw, spec);
    {
        let swn = net.node_mut::<netsim::Switch>(sw);
        swn.install_route(1, PortId(0));
        swn.install_route(2, PortId(1));
    }
    net.schedule_timer(s, Time::ZERO, app_timer_token(0));
    net.schedule_timer(c, Time::from_nanos(10), app_timer_token(0));
    (net, c, s)
}

type CHost = Host<Client>;
type SHost = Host<Server>;

#[test]
fn handshake_completes() {
    let (mut net, c, _s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 0,
            ..Default::default()
        },
        Server::default(),
    );
    net.run_until(Time::from_millis(10));
    let client = net.node::<CHost>(c);
    let t = client.app.connected_at.expect("handshake done");
    // SYN + SYN-ACK ≈ 2 * (serialization + propagation) ≈ a few microseconds
    assert!(t < Time::from_micros(20), "handshake took {t}");
}

#[test]
fn message_delivered_intact() {
    let (mut net, _c, s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 123_456,
            ..Default::default()
        },
        Server::default(),
    );
    net.run_until(Time::from_millis(100));
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1);
    let (_, tag, size) = server.app.requests[0];
    assert_eq!(tag, 1);
    assert_eq!(size, 123_456);
}

#[test]
fn request_response_round_trip() {
    let (mut net, c, _s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 100,
            ..Default::default()
        },
        Server {
            respond_bytes: 20_000,
            ..Default::default()
        },
    );
    net.run_until(Time::from_millis(100));
    let client = net.node::<CHost>(c);
    assert_eq!(client.app.response_size, 20_000);
    let fct = client.app.response_at.expect("response arrived");
    assert!(fct < Time::from_millis(1), "20KB over 10G took {fct}");
}

#[test]
fn bulk_flow_approaches_line_rate() {
    // 10 MB over 1 Gbps ≈ 80ms at line rate (plus slow start).
    let (mut net, _c, s) = pair(
        LinkSpec::one_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 10_000_000,
            ..Default::default()
        },
        Server::default(),
    );
    net.run_until(Time::from_secs(2));
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1, "flow completed");
    let (t, _, size) = server.app.requests[0];
    assert_eq!(size, 10_000_000);
    let goodput = size as f64 * 8.0 / t.as_secs_f64();
    assert!(
        goodput > 0.85e9,
        "goodput {:.0} Mbps below 85% of line rate",
        goodput / 1e6
    );
    assert!(goodput < 1.0e9, "goodput cannot exceed line rate");
}

/// Hook that drops chosen data packets (by count of data segments seen).
struct DropNth {
    drop: Vec<u64>,
    seen: u64,
}

impl PacketHook for DropNth {
    fn on_egress(&mut self, packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        if packet.payload_len == 0 {
            return HookVerdict::Pass;
        }
        self.seen += 1;
        if self.drop.contains(&self.seen) {
            HookVerdict::Drop
        } else {
            HookVerdict::Pass
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn fast_retransmit_recovers_single_loss() {
    let (mut net, c, s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 500_000,
            ..Default::default()
        },
        Server::default(),
    );
    // Drop the 20th data segment at the client's egress.
    net.node_mut::<CHost>(c).stack.set_hook(DropNth {
        drop: vec![20],
        seen: 0,
    });
    net.run_until(Time::from_secs(1));
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1, "flow still completes");
    let client = net.node::<CHost>(c);
    let conn = client.app.conn.expect("connected");
    let stats = client.stack.conn_stats(conn);
    assert!(
        stats.fast_retransmits >= 1,
        "loss in a big window must trigger fast retransmit: {stats:?}"
    );
    assert_eq!(
        stats.timeouts, 0,
        "single mid-window loss should not need an RTO: {stats:?}"
    );
}

#[test]
fn rto_recovers_tail_loss() {
    // Drop the very last data segment: no dup ACKs follow, so recovery must
    // come from the retransmission timer.
    let total: u32 = 10 * MSS as u32;
    let last_seg = total.div_ceil(MSS as u32) as u64;
    let (mut net, c, s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: total,
            ..Default::default()
        },
        Server::default(),
    );
    net.node_mut::<CHost>(c).stack.set_hook(DropNth {
        drop: vec![last_seg],
        seen: 0,
    });
    net.run_until(Time::from_secs(1));
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1, "flow completes after RTO");
    let client = net.node::<CHost>(c);
    let stats = client.stack.conn_stats(client.app.conn.unwrap());
    assert!(stats.timeouts >= 1, "tail loss needs the timer: {stats:?}");
}

#[test]
fn multiple_messages_frame_independently() {
    #[derive(Default)]
    struct Multi {
        conn: Option<ConnId>,
    }
    impl App for Multi {
        fn on_timer(&mut self, _t: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
            self.conn = Some(stack.connect(2, 7000, ctx));
        }
        fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
            for (i, size) in [5_000u32, 100, 40_000, 1].iter().enumerate() {
                stack.send_message(conn, *size, 100 + i as u64, None, ctx);
            }
        }
    }

    let mut net = Network::new(1);
    let c = net.add_node(Host::new(
        Stack::new(1, StackConfig::default()),
        Multi::default(),
    ));
    let s = net.add_node(Host::new(
        Stack::new(2, StackConfig::default()),
        Server::default(),
    ));
    let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
    net.connect(c, sw, LinkSpec::ten_gbps());
    net.connect(s, sw, LinkSpec::ten_gbps());
    {
        let swn = net.node_mut::<netsim::Switch>(sw);
        swn.install_route(1, PortId(0));
        swn.install_route(2, PortId(1));
    }
    net.schedule_timer(s, Time::ZERO, app_timer_token(0));
    net.schedule_timer(c, Time::from_nanos(10), app_timer_token(0));
    net.run_until(Time::from_millis(100));

    let server = net.node::<SHost>(s);
    let got: Vec<(u64, u32)> = server
        .app
        .requests
        .iter()
        .map(|&(_, t, s)| (t, s))
        .collect();
    assert_eq!(
        got,
        vec![(100, 5_000), (101, 100), (102, 40_000), (103, 1)],
        "messages delivered in order with correct sizes"
    );
}

/// Hook that diverts every data packet to rate-limit queue 0, charging the
/// packet's wire size.
struct LimitAll;

impl PacketHook for LimitAll {
    fn on_egress(&mut self, packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        if packet.payload_len == 0 {
            HookVerdict::Pass
        } else {
            HookVerdict::Queue {
                queue: 0,
                charge: packet.wire_len() as u64,
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn rate_limited_queue_caps_throughput() {
    let (mut net, c, s) = pair(
        LinkSpec::ten_gbps(),
        Client {
            server: 2,
            port: 7000,
            send_bytes: 1_000_000,
            ..Default::default()
        },
        Server::default(),
    );
    {
        let host = net.node_mut::<CHost>(c);
        let q = host.stack.add_limiter(100_000_000, 30_000); // 100 Mbps
        assert_eq!(q, 0);
        host.stack.set_hook(LimitAll);
    }
    net.run_until(Time::from_secs(2));
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1);
    let (t, _, size) = server.app.requests[0];
    let goodput = size as f64 * 8.0 / t.as_secs_f64();
    assert!(
        goodput < 115e6,
        "limiter must cap at ~100 Mbps, got {:.0} Mbps",
        goodput / 1e6
    );
    assert!(
        goodput > 60e6,
        "limiter should not strangle the flow: {:.0} Mbps",
        goodput / 1e6
    );
}

#[test]
fn close_handshake_completes() {
    #[derive(Default)]
    struct Closer {
        conn: Option<ConnId>,
        closed_at: Option<Time>,
    }
    impl App for Closer {
        fn on_timer(&mut self, _t: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
            self.conn = Some(stack.connect(2, 7000, ctx));
        }
        fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
            stack.send_message(conn, 5000, 9, None, ctx);
            stack.close(conn, ctx);
        }
        fn on_closed(&mut self, _c: ConnId, _s: &mut Stack, ctx: &mut Ctx<'_>) {
            self.closed_at = Some(ctx.now());
        }
    }

    let mut net = Network::new(1);
    let c = net.add_node(Host::new(
        Stack::new(1, StackConfig::default()),
        Closer::default(),
    ));
    let s = net.add_node(Host::new(
        Stack::new(2, StackConfig::default()),
        Server::default(),
    ));
    let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
    net.connect(c, sw, LinkSpec::ten_gbps());
    net.connect(s, sw, LinkSpec::ten_gbps());
    {
        let swn = net.node_mut::<netsim::Switch>(sw);
        swn.install_route(1, PortId(0));
        swn.install_route(2, PortId(1));
    }
    net.schedule_timer(s, Time::ZERO, app_timer_token(0));
    net.schedule_timer(c, Time::from_nanos(10), app_timer_token(0));
    net.run_until(Time::from_millis(50));

    let closer = net.node::<Host<Closer>>(c);
    assert!(closer.app.closed_at.is_some(), "FIN acked");
    let server = net.node::<SHost>(s);
    assert_eq!(server.app.requests.len(), 1, "data before FIN delivered");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (mut net, c, _s) = pair(
            LinkSpec::ten_gbps(),
            Client {
                server: 2,
                port: 7000,
                send_bytes: 250_000,
                ..Default::default()
            },
            Server::default(),
        );
        net.run_until(Time::from_millis(50));
        let client = net.node::<CHost>(c);
        let stats = client.stack.conn_stats(client.app.conn.unwrap());
        (
            stats.packets_sent,
            stats.bytes_acked,
            net.events_processed(),
        )
    };
    assert_eq!(run(), run());
}
