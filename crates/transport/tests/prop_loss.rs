//! Property tests: TCP delivers every message intact under arbitrary
//! (bounded) loss patterns injected at the sender's egress hook.

use netsim::{Ctx, LinkSpec, Network, Packet, PortId, SimRng, Time};
use proptest::prelude::*;
use transport::{
    app_timer_token, App, ConnId, HookEnv, HookVerdict, Host, PacketHook, Stack, StackConfig,
};

/// Drops data packets according to a pre-drawn Bernoulli pattern, then
/// passes everything once the pattern is exhausted (so runs terminate).
struct PatternLoss {
    pattern: Vec<bool>,
    at: usize,
}

impl PacketHook for PatternLoss {
    fn on_egress(&mut self, packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        if packet.payload_len == 0 {
            return HookVerdict::Pass;
        }
        let drop = self.pattern.get(self.at).copied().unwrap_or(false);
        self.at += 1;
        if drop {
            HookVerdict::Drop
        } else {
            HookVerdict::Pass
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Sender {
    sizes: Vec<u32>,
}

impl App for Sender {
    fn on_timer(&mut self, _t: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        stack.connect(2, 7000, ctx);
    }
    fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        for (i, &size) in self.sizes.iter().enumerate() {
            stack.send_message(conn, size, i as u64, None, ctx);
        }
    }
}

#[derive(Default)]
struct Collector {
    got: Vec<(u64, u32)>,
}

impl App for Collector {
    fn on_timer(&mut self, _t: u64, stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        stack.listen(7000);
    }
    fn on_message(&mut self, _c: ConnId, tag: u64, size: u32, _s: &mut Stack, _x: &mut Ctx<'_>) {
        self.got.push((tag, size));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_messages_survive_bounded_loss(
        sizes in proptest::collection::vec(1u32..60_000, 1..8),
        seed in 0u64..500,
        loss_pct in 0u32..25,
    ) {
        let mut gen = SimRng::new(seed);
        let pattern: Vec<bool> = (0..400)
            .map(|_| gen.below(100) < u64::from(loss_pct))
            .collect();

        let mut net = Network::new(seed);
        let s = net.add_node(Host::new(
            Stack::new(1, StackConfig::default()),
            Sender { sizes: sizes.clone() },
        ));
        let r = net.add_node(Host::new(
            Stack::new(2, StackConfig::default()),
            Collector::default(),
        ));
        let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
        net.connect(s, sw, LinkSpec::ten_gbps());
        net.connect(r, sw, LinkSpec::ten_gbps());
        {
            let swn = net.node_mut::<netsim::Switch>(sw);
            swn.install_route(1, PortId(0));
            swn.install_route(2, PortId(1));
        }
        net.node_mut::<Host<Sender>>(s)
            .stack
            .set_hook(PatternLoss { pattern, at: 0 });
        net.schedule_timer(r, Time::ZERO, app_timer_token(0));
        net.schedule_timer(s, Time::from_nanos(10), app_timer_token(0));
        net.run_until(Time::from_secs(30)); // generous: RTO backoff may bite

        let expected: Vec<(u64, u32)> =
            sizes.iter().enumerate().map(|(i, &s)| (i as u64, s)).collect();
        let got = &net.node::<Host<Collector>>(r).app.got;
        prop_assert_eq!(got, &expected, "messages in order, intact, exactly once");
    }

    #[test]
    fn reorder_tolerant_tcp_also_survives_loss(
        sizes in proptest::collection::vec(1u32..60_000, 1..6),
        seed in 0u64..200,
    ) {
        // With the RACK-style reorder window enabled, loss recovery still
        // works (just delayed by the window).
        let mut gen = SimRng::new(seed);
        let pattern: Vec<bool> = (0..300).map(|_| gen.below(100) < 10).collect();
        let cfg = StackConfig {
            tcp: transport::TcpConfig {
                reorder_window: Some(Time::from_micros(200)),
                ..Default::default()
            },
            ..Default::default()
        };

        let mut net = Network::new(seed);
        let s = net.add_node(Host::new(Stack::new(1, cfg), Sender { sizes: sizes.clone() }));
        let r = net.add_node(Host::new(Stack::new(2, cfg), Collector::default()));
        let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
        net.connect(s, sw, LinkSpec::ten_gbps());
        net.connect(r, sw, LinkSpec::ten_gbps());
        {
            let swn = net.node_mut::<netsim::Switch>(sw);
            swn.install_route(1, PortId(0));
            swn.install_route(2, PortId(1));
        }
        net.node_mut::<Host<Sender>>(s)
            .stack
            .set_hook(PatternLoss { pattern, at: 0 });
        net.schedule_timer(r, Time::ZERO, app_timer_token(0));
        net.schedule_timer(s, Time::from_nanos(10), app_timer_token(0));
        net.run_until(Time::from_secs(30));

        let expected: Vec<(u64, u32)> =
            sizes.iter().enumerate().map(|(i, &s)| (i as u64, s)).collect();
        prop_assert_eq!(&net.node::<Host<Collector>>(r).app.got, &expected);
    }
}
