//! Reproduction of the prop_loss stall (diagnostic, ignored by default).

use netsim::{Ctx, LinkSpec, Network, Packet, PortId, SimRng, Time};
use transport::{
    app_timer_token, App, ConnId, HookEnv, HookVerdict, Host, PacketHook, Stack, StackConfig,
};

struct PatternLoss {
    pattern: Vec<bool>,
    at: usize,
}

impl PacketHook for PatternLoss {
    fn on_egress(&mut self, packet: &mut Packet, _env: &mut HookEnv<'_>) -> HookVerdict {
        if packet.payload_len == 0 {
            return HookVerdict::Pass;
        }
        let drop = self.pattern.get(self.at).copied().unwrap_or(false);
        self.at += 1;
        if drop {
            HookVerdict::Drop
        } else {
            HookVerdict::Pass
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Sender {
    sizes: Vec<u32>,
}
impl App for Sender {
    fn on_timer(&mut self, _t: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        stack.connect(2, 7000, ctx);
    }
    fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        for (i, &size) in self.sizes.iter().enumerate() {
            stack.send_message(conn, size, i as u64, None, ctx);
        }
    }
}

#[derive(Default)]
struct Collector {
    got: Vec<(u64, u32)>,
}
impl App for Collector {
    fn on_timer(&mut self, _t: u64, stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        stack.listen(7000);
    }
    fn on_message(&mut self, _c: ConnId, tag: u64, size: u32, _s: &mut Stack, _x: &mut Ctx<'_>) {
        self.got.push((tag, size));
    }
}

#[test]
#[ignore]
fn diag() {
    let sizes = vec![30661u32, 47449, 35041, 43801, 36501];
    let seed = 209u64;
    let mut gen = SimRng::new(seed);
    let pattern: Vec<bool> = (0..400).map(|_| gen.below(100) < 17).collect();

    let mut net = Network::new(seed);
    let s = net.add_node(Host::new(
        Stack::new(1, StackConfig::default()),
        Sender { sizes },
    ));
    let r = net.add_node(Host::new(
        Stack::new(2, StackConfig::default()),
        Collector::default(),
    ));
    let sw = net.add_node(netsim::Switch::new(netsim::SwitchConfig::default()));
    net.connect(s, sw, LinkSpec::ten_gbps());
    net.connect(r, sw, LinkSpec::ten_gbps());
    {
        let swn = net.node_mut::<netsim::Switch>(sw);
        swn.install_route(1, PortId(0));
        swn.install_route(2, PortId(1));
    }
    net.node_mut::<Host<Sender>>(s)
        .stack
        .set_hook(PatternLoss { pattern, at: 0 });
    net.schedule_timer(r, Time::ZERO, app_timer_token(0));
    net.schedule_timer(s, Time::from_nanos(10), app_timer_token(0));
    net.run_until(Time::from_secs(30));

    let host = net.node::<Host<Sender>>(s);
    let st = host.stack.conn_stats(ConnId(0));
    eprintln!(
        "sender: sent {} rexmit {} fast {} rto {} dupacks {} reorder {} inflight {} cwnd {} all_acked {}",
        st.packets_sent,
        st.retransmits,
        st.fast_retransmits,
        st.timeouts,
        st.dup_acks_received,
        st.reorder_events,
        host.stack.conn_in_flight(ConnId(0)),
        host.stack.conn_cwnd(ConnId(0)),
        host.stack.conn_all_acked(ConnId(0)),
    );
    eprintln!("got: {:?}", net.node::<Host<Collector>>(r).app.got);
    eprintln!("events: {}", net.events_processed());
}
