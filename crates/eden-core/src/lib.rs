//! # eden-core — the Eden architecture (SIGCOMM 2015)
//!
//! The paper's three components, as a library:
//!
//! * **[`Stage`]** (§3.3) — an Eden-compliant application or library. A
//!   stage classifies its own traffic: it matches application-level fields
//!   (message type, key, URL, …) against controller-installed
//!   *classification rules*, assigns each message a *class* per rule-set
//!   and a unique message identifier, and emits the metadata that rides
//!   with the resulting packets down the host stack.
//!
//! * **[`Enclave`]** (§3.4) — the programmable data plane at the bottom of
//!   the stack. Match-action tables keyed on a packet's classes select an
//!   *action function* — interpreted Eden bytecode or a hard-coded native
//!   closure (the evaluation's baseline) — which runs against the packet's
//!   header fields, its message state, and per-function global state, under
//!   the concurrency rules derived from the paper's state annotations.
//!
//! * **[`Controller`]** (§3.2) — the logically centralized coordination
//!   point. It owns the class-name registry, compiles action functions from
//!   DSL source, programs stages (Table 3's API) and enclaves, installs
//!   label-forwarding state into switches (§3.5), and hosts the
//!   control-plane halves of the case studies: WCMP path weights, PIAS
//!   priority thresholds, Pulsar tenant queue maps.
//!
//! The enclave implements [`transport::PacketHook`], so installing Eden on
//! a simulated host is one line: `stack.set_hook(enclave)`.

pub mod action;
pub mod class;
pub mod controller;
pub mod enclave;
pub mod headermap;
pub mod lanes;
pub mod ops;
pub mod ring;
pub mod stage;
pub mod state;

pub use action::{ActionImpl, FuncId, InstalledFunction, NativeEnv, NativeFn};
pub use class::{ClassId, ClassIndex, ClassRegistry};
pub use controller::{Controller, PathSpec};
pub use eden_telemetry::{StatsSnapshot, Telemetry};
pub use enclave::{
    native_function, Enclave, EnclaveConfig, EnclaveStats, FiveTupleMatch, FlowDirection,
    MatchSpec, Rule, TableId,
};
pub use headermap::{read_header_field, write_header_field};
pub use lanes::LanePool;
pub use netsim::arena::{PacketArena, PacketRef, PacketSlab};
pub use ops::{ApplyError, EnclaveOp};
pub use stage::{FieldValue, Matcher, Stage, StageInfo, StageRule};
pub use state::FunctionState;
