//! Authoritative enclave state (§3.4.4).
//!
//! "The authoritative state is maintained in the enclave … the enclave
//! creates a consistent copy of the state needed by the program" — per
//! function, the enclave owns:
//!
//! * **global scalars** — live as long as the function is installed;
//! * **global arrays** — flattened struct arrays the controller updates
//!   (`pathMatrix`, `priorityThresholds`, `queueMap`, …);
//! * **message state** — one block per (function, message id), created on
//!   first touch, bounded by FIFO eviction (messages are finite; the paper
//!   keeps state "for the duration of the message").
//!
//! Message blocks live in `shards` keyed by `msg_id % shards`, so a batch
//! of packets partitions into execution lanes that each own a disjoint
//! shard — two packets of the same message always land in the same lane,
//! which is what makes the paper's *per-message serial* concurrency level
//! safe to run with lanes in parallel (see `Enclave::process_batch`). The
//! FIFO eviction window stays global across shards: shard count is an
//! execution detail and must not change which message gets evicted.
//!
//! Copy-in/copy-out consistency: the VM works on this state through the
//! host interface during one invocation; the concurrency level (derived
//! from the annotations) dictates how many invocations may overlap.

use std::collections::{HashMap, VecDeque};

use eden_lang::{Schema, Scope};

/// One shard of a function's message state.
pub type MsgShard = HashMap<u64, Vec<i64>>;

/// Per-function authoritative state.
#[derive(Debug)]
pub struct FunctionState {
    /// Global scalar slots.
    pub global: Vec<i64>,
    /// Global arrays (flattened; element stride per the schema).
    pub arrays: Vec<Vec<i64>>,
    /// Message-scope slot count (from the schema).
    msg_slots: usize,
    /// Live message state blocks, sharded by `msg_id % shards.len()`.
    shards: Vec<MsgShard>,
    /// Insertion order for FIFO eviction, global across shards.
    msg_order: VecDeque<u64>,
    /// Maximum live message blocks before eviction.
    max_messages: usize,
    /// Message blocks evicted to stay under the cap.
    pub evictions: u64,
}

impl FunctionState {
    /// Sized from the function's schema, with one message shard.
    pub fn for_schema(schema: &Schema, max_messages: usize) -> FunctionState {
        FunctionState::for_schema_sharded(schema, max_messages, 1)
    }

    /// Sized from the function's schema, with `shards` message shards (one
    /// per enclave execution lane; at least one).
    pub fn for_schema_sharded(
        schema: &Schema,
        max_messages: usize,
        shards: usize,
    ) -> FunctionState {
        FunctionState {
            global: vec![0; schema.scope_len(Scope::Global)],
            arrays: schema.arrays().iter().map(|_| Vec::new()).collect(),
            msg_slots: schema.scope_len(Scope::Message),
            shards: (0..shards.max(1)).map(|_| MsgShard::new()).collect(),
            msg_order: VecDeque::new(),
            max_messages,
            evictions: 0,
        }
    }

    fn shard_of(&self, msg_id: u64) -> usize {
        (msg_id % self.shards.len() as u64) as usize
    }

    /// Message-scope slots per block (from the schema).
    pub fn msg_slots(&self) -> usize {
        self.msg_slots
    }

    /// Borrow (creating if absent) the state block of message `msg_id`.
    pub fn msg_block(&mut self, msg_id: u64) -> &mut Vec<i64> {
        let shard = self.shard_of(msg_id);
        if !self.shards[shard].contains_key(&msg_id) {
            if self.live_messages() >= self.max_messages {
                // FIFO eviction keeps the footprint bounded; a long-lived
                // message that outlives the window simply restarts from
                // zeroed state, which for the paper's functions (byte
                // counters) is a conservative reset.
                if let Some(old) = self.msg_order.pop_front() {
                    let old_shard = self.shard_of(old);
                    self.shards[old_shard].remove(&old);
                    self.evictions += 1;
                }
            }
            self.shards[shard].insert(msg_id, vec![0; self.msg_slots]);
            self.msg_order.push_back(msg_id);
        }
        self.shards[shard].get_mut(&msg_id).expect("inserted above")
    }

    /// Borrow the message block of `msg_id` together with the global
    /// scalars and arrays — the three disjoint pieces one invocation needs.
    pub fn split_for(&mut self, msg_id: u64) -> (&mut Vec<i64>, &mut Vec<i64>, &mut Vec<Vec<i64>>) {
        self.msg_block(msg_id); // ensure presence
        let shard = self.shard_of(msg_id);
        let msg = self.shards[shard]
            .get_mut(&msg_id)
            .expect("ensured by msg_block");
        (msg, &mut self.global, &mut self.arrays)
    }

    /// Split the message shards apart from the (now read-only) globals, so
    /// each execution lane can own one `&mut` shard while all lanes share
    /// the global scalars and arrays. Lane `l` must only touch messages
    /// with `msg_id % lanes == l` — guaranteed by the enclave's lane
    /// assignment, which uses the same modulus.
    pub fn split_shards(&mut self) -> (Vec<&mut MsgShard>, &[i64], &[Vec<i64>]) {
        let FunctionState {
            shards,
            global,
            arrays,
            ..
        } = self;
        (shards.iter_mut().collect(), global, arrays)
    }

    /// Record a message block created lane-side (directly in a shard,
    /// outside [`msg_block`](Self::msg_block)) into the FIFO order. The
    /// caller replays creations in packet-arrival order and must have
    /// verified headroom beforehand — lane-side creation never evicts.
    pub fn note_created(&mut self, msg_id: u64) {
        self.msg_order.push_back(msg_id);
    }

    /// How many more message blocks fit before FIFO eviction starts.
    pub fn headroom(&self) -> usize {
        self.max_messages.saturating_sub(self.live_messages())
    }

    /// Explicitly end a message, reclaiming its state.
    pub fn end_message(&mut self, msg_id: u64) {
        let shard = self.shard_of(msg_id);
        if self.shards[shard].remove(&msg_id).is_some() {
            self.msg_order.retain(|&m| m != msg_id);
        }
    }

    /// Live message blocks.
    pub fn live_messages(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Every live message block, sorted by message id (normalized view for
    /// state-equivalence checks: independent of shard count).
    pub fn msg_dump(&self) -> Vec<(u64, Vec<i64>)> {
        let mut all: Vec<(u64, Vec<i64>)> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&id, block)| (id, block.clone())))
            .collect();
        all.sort_by_key(|&(id, _)| id);
        all
    }

    /// Replace a global array's contents (controller update).
    pub fn set_array(&mut self, id: usize, values: Vec<i64>) {
        self.arrays[id] = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_lang::Access;

    fn schema() -> Schema {
        Schema::new()
            .msg_field("Size", Access::ReadWrite)
            .msg_field("Priority", Access::ReadOnly)
            .global_field("Counter", Access::ReadWrite)
            .global_array("Thresholds", &["Limit", "Prio"], Access::ReadOnly)
    }

    #[test]
    fn blocks_sized_from_schema() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        assert_eq!(st.global.len(), 1);
        assert_eq!(st.arrays.len(), 1);
        assert_eq!(st.msg_block(7).len(), 2);
    }

    #[test]
    fn message_state_persists_across_packets() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        st.msg_block(1)[0] = 1460;
        st.msg_block(2)[0] = 99;
        assert_eq!(st.msg_block(1)[0], 1460, "message 1 unaffected by 2");
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let mut st = FunctionState::for_schema(&schema(), 3);
        for id in 0..10 {
            st.msg_block(id)[0] = id as i64;
        }
        assert_eq!(st.live_messages(), 3);
        assert_eq!(st.evictions, 7);
        // oldest evicted; re-touching restarts from zero
        assert_eq!(st.msg_block(0)[0], 0);
    }

    #[test]
    fn fifo_eviction_is_shard_count_independent() {
        // the eviction window is global: the same touch sequence evicts the
        // same messages no matter how the blocks are sharded
        let mut one = FunctionState::for_schema_sharded(&schema(), 3, 1);
        let mut four = FunctionState::for_schema_sharded(&schema(), 3, 4);
        for id in [9, 4, 11, 2, 9, 5, 4, 7] {
            one.msg_block(id)[0] += 1;
            four.msg_block(id)[0] += 1;
        }
        assert_eq!(one.evictions, four.evictions);
        assert_eq!(one.msg_dump(), four.msg_dump());
    }

    #[test]
    fn explicit_message_end() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        st.msg_block(5)[0] = 42;
        st.end_message(5);
        assert_eq!(st.live_messages(), 0);
        assert_eq!(st.msg_block(5)[0], 0);
    }

    #[test]
    fn split_shards_partitions_by_modulus() {
        let mut st = FunctionState::for_schema_sharded(&schema(), 100, 4);
        for id in 0..8 {
            st.msg_block(id)[0] = id as i64;
        }
        let (shards, global, arrays) = st.split_shards();
        assert_eq!(shards.len(), 4);
        assert_eq!(global.len(), 1);
        assert_eq!(arrays.len(), 1);
        for (lane, shard) in shards.iter().enumerate() {
            assert_eq!(shard.len(), 2);
            assert!(shard.keys().all(|&id| id % 4 == lane as u64));
        }
    }
}
