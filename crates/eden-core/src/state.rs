//! Authoritative enclave state (§3.4.4).
//!
//! "The authoritative state is maintained in the enclave … the enclave
//! creates a consistent copy of the state needed by the program" — per
//! function, the enclave owns:
//!
//! * **global scalars** — live as long as the function is installed;
//! * **global arrays** — flattened struct arrays the controller updates
//!   (`pathMatrix`, `priorityThresholds`, `queueMap`, …);
//! * **message state** — one block per (function, message id), created on
//!   first touch, bounded by FIFO eviction (messages are finite; the paper
//!   keeps state "for the duration of the message").
//!
//! Copy-in/copy-out consistency: the VM works on this state through the
//! host interface during one invocation; the concurrency level (derived
//! from the annotations) dictates how many invocations may overlap. The
//! simulator is single-threaded per host, so the discipline is recorded and
//! *asserted* (see `Enclave::begin_invocation`) rather than lock-enforced;
//! the `fig12` bench exercises the same state under real threads via
//! `parking_lot` locks in the multithreaded microbench.

use std::collections::{HashMap, VecDeque};

use eden_lang::{Schema, Scope};

/// Per-function authoritative state.
#[derive(Debug)]
pub struct FunctionState {
    /// Global scalar slots.
    pub global: Vec<i64>,
    /// Global arrays (flattened; element stride per the schema).
    pub arrays: Vec<Vec<i64>>,
    /// Message-scope slot count (from the schema).
    msg_slots: usize,
    /// Live message state blocks.
    msg_state: HashMap<u64, Vec<i64>>,
    /// Insertion order for FIFO eviction.
    msg_order: VecDeque<u64>,
    /// Maximum live message blocks before eviction.
    max_messages: usize,
    /// Message blocks evicted to stay under the cap.
    pub evictions: u64,
}

impl FunctionState {
    /// Sized from the function's schema.
    pub fn for_schema(schema: &Schema, max_messages: usize) -> FunctionState {
        FunctionState {
            global: vec![0; schema.scope_len(Scope::Global)],
            arrays: schema.arrays().iter().map(|_| Vec::new()).collect(),
            msg_slots: schema.scope_len(Scope::Message),
            msg_state: HashMap::new(),
            msg_order: VecDeque::new(),
            max_messages,
            evictions: 0,
        }
    }

    /// Borrow (creating if absent) the state block of message `msg_id`.
    pub fn msg_block(&mut self, msg_id: u64) -> &mut Vec<i64> {
        if !self.msg_state.contains_key(&msg_id) {
            if self.msg_state.len() >= self.max_messages {
                // FIFO eviction keeps the footprint bounded; a long-lived
                // message that outlives the window simply restarts from
                // zeroed state, which for the paper's functions (byte
                // counters) is a conservative reset.
                if let Some(old) = self.msg_order.pop_front() {
                    self.msg_state.remove(&old);
                    self.evictions += 1;
                }
            }
            self.msg_state.insert(msg_id, vec![0; self.msg_slots]);
            self.msg_order.push_back(msg_id);
        }
        self.msg_state.get_mut(&msg_id).expect("inserted above")
    }

    /// Borrow the message block of `msg_id` together with the global
    /// scalars and arrays — the three disjoint pieces one invocation needs.
    pub fn split_for(&mut self, msg_id: u64) -> (&mut Vec<i64>, &mut Vec<i64>, &mut Vec<Vec<i64>>) {
        self.msg_block(msg_id); // ensure presence
        let msg = self
            .msg_state
            .get_mut(&msg_id)
            .expect("ensured by msg_block");
        (msg, &mut self.global, &mut self.arrays)
    }

    /// Explicitly end a message, reclaiming its state.
    pub fn end_message(&mut self, msg_id: u64) {
        if self.msg_state.remove(&msg_id).is_some() {
            self.msg_order.retain(|&m| m != msg_id);
        }
    }

    /// Live message blocks.
    pub fn live_messages(&self) -> usize {
        self.msg_state.len()
    }

    /// Replace a global array's contents (controller update).
    pub fn set_array(&mut self, id: usize, values: Vec<i64>) {
        self.arrays[id] = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_lang::Access;

    fn schema() -> Schema {
        Schema::new()
            .msg_field("Size", Access::ReadWrite)
            .msg_field("Priority", Access::ReadOnly)
            .global_field("Counter", Access::ReadWrite)
            .global_array("Thresholds", &["Limit", "Prio"], Access::ReadOnly)
    }

    #[test]
    fn blocks_sized_from_schema() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        assert_eq!(st.global.len(), 1);
        assert_eq!(st.arrays.len(), 1);
        assert_eq!(st.msg_block(7).len(), 2);
    }

    #[test]
    fn message_state_persists_across_packets() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        st.msg_block(1)[0] = 1460;
        st.msg_block(2)[0] = 99;
        assert_eq!(st.msg_block(1)[0], 1460, "message 1 unaffected by 2");
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let mut st = FunctionState::for_schema(&schema(), 3);
        for id in 0..10 {
            st.msg_block(id)[0] = id as i64;
        }
        assert_eq!(st.live_messages(), 3);
        assert_eq!(st.evictions, 7);
        // oldest evicted; re-touching restarts from zero
        assert_eq!(st.msg_block(0)[0], 0);
    }

    #[test]
    fn explicit_message_end() {
        let mut st = FunctionState::for_schema(&schema(), 100);
        st.msg_block(5)[0] = 42;
        st.end_message(5);
        assert_eq!(st.live_messages(), 0);
        assert_eq!(st.msg_block(5)[0], 0);
    }
}
