//! The logically centralized controller (§3.2).
//!
//! "A network function is conceptually a combination of a control-plane
//! function residing at the controller and a data-plane function." The
//! controller here owns everything that needs global visibility or coarse
//! timescales:
//!
//! * the class-name registry (fully qualified `stage.rule-set.class` names
//!   → data-path ids);
//! * compilation of action functions from DSL source to bytecode, shipped
//!   to enclaves;
//! * stage programming through the Table 3 API;
//! * switch label-table programming for source routing (§3.5);
//! * the control-plane halves of the case studies: WCMP path-weight
//!   computation from topology (§2.1.1), PIAS priority thresholds from the
//!   datacenter's flow-size distribution (§2.1.3), and Pulsar tenant→queue
//!   maps (§2.1.2).
//!
//! In the simulator the controller reaches stages/enclaves/switches by
//! `&mut` reference during setup or between simulation epochs; the *API
//! surface* is the paper's, the RPC plumbing is not modelled.

use eden_lang::{compile, CompileError, CompiledFunction, Schema};
use eden_telemetry::{StatsSnapshot, Telemetry};
use netsim::Switch;

use crate::action::{FuncId, InstalledFunction};
use crate::class::{ClassId, ClassRegistry};
use crate::enclave::Enclave;
use crate::ops::EnclaveOp;
use crate::stage::{Matcher, Stage, StageInfo};

/// A candidate network path for weighted load balancing: the controller
/// reduces topology to (label, bottleneck capacity) pairs per
/// source-destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSpec {
    /// Source-route label to stamp into packets (switch tables must map it).
    pub label: u16,
    /// Bottleneck capacity along the path, bits/second.
    pub bottleneck_bps: u64,
}

/// The Eden controller.
#[derive(Default)]
pub struct Controller {
    registry: ClassRegistry,
}

impl Controller {
    /// A controller with an empty registry.
    pub fn new() -> Controller {
        Controller {
            registry: ClassRegistry::new(),
        }
    }

    /// Intern (or look up) a fully qualified class name.
    pub fn class(&mut self, fq_name: &str) -> ClassId {
        self.registry.intern(fq_name)
    }

    /// Resolve a class id back to its name (debugging, dashboards).
    pub fn class_name(&self, id: ClassId) -> Option<&str> {
        self.registry.name(id)
    }

    /// Borrow the registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    // ------------------------------------------------------------------
    // stage programming (Table 3)
    // ------------------------------------------------------------------

    /// S0: discover a stage's classification surface.
    pub fn get_stage_info<'a>(&self, stage: &'a Stage) -> &'a StageInfo {
        stage.get_info()
    }

    /// S1: install `<classifier> → [class_name, {…}]` in `rule_set` of
    /// `stage`. The class name is qualified as
    /// `<stage>.<rule_set>.<class_name>` and interned. Returns the rule id.
    pub fn create_stage_rule(
        &mut self,
        stage: &mut Stage,
        rule_set: &str,
        classifier: Vec<(String, Matcher)>,
        class_name: &str,
    ) -> u64 {
        let fq = format!("{}.{}.{}", stage.get_info().name, rule_set, class_name);
        let class = self.registry.intern(&fq);
        stage.create_rule(rule_set, classifier, class)
    }

    /// S2: remove a rule. Returns `false` — with a warning on stderr —
    /// when `rule_set`/`rule_id` names nothing; callers should check it
    /// (a missed removal usually means the rule id was captured from the
    /// wrong rule set).
    #[must_use = "a false return means the rule was not found"]
    pub fn remove_stage_rule(&self, stage: &mut Stage, rule_set: &str, rule_id: u64) -> bool {
        let removed = stage.remove_rule(rule_set, rule_id);
        if !removed {
            eprintln!(
                "warning: remove_stage_rule: no rule {rule_id} in rule set '{rule_set}' of stage '{}'",
                stage.get_info().name
            );
        }
        removed
    }

    // ------------------------------------------------------------------
    // enclave programming (§3.4.5)
    // ------------------------------------------------------------------

    /// Compile DSL `source` against `schema` (controller-side; only
    /// bytecode ships to the data plane).
    pub fn compile_function(
        &self,
        name: &str,
        source: &str,
        schema: &Schema,
    ) -> Result<CompiledFunction, CompileError> {
        compile(name, source, schema)
    }

    /// Compile and install an interpreted action function into `enclave`.
    pub fn install_program(
        &self,
        enclave: &mut Enclave,
        name: &str,
        source: &str,
        schema: &Schema,
    ) -> Result<FuncId, CompileError> {
        let compiled = self.compile_function(name, source, schema)?;
        Ok(enclave.install_function(InstalledFunction::interpreted(name, compiled)))
    }

    /// Compile `source` and serialize the bytecode for shipping to a remote
    /// enclave (the paper's dynamic injection path, §3.4.3). The enclave
    /// side decodes with [`eden_vm::decode_program`], which re-verifies.
    pub fn ship_function(
        &self,
        name: &str,
        source: &str,
        schema: &Schema,
    ) -> Result<Vec<u8>, CompileError> {
        let compiled = self.compile_function(name, source, schema)?;
        Ok(eden_vm::encode_program(&compiled.program))
    }

    /// Compile `source` into a protocol op ready to ship inside an epoch:
    /// the [`EnclaveOp::InstallFunction`] carrying verified bytecode plus
    /// the schema and derived concurrency the enclave needs to host it.
    /// This is how the distributed control plane (`eden-ctrl`) installs
    /// programs — [`install_program`](Self::install_program) is the
    /// same-process shortcut.
    pub fn plan_function(
        &self,
        name: &str,
        source: &str,
        schema: &Schema,
    ) -> Result<EnclaveOp, CompileError> {
        let compiled = self.compile_function(name, source, schema)?;
        Ok(EnclaveOp::InstallFunction {
            name: name.to_string(),
            bytecode: eden_vm::encode_program(&compiled.program),
            schema: schema.clone(),
            concurrency: compiled.concurrency,
        })
    }

    // ------------------------------------------------------------------
    // network programming (§3.5)
    // ------------------------------------------------------------------

    /// Install `label → egress port` entries into a switch — the
    /// SPAIN-style label forwarding Eden asks of the network.
    pub fn install_labels(&self, switch: &mut Switch, entries: &[(u16, netsim::PortId)]) {
        for &(label, port) in entries {
            switch.install_label(label, port);
        }
    }

    // ------------------------------------------------------------------
    // statistics pull (§3.2: the controller polls enclaves for stats)
    // ------------------------------------------------------------------

    /// Pull a point-in-time [`StatsSnapshot`] from `enclave` — the
    /// controller-side half of the [`Telemetry`] API. Non-perturbing: the
    /// enclave's counters keep accumulating.
    pub fn pull_stats(&self, enclave: &Enclave) -> StatsSnapshot {
        enclave.snapshot()
    }

    /// Pull a snapshot from the enclave installed on `stack`, merged with
    /// the stack's own telemetry: per-flow TCP counters and host-level
    /// drop counters. Returns `None` when no [`Enclave`] hook is
    /// installed.
    pub fn pull_host_stats(&self, stack: &mut transport::Stack) -> Option<StatsSnapshot> {
        let flows = stack.flow_counters();
        let host = stack.host_counters();
        let enclave = stack.hook_mut::<Enclave>()?;
        let mut snap = enclave.snapshot();
        snap.flows = flows;
        snap.host = Some(host);
        Some(snap)
    }

    // ------------------------------------------------------------------
    // control-plane computations for the case studies
    // ------------------------------------------------------------------

    /// WCMP (§2.1.1): per-path weights proportional to bottleneck capacity,
    /// reduced to the smallest integer ratio (capped at `max_weight` as in
    /// the WCMP paper's table-size reduction). Returns `(label, weight)`
    /// rows for the data-plane `pathMatrix` array.
    pub fn wcmp_weights(paths: &[PathSpec], max_weight: u32) -> Vec<(u16, u32)> {
        assert!(!paths.is_empty());
        let min = paths
            .iter()
            .map(|p| p.bottleneck_bps)
            .min()
            .expect("non-empty");
        assert!(min > 0, "zero-capacity path");
        paths
            .iter()
            .map(|p| {
                let w = (p.bottleneck_bps / min).max(1);
                (p.label, (w as u32).min(max_weight))
            })
            .collect()
    }

    /// ECMP is WCMP with equal weights.
    pub fn ecmp_weights(paths: &[PathSpec]) -> Vec<(u16, u32)> {
        paths.iter().map(|p| (p.label, 1)).collect()
    }

    /// PIAS (§2.1.3): demotion thresholds from a sample of the flow-size
    /// distribution. With `k` priority levels, thresholds sit at the
    /// `1/k, 2/k, …` quantiles so each level carries equal message mass;
    /// highest priority first. Returns `(size_limit, priority)` rows for
    /// the `priorityThresholds` array, ending with an unbounded row at the
    /// lowest priority.
    pub fn pias_thresholds(flow_sizes: &mut [i64], priorities: &[u8]) -> Vec<(i64, i64)> {
        assert!(!priorities.is_empty());
        flow_sizes.sort_unstable();
        let k = priorities.len();
        let mut rows = Vec::with_capacity(k);
        for (i, &prio) in priorities.iter().enumerate() {
            if i + 1 == k || flow_sizes.is_empty() {
                rows.push((i64::MAX, i64::from(prio)));
            } else {
                let idx = ((i + 1) * flow_sizes.len() / k).min(flow_sizes.len() - 1);
                rows.push((flow_sizes[idx], i64::from(prio)));
            }
        }
        rows
    }

    /// Static thresholds used by the paper's case study 1: small (<10 KB)
    /// → `priorities[0]`, intermediate (<1 MB) → `priorities[1]`,
    /// everything else → `priorities[2]`.
    pub fn fixed_thresholds(priorities: [u8; 3]) -> Vec<(i64, i64)> {
        vec![
            (10 * 1024, i64::from(priorities[0])),
            (1024 * 1024, i64::from(priorities[1])),
            (i64::MAX, i64::from(priorities[2])),
        ]
    }

    /// Pulsar (§2.1.2): a tenant → rate-limited queue map. Creates one
    /// limiter per tenant on `stack` at the given rate and returns the
    /// flattened `queueMap` array (indexed by tenant id).
    pub fn pulsar_queue_map(
        stack: &mut transport::Stack,
        tenant_rates_bps: &[u64],
        burst_bytes: u64,
    ) -> Vec<i64> {
        tenant_rates_bps
            .iter()
            .map(|&rate| stack.add_limiter(rate, burst_bytes) as i64)
            .collect()
    }

    /// Flatten `(a, b)` rows into the interleaved layout of a two-field
    /// global array (`stride == 2`).
    pub fn flatten_pairs(rows: &[(i64, i64)]) -> Vec<i64> {
        rows.iter().flat_map(|&(a, b)| [a, b]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcmp_weights_reduce_to_smallest_ratio() {
        // Figure 1: one path bottlenecked at 10G, one at 1G → 10:1
        let paths = [
            PathSpec {
                label: 1,
                bottleneck_bps: 10_000_000_000,
            },
            PathSpec {
                label: 2,
                bottleneck_bps: 1_000_000_000,
            },
        ];
        assert_eq!(Controller::wcmp_weights(&paths, 100), vec![(1, 10), (2, 1)]);
        assert_eq!(Controller::ecmp_weights(&paths), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn wcmp_weight_cap_applies() {
        let paths = [
            PathSpec {
                label: 1,
                bottleneck_bps: 100_000_000_000,
            },
            PathSpec {
                label: 2,
                bottleneck_bps: 1_000_000_000,
            },
        ];
        assert_eq!(Controller::wcmp_weights(&paths, 16), vec![(1, 16), (2, 1)]);
    }

    #[test]
    fn pias_thresholds_split_mass_equally() {
        let mut sizes: Vec<i64> = (1..=100).map(|i| i * 1000).collect();
        let rows = Controller::pias_thresholds(&mut sizes, &[7, 5, 1]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (34_000, 7), "first third of the distribution");
        assert_eq!(rows[1], (67_000, 5));
        assert_eq!(rows[2], (i64::MAX, 1), "last row unbounded");
    }

    #[test]
    fn fixed_thresholds_match_case_study_1() {
        let rows = Controller::fixed_thresholds([7, 5, 1]);
        assert_eq!(rows[0].0, 10 * 1024);
        assert_eq!(rows[1].0, 1024 * 1024);
        assert_eq!(rows[2], (i64::MAX, 1));
    }

    #[test]
    fn class_names_round_trip() {
        let mut c = Controller::new();
        let id = c.class("memcached.r1.GET");
        assert_eq!(c.class_name(id), Some("memcached.r1.GET"));
        assert_eq!(c.class("memcached.r1.GET"), id);
    }

    #[test]
    fn flatten_pairs_interleaves() {
        assert_eq!(
            Controller::flatten_pairs(&[(1, 2), (3, 4)]),
            vec![1, 2, 3, 4]
        );
    }
}
