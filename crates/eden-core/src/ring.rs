//! Lock-free bounded single-producer/single-consumer rings.
//!
//! The batched data path wants fixed-capacity queues with no locks and no
//! per-element allocation in two places: the punt mailbox (bounded, oldest
//! evicted under pressure — see `Enclave::push_punt`) and the lane pool's
//! work/result channels (one producer, one consumer, by construction).
//! Both are SPSC, so one ring type serves both.
//!
//! Soundness comes from the split-handle API: [`spsc`] returns a
//! [`Producer`]/[`Consumer`] pair and each half requires `&mut self`, so
//! at most one thread can be pushing and one popping at any instant —
//! the only discipline the memory orderings below rely on. Positions are
//! free-running counters (`head` = next pop, `tail` = next push) masked
//! into a power-of-two slot array; the producer publishes a slot with a
//! `Release` store of `tail` and the consumer acquires it before reading,
//! and symmetrically for `head` when a slot is vacated. Each half keeps a
//! cached copy of the other's counter so the uncontended fast path touches
//! only its own cache line.
//!
//! The counters wrap after `usize::MAX` operations — at one push per
//! nanosecond that is ~584 years, which the data path accepts.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared ring storage. `buf.len()` is `cap.next_power_of_two()`; only
/// `cap` slots are ever live at once, so a slot is never overwritten
/// before the consumer vacates it.
struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    cap: usize,
    /// Next position to pop (consumer-owned, producer reads).
    head: AtomicUsize,
    /// Next position to push (producer-owned, consumer reads).
    tail: AtomicUsize,
}

// The UnsafeCell slots are handed across threads, but each live slot is
// touched by exactly one side at a time (producer until the Release store
// of `tail` publishes it, consumer after the Acquire load observes it).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // both handles are gone (`Arc` strong count hit zero), so plain
        // reads of the counters are race-free
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            // SAFETY: positions in [head, tail) hold initialized values
            // nobody popped; this is the only remaining reference.
            unsafe { (*self.buf[pos & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The push half of an SPSC ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed consumer position (refreshed only when full).
    head_cache: usize,
}

/// The pop half of an SPSC ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed producer position (refreshed only when empty).
    tail_cache: usize,
}

/// A bounded SPSC ring of logical capacity `capacity` (at least 1),
/// returned as its two single-owner halves.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1);
    let slots = cap.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slots)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: slots - 1,
        cap,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Push `value`, or hand it back when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) >= self.inner.cap {
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) >= self.inner.cap {
                return Err(value);
            }
        }
        // SAFETY: the slot at `tail` is vacant (occupancy < cap) and this
        // is the only producer; the Release store below publishes it.
        unsafe { (*self.inner.buf[tail & self.inner.mask].get()).write(value) };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Current occupancy (racy by nature: the consumer may pop concurrently).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring is empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is full at this instant.
    pub fn is_full(&self) -> bool {
        self.len() >= self.inner.cap
    }

    /// Logical capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // SAFETY: head < tail, so the slot holds a value the producer
        // published with Release (acquired above or in a previous refresh);
        // the store below vacates it for reuse.
        let value = unsafe { (*self.inner.buf[head & self.inner.mask].get()).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Current occupancy (racy by nature: the producer may push concurrently).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring is empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(3);
        assert_eq!(tx.capacity(), 3);
        assert!(rx.pop().is_none(), "starts empty");
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert!(tx.push(3).is_ok());
        assert_eq!(tx.push(4), Err(4), "full ring refuses");
        assert!(tx.is_full());
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert!(tx.push(5).is_ok(), "vacated slots reusable");
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(5));
        assert!(rx.pop().is_none());
    }

    #[test]
    fn wraparound_many_times() {
        // capacity 2 rounds to 2 slots: every push after the first two
        // reuses a slot, so this loops through the buffer many times
        let (mut tx, mut rx) = spsc::<u64>(2);
        for i in 0..1000u64 {
            assert!(tx.push(i).is_ok());
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn zero_capacity_rounds_up_to_one() {
        let (mut tx, mut rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 1);
        assert!(tx.push(7).is_ok());
        assert_eq!(tx.push(8), Err(8));
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn drops_unpopped_values() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<Counted>(4);
        for _ in 0..4 {
            assert!(tx.push(Counted).is_ok());
        }
        drop(rx.pop());
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 4, "ring drops the rest");
    }

    #[test]
    fn cross_thread_drain() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let n = 10_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut next = 0u64;
            while next < n {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, next, "strict FIFO across threads");
                        next += 1;
                    }
                    None => std::hint::spin_loop(),
                }
            }
            assert!(rx.pop().is_none());
        });
    }
}
