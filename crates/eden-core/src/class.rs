//! Classes and messages as first-order network abstractions (§1, §3.3).
//!
//! A *message* is an arbitrary application data unit; a *class* is the set
//! of messages (and their packets) that one action function should treat
//! alike. Externally a class is referred to by its fully qualified name
//! `stage.rule-set.class_name` (e.g. `memcached.r1.GET`); on the data path
//! it travels as an interned 32-bit id so per-packet matching is an integer
//! comparison, never a string one.

use std::collections::HashMap;
use std::fmt;

/// Interned class identifier carried in packet metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// The controller's bidirectional name ↔ id map.
///
/// Ids are dense and allocated in intern order, which keeps enclave-side
/// structures small. Id 0 is reserved for the catch-all "unclassified".
#[derive(Debug, Default)]
pub struct ClassRegistry {
    by_name: HashMap<String, ClassId>,
    names: Vec<String>,
}

impl ClassRegistry {
    /// Registry with the reserved `unclassified` id 0.
    pub fn new() -> ClassRegistry {
        let mut r = ClassRegistry::default();
        r.intern("unclassified");
        r
    }

    /// Intern a fully qualified class name, returning its id (existing id
    /// if already interned).
    pub fn intern(&mut self, fq_name: &str) -> ClassId {
        if let Some(&id) = self.by_name.get(fq_name) {
            return id;
        }
        let id = ClassId(self.names.len() as u32);
        self.names.push(fq_name.to_string());
        self.by_name.insert(fq_name.to_string(), id);
        id
    }

    /// Intern `stage.rule_set.class` from its parts.
    pub fn intern_parts(&mut self, stage: &str, rule_set: &str, class: &str) -> ClassId {
        self.intern(&format!("{stage}.{rule_set}.{class}"))
    }

    /// Resolve a name to an id, if interned.
    pub fn lookup(&self, fq_name: &str) -> Option<ClassId> {
        self.by_name.get(fq_name).copied()
    }

    /// Resolve an id back to its name.
    pub fn name(&self, id: ClassId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned classes (including `unclassified`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the reserved class exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = ClassRegistry::new();
        let a = r.intern("memcached.r1.GET");
        let b = r.intern("memcached.r1.GET");
        assert_eq!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn id_zero_is_unclassified() {
        let r = ClassRegistry::new();
        assert_eq!(r.lookup("unclassified"), Some(ClassId(0)));
    }

    #[test]
    fn parts_compose_fully_qualified_names() {
        let mut r = ClassRegistry::new();
        let id = r.intern_parts("memcached", "r1", "PUT");
        assert_eq!(r.name(id), Some("memcached.r1.PUT"));
        assert_eq!(r.lookup("memcached.r1.PUT"), Some(id));
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let mut r = ClassRegistry::new();
        let a = r.intern("a.r.x");
        let b = r.intern("a.r.y");
        assert_ne!(a, b);
    }
}
