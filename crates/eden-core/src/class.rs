//! Classes and messages as first-order network abstractions (§1, §3.3).
//!
//! A *message* is an arbitrary application data unit; a *class* is the set
//! of messages (and their packets) that one action function should treat
//! alike. Externally a class is referred to by its fully qualified name
//! `stage.rule-set.class_name` (e.g. `memcached.r1.GET`); on the data path
//! it travels as an interned 32-bit id so per-packet matching is an integer
//! comparison, never a string one.

use std::collections::HashMap;
use std::fmt;

/// Interned class identifier carried in packet metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// The controller's bidirectional name ↔ id map.
///
/// Ids are dense and allocated in intern order, which keeps enclave-side
/// structures small. Id 0 is reserved for the catch-all "unclassified".
#[derive(Debug, Default)]
pub struct ClassRegistry {
    by_name: HashMap<String, ClassId>,
    names: Vec<String>,
}

impl ClassRegistry {
    /// Registry with the reserved `unclassified` id 0.
    pub fn new() -> ClassRegistry {
        let mut r = ClassRegistry::default();
        r.intern("unclassified");
        r
    }

    /// Intern a fully qualified class name, returning its id (existing id
    /// if already interned).
    pub fn intern(&mut self, fq_name: &str) -> ClassId {
        if let Some(&id) = self.by_name.get(fq_name) {
            return id;
        }
        let id = ClassId(self.names.len() as u32);
        self.names.push(fq_name.to_string());
        self.by_name.insert(fq_name.to_string(), id);
        id
    }

    /// Intern `stage.rule_set.class` from its parts.
    pub fn intern_parts(&mut self, stage: &str, rule_set: &str, class: &str) -> ClassId {
        self.intern(&format!("{stage}.{rule_set}.{class}"))
    }

    /// Resolve a name to an id, if interned.
    pub fn lookup(&self, fq_name: &str) -> Option<ClassId> {
        self.by_name.get(fq_name).copied()
    }

    /// Resolve an id back to its name.
    pub fn name(&self, id: ClassId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned classes (including `unclassified`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the reserved class exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }
}

/// Open-addressing class-id → rule-index map for the match stage.
///
/// The match stage probes this once per class per packet, so it is the
/// hottest lookup in the enclave. `HashMap<u32, usize>` paid SipHash plus
/// a pointer-chased bucket per probe; this table is a flat power-of-two
/// slot array of packed `(class << 32) | rule` words probed linearly
/// after a Fibonacci hash — one multiply, one mask, and (at ≤ 50% load)
/// almost always one cache line.
///
/// Semantics match the rule table's needs: *insert keeps first*, because
/// rule priority is insertion order and `find` wants the lowest-index
/// rule for a class (first-match-wins).
#[derive(Debug, Clone, Default)]
pub struct ClassIndex {
    /// Packed `(key << 32) | value`; `u64::MAX` marks an empty slot.
    slots: Vec<u64>,
    len: usize,
}

const EMPTY_SLOT: u64 = u64::MAX;

/// 2^32 / φ — Knuth's multiplicative hash constant.
const FIB: u32 = 0x9E37_79B9;

impl ClassIndex {
    /// An empty index.
    pub fn new() -> ClassIndex {
        ClassIndex::default()
    }

    /// Number of distinct classes indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no classes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry, keeping capacity.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }

    /// Insert `class → rule` unless the class is already mapped (first
    /// insertion wins, mirroring rule priority order).
    pub fn insert_first(&mut self, class: u32, rule: u32) {
        debug_assert!(rule != u32::MAX, "rule index u32::MAX is reserved");
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (class.wrapping_mul(FIB) as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                self.slots[i] = (u64::from(class) << 32) | u64::from(rule);
                self.len += 1;
                return;
            }
            if (slot >> 32) as u32 == class {
                return; // first mapping wins
            }
            i = (i + 1) & mask;
        }
    }

    /// The rule index mapped to `class`, if any.
    #[inline]
    pub fn get(&self, class: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (class.wrapping_mul(FIB) as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            if (slot >> 32) as u32 == class {
                return Some(slot as u32);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot == EMPTY_SLOT {
                continue;
            }
            let class = (slot >> 32) as u32;
            let mut i = (class.wrapping_mul(FIB) as usize) & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = ClassRegistry::new();
        let a = r.intern("memcached.r1.GET");
        let b = r.intern("memcached.r1.GET");
        assert_eq!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn id_zero_is_unclassified() {
        let r = ClassRegistry::new();
        assert_eq!(r.lookup("unclassified"), Some(ClassId(0)));
    }

    #[test]
    fn parts_compose_fully_qualified_names() {
        let mut r = ClassRegistry::new();
        let id = r.intern_parts("memcached", "r1", "PUT");
        assert_eq!(r.name(id), Some("memcached.r1.PUT"));
        assert_eq!(r.lookup("memcached.r1.PUT"), Some(id));
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let mut r = ClassRegistry::new();
        let a = r.intern("a.r.x");
        let b = r.intern("a.r.y");
        assert_ne!(a, b);
    }

    #[test]
    fn class_index_first_insertion_wins() {
        let mut idx = ClassIndex::new();
        idx.insert_first(7, 3);
        idx.insert_first(7, 1);
        assert_eq!(idx.get(7), Some(3), "earlier rule keeps the slot");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(8), None);
    }

    #[test]
    fn class_index_survives_growth() {
        let mut idx = ClassIndex::new();
        for k in 0..1000u32 {
            idx.insert_first(k * 17, k);
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000u32 {
            assert_eq!(idx.get(k * 17), Some(k));
        }
        assert_eq!(idx.get(1), None);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.get(0), None);
        idx.insert_first(5, 9);
        assert_eq!(idx.get(5), Some(9));
    }

    #[test]
    fn class_index_handles_colliding_keys() {
        // keys chosen to share low hash bits at small table sizes
        let mut idx = ClassIndex::new();
        for k in [0u32, 8, 16, 24, 32, 40, 48] {
            idx.insert_first(k, k + 100);
        }
        for k in [0u32, 8, 16, 24, 32, 40, 48] {
            assert_eq!(idx.get(k), Some(k + 100));
        }
    }
}
