//! Installed action functions: interpreted bytecode or native closures.
//!
//! The evaluation compares "Eden" (bytecode through the interpreter) with
//! "native" (the same logic hard-coded in the enclave, "similar to a
//! typical implementation through a customised layer in the OS", §5.1).
//! Both forms run behind the same [`eden_vm::Host`]-shaped state interface,
//! so state management and the concurrency model are identical — only the
//! computation engine differs, which is exactly what Figures 9, 10 and 12
//! isolate.

use eden_lang::{CompiledFunction, Concurrency, Schema, StateEffects};
use eden_vm::{Effect, Host, Outcome, VmError};

/// Identifies an installed function within an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub usize);

/// Typed accessors native functions use to touch exactly the same state the
/// interpreter would — through the enclave's [`Host`] binding, so
/// HeaderMaps, read-only enforcement, and scoping apply equally.
pub struct NativeEnv<'a> {
    host: &'a mut dyn Host,
    effects: Vec<Effect>,
}

impl<'a> NativeEnv<'a> {
    pub(crate) fn new(host: &'a mut dyn Host) -> NativeEnv<'a> {
        NativeEnv {
            host,
            effects: Vec::new(),
        }
    }

    /// Read packet field `slot`.
    pub fn pkt(&mut self, slot: u8) -> Result<i64, VmError> {
        self.host.load_pkt(slot)
    }

    /// Write packet field `slot`.
    pub fn set_pkt(&mut self, slot: u8, v: i64) -> Result<(), VmError> {
        self.host.store_pkt(slot, v)
    }

    /// Read message state field `slot`.
    pub fn msg(&mut self, slot: u8) -> Result<i64, VmError> {
        self.host.load_msg(slot)
    }

    /// Write message state field `slot`.
    pub fn set_msg(&mut self, slot: u8, v: i64) -> Result<(), VmError> {
        self.host.store_msg(slot, v)
    }

    /// Read global state field `slot`.
    pub fn global(&mut self, slot: u8) -> Result<i64, VmError> {
        self.host.load_glob(slot)
    }

    /// Write global state field `slot`.
    pub fn set_global(&mut self, slot: u8, v: i64) -> Result<(), VmError> {
        self.host.store_glob(slot, v)
    }

    /// Read global array `array` at flat slot `index`.
    pub fn arr(&mut self, array: u8, index: i64) -> Result<i64, VmError> {
        self.host.arr_load(array, index)
    }

    /// Write global array `array` at flat slot `index`.
    pub fn set_arr(&mut self, array: u8, index: i64, v: i64) -> Result<(), VmError> {
        self.host.arr_store(array, index, v)
    }

    /// Raw slot count of global array `array` (divide by the stride for
    /// the element count).
    pub fn arr_len(&mut self, array: u8) -> Result<i64, VmError> {
        self.host.arr_len(array)
    }

    /// Uniform non-negative random value.
    pub fn rand(&mut self) -> i64 {
        self.host.rand64()
    }

    /// Uniform value in `[0, n)`.
    pub fn rand_range(&mut self, n: i64) -> Result<i64, VmError> {
        if n <= 0 {
            return Err(VmError::BadRandRange(n));
        }
        Ok(self.host.rand64() % n)
    }

    /// High-frequency clock, nanoseconds.
    pub fn now_ns(&mut self) -> i64 {
        self.host.now_ns()
    }

    /// The VM's deterministic `hash (a, b)` mixer (pure — draws no host
    /// state), so native forms match bytecode hashing bit-for-bit.
    pub fn hash(&self, a: i64, b: i64) -> i64 {
        eden_vm::hash2(a, b)
    }

    /// Direct the packet to rate-limited queue `queue` charging `charge`.
    pub fn set_queue(&mut self, queue: i64, charge: i64) -> Result<(), VmError> {
        self.host.effect(Effect::SetQueue { queue, charge })?;
        self.effects.push(Effect::SetQueue { queue, charge });
        Ok(())
    }

    /// Drop the packet (the function should `return Ok(Outcome::Dropped)`
    /// right after).
    pub fn drop_packet(&mut self) -> Result<(), VmError> {
        self.host.effect(Effect::Drop)
    }

    /// Punt the packet to the controller.
    pub fn to_controller(&mut self) -> Result<(), VmError> {
        self.host.effect(Effect::ToController)
    }
}

/// A native (compiled-Rust) action function.
pub type NativeFn = Box<dyn FnMut(&mut NativeEnv<'_>) -> Result<Outcome, VmError> + 'static>;

/// The two execution forms of an action function.
pub enum ActionImpl {
    /// Controller-compiled bytecode, run by the Eden interpreter.
    Interpreted(eden_vm::Program),
    /// Hard-coded logic (the evaluation's "native" arm).
    Native(NativeFn),
}

impl std::fmt::Debug for ActionImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionImpl::Interpreted(p) => write!(f, "Interpreted({})", p.name()),
            ActionImpl::Native(_) => write!(f, "Native(<fn>)"),
        }
    }
}

/// Everything the enclave needs to run one installed function.
#[derive(Debug)]
pub struct InstalledFunction {
    pub name: String,
    pub action: ActionImpl,
    pub schema: Schema,
    pub effects: StateEffects,
    pub concurrency: Concurrency,
    /// Invocations completed without a trap.
    pub invocations: u64,
    /// Invocations terminated by a trap (the packet fails open: it is
    /// forwarded unmodified, per §3.4.3's isolation guarantee).
    pub faults: u64,
    /// Invocations that returned a drop verdict.
    pub drops: u64,
    /// Invocations that punted the packet to the controller.
    pub punts: u64,
    /// Packet-header fields this function wrote.
    pub header_modifies: u64,
    /// Bytes this function charged to queue verdicts (Pulsar accounting).
    pub enqueue_charge_bytes: u64,
}

impl InstalledFunction {
    /// Wrap a compiled DSL function.
    pub fn interpreted(name: &str, compiled: CompiledFunction) -> InstalledFunction {
        InstalledFunction {
            name: name.to_string(),
            concurrency: compiled.concurrency,
            effects: compiled.effects,
            schema: compiled.schema,
            action: ActionImpl::Interpreted(compiled.program),
            invocations: 0,
            faults: 0,
            drops: 0,
            punts: 0,
            header_modifies: 0,
            enqueue_charge_bytes: 0,
        }
    }

    /// Install bytecode received over the wire (controller shipping path).
    /// The blob is decoded and **re-verified**; `schema` and `concurrency`
    /// travel as enclave configuration, exactly like table rules do.
    pub fn from_shipped(
        name: &str,
        bytecode: &[u8],
        schema: Schema,
        concurrency: Concurrency,
    ) -> Result<InstalledFunction, eden_vm::CodecError> {
        let program = eden_vm::decode_program(bytecode)?;
        Ok(InstalledFunction {
            name: name.to_string(),
            action: ActionImpl::Interpreted(program),
            schema,
            effects: StateEffects::default(),
            concurrency,
            invocations: 0,
            faults: 0,
            drops: 0,
            punts: 0,
            header_modifies: 0,
            enqueue_charge_bytes: 0,
        })
    }

    /// Wrap a native closure. The `schema` still describes its state (for
    /// binding and slot sizing); `concurrency` mirrors what the compiler
    /// would derive, stated explicitly since Rust code cannot be analysed.
    pub fn native(
        name: &str,
        f: NativeFn,
        schema: Schema,
        concurrency: Concurrency,
    ) -> InstalledFunction {
        InstalledFunction {
            name: name.to_string(),
            action: ActionImpl::Native(f),
            schema,
            effects: StateEffects::default(),
            concurrency,
            invocations: 0,
            faults: 0,
            drops: 0,
            punts: 0,
            header_modifies: 0,
            enqueue_charge_bytes: 0,
        }
    }
}
