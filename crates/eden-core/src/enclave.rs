//! The Eden enclave: match-action tables + action-function runtime (§3.4).
//!
//! The enclave "resides along the end host network stack" and holds (1) a
//! set of tables whose rules match on a packet's *class* — not on header
//! fields, which is what lets functions operate on application-defined
//! groupings — and (2) a runtime that executes the selected action function
//! against the packet, its per-message state, and the function's global
//! state. Functions are interpreted bytecode or native closures
//! ([`ActionImpl`]); both run behind the same [`eden_vm::Host`] binding.
//!
//! Besides stage-assigned classes, the enclave can classify on its own at
//! packet granularity (Table 2's last row): five-tuple rules assign classes
//! to traffic from unmodified applications, and packets without stage
//! metadata get `hash(five-tuple)` as their message id — "when
//! classification is done at the granularity of TCP flows, each transport
//! connection is a message".
//!
//! Fault isolation (§3.4.3): a trapping function terminates — the packet
//! then fails open (forwarded unmodified) or closed (dropped) per
//! [`EnclaveConfig::fail_open`] — and the rest of the system continues.

use eden_lang::{Access, Concurrency, HeaderField, Schema, Scope};
use eden_telemetry::{
    EnclaveCounters, FunctionCounters, RuleCounters, StatsSnapshot, TableCounters, Telemetry,
    VmCounters,
};
use eden_vm::{Effect, Host, Interpreter, Limits, Outcome, VmError};
use netsim::{Packet, SimRng, Time};
use transport::{HookEnv, HookVerdict, PacketHook};

use crate::action::{ActionImpl, FuncId, InstalledFunction, NativeEnv, NativeFn};
use crate::class::ClassId;
use crate::state::FunctionState;

/// Identifies a match-action table within an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableId(pub usize);

/// What a rule matches on: the packet's class list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchSpec {
    /// Matches every packet (default/fallback rules).
    Any,
    /// Packet carries this class.
    Class(ClassId),
    /// Packet carries any of these classes.
    AnyOf(Vec<ClassId>),
}

impl MatchSpec {
    fn matches(&self, classes: &[u32]) -> bool {
        match self {
            MatchSpec::Any => true,
            MatchSpec::Class(c) => classes.contains(&c.0),
            MatchSpec::AnyOf(cs) => cs.iter().any(|c| classes.contains(&c.0)),
        }
    }
}

/// `match on class → action function` (Table 4).
#[derive(Debug, Clone)]
pub struct Rule {
    pub spec: MatchSpec,
    pub func: FuncId,
    /// Packets that matched this rule (telemetry).
    pub hits: u64,
}

#[derive(Debug, Default)]
struct MatchActionTable {
    rules: Vec<Rule>,
    /// Lookups performed against this table (telemetry).
    lookups: u64,
    /// Lookups that hit some rule.
    matched: u64,
    /// Lookups that hit no rule.
    missed: u64,
}

/// A five-tuple classifier for the enclave's own packet-granularity
/// classification (`None` = wildcard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiveTupleMatch {
    pub src_ip: Option<u32>,
    pub dst_ip: Option<u32>,
    pub src_port: Option<u16>,
    pub dst_port: Option<u16>,
    pub proto: Option<u8>,
}

impl FiveTupleMatch {
    fn matches(&self, p: &Packet) -> bool {
        let Some((si, sp, di, dp, pr)) = p.five_tuple() else {
            return false;
        };
        self.src_ip.is_none_or(|v| v == si)
            && self.dst_ip.is_none_or(|v| v == di)
            && self.src_port.is_none_or(|v| v == sp)
            && self.dst_port.is_none_or(|v| v == dp)
            && self.proto.is_none_or(|v| v == pr)
    }
}

/// Which direction of the host stack a packet is traversing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDirection {
    /// Leaving the host (the paper's primary enforcement point).
    Egress,
    /// Arriving at the host (stateful firewalls, admission control).
    Ingress,
}

/// Enclave tuning.
#[derive(Debug, Clone, Copy)]
pub struct EnclaveConfig {
    /// Interpreter resource budgets.
    pub limits: Limits,
    /// Per-function cap on live message-state blocks.
    pub max_messages_per_function: usize,
    /// On an action-function trap: `true` forwards the packet unmodified,
    /// `false` drops it.
    pub fail_open: bool,
    /// Also run the match-action pipeline on packets *arriving* at the
    /// host. Off by default: most Eden functions are egress-side, and the
    /// paper's enclave sits on the send path. Functions can distinguish
    /// directions through a packet field mapped to
    /// [`HeaderField::Direction`].
    pub process_ingress: bool,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            limits: Limits::default(),
            max_messages_per_function: 65_536,
            fail_open: true,
            process_ingress: false,
        }
    }
}

/// Data-path counters.
///
/// Conservation invariant: every processed packet leaves the enclave
/// exactly one way, so `packets == forwarded + dropped +
/// punted_to_controller` at all times (checked by
/// [`EnclaveStats::conserved`], pinned by a property test).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnclaveStats {
    pub packets: u64,
    /// Packets for which at least one rule matched.
    pub matched: u64,
    /// Packets that matched no rule in any table walked.
    pub missed: u64,
    /// Packets that left toward the NIC (pass or queue verdicts).
    pub forwarded: u64,
    pub dropped: u64,
    pub punted_to_controller: u64,
    /// Of the forwarded packets, those steered to a NIC priority queue.
    pub queued: u64,
    pub faults: u64,
    /// Packet-header fields written by action functions.
    pub header_modifies: u64,
    /// Bytes charged to queue verdicts (Pulsar-style accounting, §2.1.2).
    pub enqueue_charge_bytes: u64,
}

impl EnclaveStats {
    /// Every processed packet left the enclave exactly one way.
    pub fn conserved(&self) -> bool {
        self.packets == self.forwarded + self.dropped + self.punted_to_controller
    }
}

/// The programmable data plane at one end host.
pub struct Enclave {
    config: EnclaveConfig,
    tables: Vec<MatchActionTable>,
    functions: Vec<InstalledFunction>,
    /// Precomputed per-function packet-slot bindings: (header map, access).
    pkt_bindings: Vec<Vec<(Option<HeaderField>, Access)>>,
    states: Vec<FunctionState>,
    flow_rules: Vec<(FiveTupleMatch, ClassId)>,
    interp: Interpreter,
    /// Packets punted to the controller, awaiting pickup.
    pub punted: Vec<Packet>,
    pub stats: EnclaveStats,
    /// Scratch for unmapped packet fields (packet lifetime).
    scratch: Vec<i64>,
    /// Scratch for the packet's class list.
    classes: Vec<u32>,
    /// Simulated time of the most recent processed packet, stamped onto
    /// stats snapshots (the enclave has no clock of its own).
    last_now: Time,
}

impl Enclave {
    /// An enclave with one empty table.
    pub fn new(config: EnclaveConfig) -> Enclave {
        Enclave {
            config,
            tables: vec![MatchActionTable::default()],
            functions: Vec::new(),
            pkt_bindings: Vec::new(),
            states: Vec::new(),
            flow_rules: Vec::new(),
            interp: Interpreter::new(config.limits),
            punted: Vec::new(),
            stats: EnclaveStats::default(),
            scratch: Vec::new(),
            classes: Vec::new(),
            last_now: Time::ZERO,
        }
    }

    // ------------------------------------------------------------------
    // enclave API (§3.4.5): the controller programs tables and functions
    // ------------------------------------------------------------------

    /// Create an additional match-action table; returns its id.
    pub fn create_table(&mut self) -> TableId {
        self.tables.push(MatchActionTable::default());
        TableId(self.tables.len() - 1)
    }

    /// Install `function`; returns its id for use in rules.
    pub fn install_function(&mut self, function: InstalledFunction) -> FuncId {
        let state =
            FunctionState::for_schema(&function.schema, self.config.max_messages_per_function);
        let bindings = function
            .schema
            .fields()
            .iter()
            .filter(|f| f.scope == Scope::Packet)
            .map(|f| (f.header, f.access))
            .collect::<Vec<_>>();
        if bindings.len() > self.scratch.len() {
            self.scratch.resize(bindings.len(), 0);
        }
        self.pkt_bindings.push(bindings);
        self.functions.push(function);
        self.states.push(state);
        FuncId(self.functions.len() - 1)
    }

    /// Append `rule` to `table` (first match wins).
    pub fn install_rule(&mut self, table: TableId, spec: MatchSpec, func: FuncId) {
        assert!(func.0 < self.functions.len(), "unknown function");
        self.tables[table.0].rules.push(Rule {
            spec,
            func,
            hits: 0,
        });
    }

    /// Remove all rules from `table`.
    pub fn clear_table(&mut self, table: TableId) {
        self.tables[table.0].rules.clear();
    }

    /// Add an enclave-level five-tuple classification rule.
    pub fn add_flow_rule(&mut self, spec: FiveTupleMatch, class: ClassId) {
        self.flow_rules.push((spec, class));
    }

    /// Write one global scalar of `func` (controller state update).
    pub fn set_global(&mut self, func: FuncId, slot: usize, value: i64) {
        self.states[func.0].global[slot] = value;
    }

    /// Read one global scalar of `func`.
    pub fn global(&self, func: FuncId, slot: usize) -> i64 {
        self.states[func.0].global[slot]
    }

    /// Replace global array `array` of `func` with flattened `values`.
    pub fn set_array(&mut self, func: FuncId, array: usize, values: Vec<i64>) {
        self.states[func.0].set_array(array, values);
    }

    /// Per-function state (instrumentation).
    pub fn function_state(&self, func: FuncId) -> &FunctionState {
        &self.states[func.0]
    }

    /// Installed function metadata.
    pub fn function(&self, func: FuncId) -> &InstalledFunction {
        &self.functions[func.0]
    }

    /// Derived concurrency level of `func` (§3.4.4).
    pub fn concurrency(&self, func: FuncId) -> Concurrency {
        self.functions[func.0].concurrency
    }

    /// Drain packets punted to the controller.
    pub fn take_punted(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.punted)
    }

    /// Interpreter resource usage of the most recent interpreted run
    /// (for §5.4 footprint reporting).
    pub fn last_usage(&self) -> eden_vm::Usage {
        self.interp.usage()
    }

    // ------------------------------------------------------------------
    // data path
    // ------------------------------------------------------------------

    /// Run the match-action pipeline on one egress packet. This is the
    /// routine the microbenchmarks time; `on_egress` is a thin wrapper.
    pub fn process(&mut self, packet: &mut Packet, rng: &mut SimRng, now: Time) -> HookVerdict {
        self.process_dir(packet, rng, now, FlowDirection::Egress)
    }

    /// Run the match-action pipeline with an explicit direction.
    pub fn process_dir(
        &mut self,
        packet: &mut Packet,
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
    ) -> HookVerdict {
        self.stats.packets += 1;
        self.last_now = now;

        // class list: stage-assigned + enclave five-tuple rules
        self.classes.clear();
        if let Some(meta) = &packet.meta {
            self.classes.extend_from_slice(&meta.classes);
        }
        for (spec, class) in &self.flow_rules {
            if spec.matches(packet) {
                self.classes.push(class.0);
            }
        }

        // message identity: stage metadata, else flow-as-message
        let msg_id = match &packet.meta {
            Some(m) if m.msg_id != 0 => m.msg_id,
            _ => flow_msg_id(packet),
        };

        // packet-lifetime scratch for unmapped fields
        self.scratch.iter_mut().for_each(|v| *v = 0);

        let mut verdict_queue: Option<(i64, i64)> = None;
        let mut table = 0usize;
        let mut hops = 0;
        let mut matched_any = false;

        'walk: loop {
            hops += 1;
            if hops > 8 {
                break; // table-loop guard
            }
            let Some(tbl) = self.tables.get_mut(table) else {
                break;
            };
            tbl.lookups += 1;
            let Some(idx) = tbl.rules.iter().position(|r| r.spec.matches(&self.classes)) else {
                tbl.missed += 1;
                break;
            };
            tbl.matched += 1;
            tbl.rules[idx].hits += 1;
            let rule = tbl.rules[idx].clone();
            if !matched_any {
                matched_any = true;
                self.stats.matched += 1;
            }
            let fid = rule.func.0;

            // split borrows: function (action+schema), its state, interpreter
            let (msg, global, arrays) = self.states[fid].split_for(msg_id);
            let mut host = InvocationHost {
                packet,
                bindings: &self.pkt_bindings[fid],
                scratch: &mut self.scratch,
                msg,
                global,
                arrays,
                rng,
                now,
                direction,
                queue: None,
                header_modifies: 0,
            };
            let func = &mut self.functions[fid];
            let result = match &mut func.action {
                ActionImpl::Interpreted(program) => self.interp.run(program, &mut host),
                ActionImpl::Native(f) => {
                    let mut env = NativeEnv::new(&mut host);
                    f(&mut env)
                }
            };
            // header writes happened even if the function later trapped or
            // dropped, so merge them on every exit path
            let header_modifies = host.header_modifies;
            func.header_modifies += header_modifies;
            self.stats.header_modifies += header_modifies;
            match result {
                Ok(outcome) => {
                    func.invocations += 1;
                    if let Some((q, charge)) = host.queue {
                        verdict_queue = Some((q, charge));
                        func.enqueue_charge_bytes += charge.max(0) as u64;
                    }
                    match outcome {
                        Outcome::Done => break 'walk,
                        Outcome::Dropped => {
                            func.drops += 1;
                            self.stats.dropped += 1;
                            return HookVerdict::Drop;
                        }
                        Outcome::SentToController => {
                            func.punts += 1;
                            self.stats.punted_to_controller += 1;
                            self.punted.push(packet.clone());
                            return HookVerdict::Drop;
                        }
                        Outcome::GotoTable(t) => {
                            table = t as usize;
                            continue 'walk;
                        }
                    }
                }
                Err(_trap) => {
                    func.faults += 1;
                    self.stats.faults += 1;
                    if self.config.fail_open {
                        break 'walk;
                    }
                    self.stats.dropped += 1;
                    return HookVerdict::Drop;
                }
            }
        }

        if !matched_any {
            self.stats.missed += 1;
        }
        self.stats.forwarded += 1;
        match verdict_queue {
            Some((queue, charge)) => {
                self.stats.queued += 1;
                self.stats.enqueue_charge_bytes += charge.max(0) as u64;
                HookVerdict::Queue {
                    queue: queue.max(0) as usize,
                    charge: charge.max(0) as u64,
                }
            }
            None => HookVerdict::Pass,
        }
    }

    // ------------------------------------------------------------------
    // telemetry (stats-pull API)
    // ------------------------------------------------------------------

    /// Copy every data-path counter into a point-in-time
    /// [`StatsSnapshot`]: enclave totals, per-table and per-rule match
    /// counts, per-function invocation/fault/verdict counts, and the
    /// interpreter's accumulated cost. `flows` is empty and `host` is
    /// `None` — the controller merges those in from the host stack (see
    /// [`Controller::pull_host_stats`](crate::Controller::pull_host_stats)).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let enclave = EnclaveCounters {
            processed: self.stats.packets,
            matched: self.stats.matched,
            misses: self.stats.missed,
            forwarded: self.stats.forwarded,
            dropped: self.stats.dropped,
            punted: self.stats.punted_to_controller,
            queued: self.stats.queued,
            faults: self.stats.faults,
            header_modifies: self.stats.header_modifies,
            enqueue_charge_bytes: self.stats.enqueue_charge_bytes,
        };
        let tables = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| TableCounters {
                table: i,
                lookups: t.lookups,
                matches: t.matched,
                misses: t.missed,
            })
            .collect();
        let rules = self
            .tables
            .iter()
            .enumerate()
            .flat_map(|(ti, t)| {
                t.rules.iter().enumerate().map(move |(ri, r)| RuleCounters {
                    table: ti,
                    rule: ri,
                    func: r.func.0,
                    hits: r.hits,
                })
            })
            .collect();
        let functions = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| FunctionCounters {
                func: i,
                name: f.name.clone(),
                invocations: f.invocations,
                faults: f.faults,
                drops: f.drops,
                punts: f.punts,
                header_modifies: f.header_modifies,
                enqueue_charge_bytes: f.enqueue_charge_bytes,
            })
            .collect();
        let vmc = self.interp.counters();
        let opcode_counts = match self.interp.opcode_histogram() {
            Some(hist) => hist
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (eden_vm::Op::kind_name(i).to_string(), n))
                .collect(),
            None => Vec::new(),
        };
        StatsSnapshot {
            captured_at_ns: self.last_now.as_nanos(),
            enclave,
            tables,
            rules,
            functions,
            vm: VmCounters {
                invocations: vmc.invocations,
                traps: vmc.traps,
                steps: vmc.steps,
                elapsed_ns: vmc.elapsed_ns,
                opcode_counts,
            },
            flows: Vec::new(),
            host: None,
        }
    }

    /// Enable or disable the interpreter's per-opcode histogram (off by
    /// default; see [`eden_vm::Interpreter::set_opcode_profiling`]).
    pub fn set_opcode_profiling(&mut self, enabled: bool) {
        self.interp.set_opcode_profiling(enabled);
    }
}

impl Telemetry for Enclave {
    fn snapshot(&self) -> StatsSnapshot {
        self.stats_snapshot()
    }
}

impl PacketHook for Enclave {
    fn on_egress(&mut self, packet: &mut Packet, env: &mut HookEnv<'_>) -> HookVerdict {
        self.process_dir(packet, env.rng, env.now, FlowDirection::Egress)
    }

    fn on_ingress(&mut self, packet: &mut Packet, env: &mut HookEnv<'_>) -> HookVerdict {
        if self.config.process_ingress {
            self.process_dir(packet, env.rng, env.now, FlowDirection::Ingress)
        } else {
            HookVerdict::Pass
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Flow-as-message identity for unclassified traffic: a stable,
/// direction-canonical hash of the five-tuple, offset so it cannot collide
/// with stage message ids. Both directions of a connection map to the same
/// message id, which is what lets one function's flow state implement
/// connection tracking across egress and ingress.
fn flow_msg_id(p: &Packet) -> u64 {
    match p.five_tuple() {
        Some((si, sp, di, dp, pr)) => {
            let a = (u64::from(si) << 16) | u64::from(sp);
            let b = (u64::from(di) << 16) | u64::from(dp);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mut h: u64 = 0xcbf29ce484222325;
            for v in [lo, hi, u64::from(pr)] {
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            }
            h | (1 << 63)
        }
        None => 1 << 63,
    }
}

/// The per-invocation state view the VM (or a native function) runs
/// against. Mapped packet slots read/write real header fields through the
/// HeaderMap; unmapped slots use packet-lifetime scratch.
struct InvocationHost<'a> {
    packet: &'a mut Packet,
    bindings: &'a [(Option<HeaderField>, Access)],
    scratch: &'a mut [i64],
    msg: &'a mut [i64],
    global: &'a mut [i64],
    arrays: &'a mut [Vec<i64>],
    rng: &'a mut SimRng,
    now: Time,
    direction: FlowDirection,
    queue: Option<(i64, i64)>,
    /// Mapped header fields written during this invocation (telemetry).
    header_modifies: u64,
}

impl Host for InvocationHost<'_> {
    fn load_pkt(&mut self, slot: u8) -> Result<i64, VmError> {
        match self.bindings.get(slot as usize) {
            Some((Some(HeaderField::Direction), _)) => Ok(match self.direction {
                FlowDirection::Egress => 0,
                FlowDirection::Ingress => 1,
            }),
            Some((Some(field), _)) => Ok(crate::headermap::read_header_field(self.packet, *field)),
            Some((None, _)) => Ok(self.scratch[slot as usize]),
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
        }
    }

    fn store_pkt(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        match self.bindings.get(slot as usize) {
            Some((_, Access::ReadOnly)) => Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
            Some((Some(field), _)) => {
                crate::headermap::write_header_field(self.packet, *field, value);
                self.header_modifies += 1;
                Ok(())
            }
            Some((None, _)) => {
                self.scratch[slot as usize] = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
        }
    }

    fn load_msg(&mut self, slot: u8) -> Result<i64, VmError> {
        self.msg
            .get(slot as usize)
            .copied()
            .ok_or(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Message,
                slot,
            })
    }

    fn store_msg(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        match self.msg.get_mut(slot as usize) {
            Some(s) => {
                *s = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Message,
                slot,
            }),
        }
    }

    fn load_glob(&mut self, slot: u8) -> Result<i64, VmError> {
        self.global
            .get(slot as usize)
            .copied()
            .ok_or(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Global,
                slot,
            })
    }

    fn store_glob(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        match self.global.get_mut(slot as usize) {
            Some(s) => {
                *s = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Global,
                slot,
            }),
        }
    }

    fn arr_load(&mut self, array: u8, index: i64) -> Result<i64, VmError> {
        let arr = self
            .arrays
            .get(array as usize)
            .ok_or(VmError::BadArrayAccess { array, index })?;
        usize::try_from(index)
            .ok()
            .and_then(|i| arr.get(i))
            .copied()
            .ok_or(VmError::BadArrayAccess { array, index })
    }

    fn arr_store(&mut self, array: u8, index: i64, value: i64) -> Result<(), VmError> {
        let arr = self
            .arrays
            .get_mut(array as usize)
            .ok_or(VmError::BadArrayAccess { array, index })?;
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| arr.get_mut(i))
            .ok_or(VmError::BadArrayAccess { array, index })?;
        *slot = value;
        Ok(())
    }

    fn arr_len(&mut self, array: u8) -> Result<i64, VmError> {
        self.arrays
            .get(array as usize)
            .map(|a| a.len() as i64)
            .ok_or(VmError::BadArrayAccess { array, index: -1 })
    }

    fn rand64(&mut self) -> i64 {
        self.rng.next_i64()
    }

    fn now_ns(&mut self) -> i64 {
        self.now.as_nanos() as i64
    }

    fn effect(&mut self, effect: Effect) -> Result<(), VmError> {
        match effect {
            Effect::SetQueue { queue, charge } => {
                if queue < 0 {
                    return Err(VmError::BadQueue(queue));
                }
                self.queue = Some((queue, charge));
                Ok(())
            }
            Effect::GotoTable { table } => {
                if !(0..=u8::MAX as i64).contains(&table) {
                    return Err(VmError::BadTable(table));
                }
                Ok(())
            }
            Effect::Drop | Effect::ToController => Ok(()),
        }
    }
}

/// Convenience: build a native [`InstalledFunction`] in one call.
pub fn native_function(
    name: &str,
    schema: Schema,
    concurrency: Concurrency,
    f: NativeFn,
) -> InstalledFunction {
    InstalledFunction::native(name, f, schema, concurrency)
}
