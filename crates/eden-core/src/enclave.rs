//! The Eden enclave: match-action tables + action-function runtime (§3.4).
//!
//! The enclave "resides along the end host network stack" and holds (1) a
//! set of tables whose rules match on a packet's *class* — not on header
//! fields, which is what lets functions operate on application-defined
//! groupings — and (2) a runtime that executes the selected action function
//! against the packet, its per-message state, and the function's global
//! state. Functions are interpreted bytecode or native closures
//! ([`ActionImpl`]); both run behind the same [`eden_vm::Host`] binding.
//!
//! The data path is staged — **classify → match → execute**:
//!
//! * *classify* derives the packet's class list (stage-assigned metadata
//!   plus the enclave's own five-tuple rules), its message identity, and a
//!   per-packet random stream;
//! * *match* resolves the class list against table 0 through a class→rule
//!   index (single-class rules are a hash lookup, not a linear scan);
//! * *execute* walks the table pipeline, running the matched function —
//!   and any `GotoTable` continuations — against the packet and its state.
//!
//! [`Enclave::process_dir`] runs the stages for one packet;
//! [`Enclave::process_batch`] runs them for a batch, and — when every
//! installed function's derived concurrency level (§3.4.4) permits —
//! executes the batch on parallel worker lanes partitioned by message id:
//! *read-only* and *per-message serial* functions parallelize (a message
//! never spans two lanes), *fully serial* (global-writer) functions force
//! the bit-identical serial fallback. The batch path is verdict-for-verdict
//! and state-for-state equivalent to the per-packet path, pinned by a
//! property test.
//!
//! Besides stage-assigned classes, the enclave can classify on its own at
//! packet granularity (Table 2's last row): five-tuple rules assign classes
//! to traffic from unmodified applications, and packets without stage
//! metadata get `hash(five-tuple)` as their message id — "when
//! classification is done at the granularity of TCP flows, each transport
//! connection is a message".
//!
//! Fault isolation (§3.4.3): a trapping function terminates — the packet
//! then fails open (forwarded unmodified) or closed (dropped) per
//! [`EnclaveConfig::fail_open`] — and the rest of the system continues.

use eden_lang::{Access, Concurrency, HeaderField, ReplMode, Schema, Scope};
use eden_repl::{merged_read, merged_store, HostRepl, ReplSpec, SeqTarget};
use eden_telemetry::{
    EnclaveCounters, FlightDump, FlightEvent, FlightKind, FlightRing, FunctionCounters,
    LatencyStat, LogHistogram, RuleCounters, Sampler, Span, SpanSink, StatsSnapshot, TableCounters,
    Telemetry, TraceContext, VmCounters,
};
use eden_vm::{Effect, Host, Interpreter, InterpreterPool, Limits, Outcome, Program, VmError};
use netsim::arena::{PacketRef, PacketSlab};
use netsim::{Packet, PacketRng, SimRng, Time};
use transport::{HookEnv, HookVerdict, PacketHook};

use crate::action::{ActionImpl, FuncId, InstalledFunction, NativeEnv, NativeFn};
use crate::class::{ClassId, ClassIndex};
use crate::lanes::LanePool;
use crate::ops::{ApplyError, EnclaveOp};
use crate::ring::{spsc, Consumer, Producer};
use crate::state::{FunctionState, MsgShard};

/// Minimal FNV-1a, for the structural configuration digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identifies a match-action table within an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableId(pub usize);

/// What a rule matches on: the packet's class list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchSpec {
    /// Matches every packet (default/fallback rules).
    Any,
    /// Packet carries this class.
    Class(ClassId),
    /// Packet carries any of these classes.
    AnyOf(Vec<ClassId>),
}

impl MatchSpec {
    fn matches(&self, classes: &[u32]) -> bool {
        match self {
            MatchSpec::Any => true,
            MatchSpec::Class(c) => classes.contains(&c.0),
            MatchSpec::AnyOf(cs) => cs.iter().any(|c| classes.contains(&c.0)),
        }
    }
}

/// `match on class → action function` (Table 4).
#[derive(Debug, Clone)]
pub struct Rule {
    pub spec: MatchSpec,
    pub func: FuncId,
    /// Packets that matched this rule (telemetry).
    pub hits: u64,
    /// Configuration epoch this rule was installed under. The two-phase
    /// update protocol guarantees every rule in a served table carries the
    /// enclave's active epoch (checked by [`Enclave::serves_single_epoch`]).
    pub epoch: u64,
}

/// One match-action table, with a class→rule index so the common case —
/// single-class rules — resolves by hash lookup instead of a linear scan.
/// First-match-wins order is preserved: the index stores the *earliest*
/// rule per class, and `general` keeps the (ordered) `Any`/`AnyOf` rules
/// that still need a scan.
#[derive(Debug, Default)]
struct MatchActionTable {
    rules: Vec<Rule>,
    /// class → index of the first `MatchSpec::Class` rule for it (flat
    /// open-addressing probe, no SipHash on the per-packet path).
    class_index: ClassIndex,
    /// Ordered indices of `Any` / `AnyOf` rules.
    general: Vec<usize>,
    /// Lookups performed against this table (telemetry).
    lookups: u64,
    /// Lookups that hit some rule.
    matched: u64,
    /// Lookups that hit no rule.
    missed: u64,
}

impl MatchActionTable {
    fn push_rule(&mut self, rule: Rule) {
        let idx = self.rules.len();
        match &rule.spec {
            MatchSpec::Class(c) => {
                self.class_index.insert_first(c.0, idx as u32);
            }
            MatchSpec::Any | MatchSpec::AnyOf(_) => self.general.push(idx),
        }
        self.rules.push(rule);
    }

    fn clear(&mut self) {
        self.rules.clear();
        self.class_index.clear();
        self.general.clear();
    }

    /// Remove the rule at `idx` (later rules shift down) and rebuild the
    /// class index and general list, preserving first-match-wins order.
    fn remove_rule(&mut self, idx: usize) {
        self.rules.remove(idx);
        self.class_index.clear();
        self.general.clear();
        for (i, rule) in self.rules.iter().enumerate() {
            match &rule.spec {
                MatchSpec::Class(c) => {
                    self.class_index.insert_first(c.0, i as u32);
                }
                MatchSpec::Any | MatchSpec::AnyOf(_) => self.general.push(i),
            }
        }
    }

    /// First-match-wins rule lookup via the class index.
    fn find(&self, classes: &[u32]) -> Option<usize> {
        let mut best = usize::MAX;
        for &c in classes {
            if let Some(i) = self.class_index.get(c) {
                best = best.min(i as usize);
            }
        }
        for &gi in &self.general {
            if gi >= best {
                break; // an earlier single-class rule already won
            }
            if self.rules[gi].spec.matches(classes) {
                best = gi;
                break;
            }
        }
        (best != usize::MAX).then_some(best)
    }
}

/// A five-tuple classifier for the enclave's own packet-granularity
/// classification (`None` = wildcard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiveTupleMatch {
    pub src_ip: Option<u32>,
    pub dst_ip: Option<u32>,
    pub src_port: Option<u16>,
    pub dst_port: Option<u16>,
    pub proto: Option<u8>,
}

impl FiveTupleMatch {
    fn matches(&self, p: &Packet) -> bool {
        let Some((si, sp, di, dp, pr)) = p.five_tuple() else {
            return false;
        };
        self.src_ip.is_none_or(|v| v == si)
            && self.dst_ip.is_none_or(|v| v == di)
            && self.src_port.is_none_or(|v| v == sp)
            && self.dst_port.is_none_or(|v| v == dp)
            && self.proto.is_none_or(|v| v == pr)
    }
}

/// Which direction of the host stack a packet is traversing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDirection {
    /// Leaving the host (the paper's primary enforcement point).
    Egress,
    /// Arriving at the host (stateful firewalls, admission control).
    Ingress,
}

/// Enclave tuning.
#[derive(Debug, Clone, Copy)]
pub struct EnclaveConfig {
    /// Interpreter resource budgets.
    pub limits: Limits,
    /// Per-function cap on live message-state blocks.
    pub max_messages_per_function: usize,
    /// On an action-function trap: `true` forwards the packet unmodified,
    /// `false` drops it.
    pub fail_open: bool,
    /// Also run the match-action pipeline on packets *arriving* at the
    /// host. Off by default: most Eden functions are egress-side, and the
    /// paper's enclave sits on the send path. Functions can distinguish
    /// directions through a packet field mapped to
    /// [`HeaderField::Direction`].
    pub process_ingress: bool,
    /// Worker lanes for the batched data path (interpreters + message-state
    /// shards). `1` disables parallel execution entirely.
    pub lanes: usize,
    /// Cap on the punted-packet mailbox; the oldest punt is evicted (and
    /// counted in `punt_drops`) when a punt-heavy workload outruns the
    /// controller's pickup.
    pub max_punted: usize,
    /// Smallest batch worth fanning out to worker lanes; below it the
    /// batch runs on the serial path (thread handoff would dominate).
    pub parallel_batch_min: usize,
    /// Smallest *per-lane* share (`batch_size / lanes`) worth fanning
    /// out: a batch that would hand each lane only a couple of packets
    /// pays the wake/merge overhead without amortizing it, so it runs on
    /// the serial batch path instead. The chosen path is counted in
    /// `batches_serial` / `batches_parallel`.
    pub parallel_per_lane_min: usize,
    /// Data-path trace sampling: one in this many packets gets spans,
    /// stage timing, and per-function latency recorded. `0` disables
    /// tracing entirely — the hot-path cost is then a single always-false
    /// branch, and stats snapshots carry no latency section (keeping the
    /// serial/batch equivalence property free of wall-clock noise).
    pub trace_sample: u32,
    /// Flight-recorder ring capacity (events retained per worker lane).
    pub flight_capacity: usize,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            limits: Limits::default(),
            max_messages_per_function: 65_536,
            fail_open: true,
            process_ingress: false,
            lanes: 4,
            max_punted: 1024,
            parallel_batch_min: 32,
            parallel_per_lane_min: 8,
            trace_sample: 0,
            flight_capacity: 256,
        }
    }
}

/// Data-path counters.
///
/// Conservation invariant: every processed packet leaves the enclave
/// exactly one way, so `packets == forwarded + dropped +
/// punted_to_controller` at all times (checked by
/// [`EnclaveStats::conserved`], pinned by a property test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnclaveStats {
    pub packets: u64,
    /// Packets for which at least one rule matched.
    pub matched: u64,
    /// Packets that matched no rule in any table walked.
    pub missed: u64,
    /// Packets that left toward the NIC (pass or queue verdicts).
    pub forwarded: u64,
    pub dropped: u64,
    pub punted_to_controller: u64,
    /// Of the forwarded packets, those steered to a NIC priority queue.
    pub queued: u64,
    pub faults: u64,
    /// Packet-header fields written by action functions.
    pub header_modifies: u64,
    /// Bytes charged to queue verdicts (Pulsar-style accounting, §2.1.2).
    pub enqueue_charge_bytes: u64,
    /// Punted packets evicted from the bounded mailbox (see
    /// [`EnclaveConfig::max_punted`]).
    pub punt_drops: u64,
    /// Table walks aborted by the `GotoTable` loop guard.
    pub table_loop_aborts: u64,
}

impl EnclaveStats {
    /// Every processed packet left the enclave exactly one way.
    pub fn conserved(&self) -> bool {
        self.packets == self.forwarded + self.dropped + self.punted_to_controller
    }

    /// Fold one packet's walk outcome into the counters (everything except
    /// the `packets` count and the punt mailbox, which the caller owns).
    fn account_walk(&mut self, w: &WalkResult) {
        if w.matched_any {
            self.matched += 1;
        } else {
            self.missed += 1;
        }
        if w.fault {
            self.faults += 1;
        }
        if w.loop_abort {
            self.table_loop_aborts += 1;
        }
        self.header_modifies += w.header_modifies;
        match w.verdict {
            HookVerdict::Pass => self.forwarded += 1,
            HookVerdict::Queue { charge, .. } => {
                self.forwarded += 1;
                self.queued += 1;
                self.enqueue_charge_bytes += charge;
            }
            HookVerdict::Drop => {
                if w.punt {
                    self.punted_to_controller += 1;
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    /// Add a worker lane's partial counters (batch merge).
    fn merge(&mut self, d: &EnclaveStats) {
        self.packets += d.packets;
        self.matched += d.matched;
        self.missed += d.missed;
        self.forwarded += d.forwarded;
        self.dropped += d.dropped;
        self.punted_to_controller += d.punted_to_controller;
        self.queued += d.queued;
        self.faults += d.faults;
        self.header_modifies += d.header_modifies;
        self.enqueue_charge_bytes += d.enqueue_charge_bytes;
        self.punt_drops += d.punt_drops;
        self.table_loop_aborts += d.table_loop_aborts;
    }
}

/// The programmable data plane at one end host.
pub struct Enclave {
    config: EnclaveConfig,
    tables: Vec<MatchActionTable>,
    functions: Vec<InstalledFunction>,
    /// Precomputed per-function packet-slot bindings: (header map, access).
    pkt_bindings: Vec<Vec<(Option<HeaderField>, Access)>>,
    states: Vec<FunctionState>,
    /// Per-function replication runtime, parallel to `functions` — `None`
    /// for the common case of a schema that replicates nothing, keeping
    /// the hot path a single always-false branch. Remote views are only
    /// swapped between batches ([`apply_repl_view`](Self::apply_repl_view)),
    /// so the data path reads them with zero synchronization.
    repl: Vec<Option<HostRepl>>,
    flow_rules: Vec<(FiveTupleMatch, ClassId)>,
    /// One interpreter per worker lane; lane 0 is the serial path's.
    pool: InterpreterPool,
    /// `true` while every installed function may run on a worker lane:
    /// interpreted (native closures are not `Send`) and not `Serialized`.
    lane_safe: bool,
    /// Persistent lane worker threads (spawned lazily on the first
    /// parallel batch; per-batch dispatch is two SPSC ring ops per lane).
    lane_pool: LanePool,
    /// Punt mailbox, producer half: packets punted to the controller are
    /// *moved* here (no clone), bounded by [`EnclaveConfig::max_punted`].
    punt_tx: Producer<Packet>,
    /// Punt mailbox, consumer half: `take_punted` drains it; `push_punt`
    /// pops it for O(1) oldest-eviction when the ring is full.
    punt_rx: Consumer<Packet>,
    pub stats: EnclaveStats,
    /// Batches that ran the serial staged path (small or lane-unsafe).
    batches_serial: u64,
    /// Batches that fanned out to the worker lanes.
    batches_parallel: u64,
    /// Reused struct-of-arrays scratch for the batched stages.
    batch: BatchScratch,
    /// Scratch for unmapped packet fields (packet lifetime).
    scratch: Vec<i64>,
    /// Scratch for the packet's class list.
    classes: Vec<u32>,
    /// Simulated time of the most recent processed packet, stamped onto
    /// stats snapshots (the enclave has no clock of its own).
    last_now: Time,
    /// Configuration epoch currently served by the data path.
    active_epoch: u64,
    /// A prepared-but-uncommitted epoch (two-phase update, phase one).
    staged: Option<StagedEpoch>,
    /// Deterministic 1-in-N data-path trace sampler (see
    /// [`EnclaveConfig::trace_sample`]).
    sampler: Sampler,
    /// Completed (and open) spans awaiting collection by the agent.
    spans: SpanSink,
    /// Per-stage batch latency: classify / match / execute, recorded only
    /// while tracing is enabled.
    stage_hists: [LogHistogram; 3],
    /// Sampled per-function execution latency, parallel to `functions`.
    func_latency: Vec<LogHistogram>,
    /// Flight recorder: one single-writer event ring per worker lane
    /// (ring 0 doubles as the serial path's and the control plane's).
    flight: Vec<FlightRing>,
    /// The most recent frozen flight-recorder dump.
    last_dump: Option<FlightDump>,
}

/// Indices into [`Enclave::stage_hists`].
const STAGE_CLASSIFY: usize = 0;
const STAGE_MATCH: usize = 1;
const STAGE_EXECUTE: usize = 2;
const STAGE_NAMES: [&str; 3] = ["stage.classify", "stage.match", "stage.execute"];

/// A fully validated epoch awaiting commit: every op checked against the
/// shape the configuration will have at that point in the sequence, and
/// every shipped program already decoded and re-verified — so commit
/// itself is infallible and atomic between packets.
struct StagedEpoch {
    epoch: u64,
    ops: Vec<ReadyOp>,
}

/// [`EnclaveOp`] after stage-time validation (programs decoded).
enum ReadyOp {
    Reset,
    CreateTable,
    ClearTable(usize),
    InstallFunction(Box<InstalledFunction>),
    InstallRule {
        table: usize,
        spec: MatchSpec,
        func: usize,
    },
    RemoveRule {
        table: usize,
        rule: usize,
    },
    SetGlobal {
        func: usize,
        slot: usize,
        value: i64,
    },
    SetArray {
        func: usize,
        array: usize,
        values: Vec<i64>,
    },
}

/// Shape of an enclave configuration, tracked during stage-time
/// validation: per-table rule counts and per-function (global slots,
/// array count).
struct ConfigShape {
    rules_per_table: Vec<usize>,
    funcs: Vec<(usize, usize)>,
}

impl Enclave {
    /// An enclave with one empty table.
    pub fn new(config: EnclaveConfig) -> Enclave {
        let (punt_tx, punt_rx) = spsc(config.max_punted.max(1));
        Enclave {
            config,
            tables: vec![MatchActionTable::default()],
            functions: Vec::new(),
            pkt_bindings: Vec::new(),
            states: Vec::new(),
            repl: Vec::new(),
            flow_rules: Vec::new(),
            pool: InterpreterPool::new(config.limits, config.lanes),
            lane_safe: true,
            lane_pool: LanePool::new(),
            punt_tx,
            punt_rx,
            stats: EnclaveStats::default(),
            batches_serial: 0,
            batches_parallel: 0,
            batch: BatchScratch::default(),
            scratch: Vec::new(),
            classes: Vec::new(),
            last_now: Time::ZERO,
            active_epoch: 0,
            staged: None,
            sampler: Sampler::every(config.trace_sample),
            spans: SpanSink::new(0, 1024),
            stage_hists: Default::default(),
            func_latency: Vec::new(),
            flight: (0..config.lanes.max(1))
                .map(|_| FlightRing::new(config.flight_capacity))
                .collect(),
            last_dump: None,
        }
    }

    // ------------------------------------------------------------------
    // enclave API (§3.4.5): the controller programs tables and functions
    // ------------------------------------------------------------------

    /// Create an additional match-action table; returns its id.
    pub fn create_table(&mut self) -> TableId {
        self.tables.push(MatchActionTable::default());
        TableId(self.tables.len() - 1)
    }

    /// Install `function`; returns its id for use in rules.
    pub fn install_function(&mut self, function: InstalledFunction) -> FuncId {
        let state = FunctionState::for_schema_sharded(
            &function.schema,
            self.config.max_messages_per_function,
            self.pool.lanes(),
        );
        let bindings = function
            .schema
            .fields()
            .iter()
            .filter(|f| f.scope == Scope::Packet)
            .map(|f| (f.header, f.access))
            .collect::<Vec<_>>();
        if bindings.len() > self.scratch.len() {
            self.scratch.resize(bindings.len(), 0);
        }
        self.lane_safe &= matches!(function.action, ActionImpl::Interpreted(_))
            && function.concurrency != Concurrency::Serialized;
        let spec = ReplSpec::from_schema(&function.schema);
        self.repl.push((!spec.is_empty()).then(|| {
            let lens: Vec<usize> = state.arrays.iter().map(Vec::len).collect();
            HostRepl::new(spec, &lens)
        }));
        self.pkt_bindings.push(bindings);
        self.functions.push(function);
        self.states.push(state);
        self.func_latency.push(LogHistogram::new());
        FuncId(self.functions.len() - 1)
    }

    /// Append `rule` to `table` (first match wins).
    pub fn install_rule(&mut self, table: TableId, spec: MatchSpec, func: FuncId) {
        assert!(func.0 < self.functions.len(), "unknown function");
        let epoch = self.active_epoch;
        self.tables[table.0].push_rule(Rule {
            spec,
            func,
            hits: 0,
            epoch,
        });
    }

    /// Remove rule `rule` (by position) from `table`; later rules shift
    /// down. Returns `false` when no such rule exists.
    pub fn remove_rule(&mut self, table: TableId, rule: usize) -> bool {
        let Some(t) = self.tables.get_mut(table.0) else {
            return false;
        };
        if rule >= t.rules.len() {
            return false;
        }
        t.remove_rule(rule);
        true
    }

    /// Remove all rules from `table`.
    pub fn clear_table(&mut self, table: TableId) {
        self.tables[table.0].clear();
    }

    /// Add an enclave-level five-tuple classification rule.
    pub fn add_flow_rule(&mut self, spec: FiveTupleMatch, class: ClassId) {
        self.flow_rules.push((spec, class));
    }

    /// Write one global scalar of `func` (controller state update).
    pub fn set_global(&mut self, func: FuncId, slot: usize, value: i64) {
        self.states[func.0].global[slot] = value;
    }

    /// Read one global scalar of `func`.
    pub fn global(&self, func: FuncId, slot: usize) -> i64 {
        self.states[func.0].global[slot]
    }

    /// Replace global array `array` of `func` with flattened `values`.
    pub fn set_array(&mut self, func: FuncId, array: usize, values: Vec<i64>) {
        self.states[func.0].set_array(array, values);
    }

    /// Per-function state (instrumentation).
    pub fn function_state(&self, func: FuncId) -> &FunctionState {
        &self.states[func.0]
    }

    /// Installed function metadata.
    pub fn function(&self, func: FuncId) -> &InstalledFunction {
        &self.functions[func.0]
    }

    /// Derived concurrency level of `func` (§3.4.4).
    pub fn concurrency(&self, func: FuncId) -> Concurrency {
        self.functions[func.0].concurrency
    }

    /// Drain packets punted to the controller, oldest first.
    pub fn take_punted(&mut self) -> Vec<Packet> {
        let mut out = Vec::with_capacity(self.punt_rx.len());
        while let Some(p) = self.punt_rx.pop() {
            out.push(p);
        }
        out
    }

    /// Number of punted packets awaiting controller pickup.
    pub fn punted_len(&self) -> usize {
        self.punt_rx.len()
    }

    /// Interpreter resource usage of the most recent interpreted run on
    /// the serial path (for §5.4 footprint reporting).
    pub fn last_usage(&self) -> eden_vm::Usage {
        self.pool.lane(0).usage()
    }

    // ------------------------------------------------------------------
    // replicated cross-host state (eden-repl glue)
    // ------------------------------------------------------------------

    /// Whether any installed function declares replicated state. Gates
    /// the agent's sync sections — nothing goes on the wire otherwise.
    pub fn repl_active(&self) -> bool {
        self.repl.iter().any(Option::is_some)
    }

    /// Function indices with replicated state, ascending.
    pub fn repl_funcs(&self) -> Vec<usize> {
        self.repl
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect()
    }

    /// Replication runtime of `func` (staleness, outbox depth, applied
    /// log), `None` when the function replicates nothing.
    pub fn repl_host(&self, func: usize) -> Option<&HostRepl> {
        self.repl.get(func).and_then(Option::as_ref)
    }

    /// Build the host → controller sync for `func`: merged contributions,
    /// unacked sequenced ops, applied position, and the anti-entropy
    /// digest. Pure read — the agent may resend it on any cadence.
    pub fn repl_delta(&self, func: usize) -> Option<eden_repl::FuncDelta> {
        let h = self.repl.get(func).and_then(Option::as_ref)?;
        let st = &self.states[func];
        Some(h.build_delta(func as u32, &st.global, &st.arrays))
    }

    /// Apply a controller view between batches: swap in the remote merged
    /// contributions, drop acked outbox entries, and apply the sequenced
    /// tail into local state in controller order. A view that flags this
    /// host divergent freezes the flight recorder — the black box should
    /// capture state *before* any repair overwrites it.
    pub fn apply_repl_view(&mut self, view: &eden_repl::FuncView, now_ns: u64) {
        let func = view.func as usize;
        let Some(h) = self.repl.get_mut(func).and_then(Option::as_mut) else {
            return;
        };
        let state = &mut self.states[func];
        h.apply_view(view, now_ns, |target, value| match target {
            SeqTarget::Global { slot } => {
                if let Some(s) = state.global.get_mut(slot as usize) {
                    *s = value;
                }
            }
            SeqTarget::Array { id, index } => {
                if let Some(c) = state
                    .arrays
                    .get_mut(id as usize)
                    .and_then(|a| a.get_mut(index as usize))
                {
                    *c = value;
                }
            }
        });
        if view.divergent {
            self.freeze_flight("repl_divergence");
        }
    }

    /// Read global `slot` of `func` as the data path would — through the
    /// replica view when the slot is replicated. [`global`](Self::global)
    /// keeps returning the raw local contribution.
    pub fn global_effective(&self, func: FuncId, slot: usize) -> i64 {
        let local = self.states[func.0].global[slot];
        match self.repl.get(func.0).and_then(Option::as_ref) {
            Some(h) => match h.spec().global_mode(slot) {
                Some(mode) => merged_read(
                    mode,
                    h.remote_globals().get(slot).copied().unwrap_or(0),
                    local,
                ),
                None => local,
            },
            None => local,
        }
    }

    /// Read array element `(array, index)` of `func` as the data path
    /// would — through the replica view when the array is replicated.
    pub fn array_effective(&self, func: FuncId, array: usize, index: usize) -> i64 {
        let local = self.states[func.0].arrays[array][index];
        match self.repl.get(func.0).and_then(Option::as_ref) {
            Some(h) => match h.spec().array_mode(array) {
                Some(mode) => merged_read(
                    mode,
                    h.remote_array(array).get(index).copied().unwrap_or(0),
                    local,
                ),
                None => local,
            },
            None => local,
        }
    }

    // ------------------------------------------------------------------
    // epoch-based configuration updates (two-phase, eden-ctrl)
    // ------------------------------------------------------------------

    /// Configuration epoch the data path currently serves.
    pub fn active_epoch(&self) -> u64 {
        self.active_epoch
    }

    /// Epoch staged by [`stage_epoch`](Self::stage_epoch), if any.
    pub fn staged_epoch(&self) -> Option<u64> {
        self.staged.as_ref().map(|s| s.epoch)
    }

    /// Phase one of a two-phase update: validate `ops` as a unit and hold
    /// them ready. Nothing the data path observes changes. Every op is
    /// checked against the configuration shape it will meet at its point
    /// in the sequence, and every shipped program is decoded and
    /// re-verified — any error rejects the whole epoch and leaves prior
    /// staged state untouched only if the epoch differs; restaging the
    /// same or a newer epoch replaces the previous staging (controller
    /// retries are idempotent).
    pub fn stage_epoch(&mut self, epoch: u64, ops: &[EnclaveOp]) -> Result<(), ApplyError> {
        let ready = self.validate_ops(ops)?;
        self.staged = Some(StagedEpoch { epoch, ops: ready });
        self.flight_record(FlightKind::EpochStage, epoch, 0);
        Ok(())
    }

    /// [`stage_epoch`](Self::stage_epoch) anchored against a config
    /// digest: the delta's ops were planned as a *diff* from the
    /// configuration whose digest is `base_digest`, so they are only
    /// safe to stage if this enclave still holds exactly that
    /// configuration. On mismatch nothing changes and
    /// [`ApplyError::DigestMismatch`] is returned — the controller's cue
    /// to fall back to a full-table ship, mirroring `ReplHub`'s snapshot
    /// resync for laggards.
    pub fn stage_epoch_delta(
        &mut self,
        epoch: u64,
        base_digest: u64,
        ops: &[EnclaveOp],
    ) -> Result<(), ApplyError> {
        let have = self.config_digest();
        if have != base_digest {
            return Err(ApplyError::DigestMismatch {
                have,
                want: base_digest,
            });
        }
        self.stage_epoch(epoch, ops)
    }

    /// Phase two: atomically apply the staged epoch. Called between
    /// packets (the simulator's event loop never interleaves a commit
    /// with a batch), so the data path observes the old configuration for
    /// every packet before this call and the new one for every packet
    /// after — never a mix. Returns `false` when `epoch` is not the
    /// staged epoch (nothing happens); a duplicate commit of the already
    /// active epoch is reported as success.
    pub fn commit_epoch(&mut self, epoch: u64) -> bool {
        match self.staged.as_ref() {
            Some(s) if s.epoch == epoch => {}
            _ => return self.active_epoch == epoch && self.staged.is_none(),
        }
        let staged = self.staged.take().expect("matched above");
        self.active_epoch = epoch;
        for op in staged.ops {
            self.apply_ready(op);
        }
        // A delta epoch carries no `Reset`, so rules that survive from the
        // previous configuration still wear the old epoch stamp. The commit
        // adopts them into the new epoch wholesale — the whole table was
        // validated as one unit, so `serves_single_epoch` must keep holding.
        for t in &mut self.tables {
            for r in &mut t.rules {
                r.epoch = epoch;
            }
        }
        self.flight_record(FlightKind::EpochCommit, epoch, 0);
        true
    }

    /// Abort a prepared update: discard the staged epoch if it matches.
    /// An effective abort freezes the flight recorder — a controller
    /// backing out of phase two is exactly the moment to keep the black
    /// box.
    pub fn abort_epoch(&mut self, epoch: u64) {
        if self.staged.as_ref().is_some_and(|s| s.epoch == epoch) {
            self.staged = None;
            self.flight_record(FlightKind::EpochAbort, epoch, 0);
            self.freeze_flight("epoch_abort");
        }
    }

    /// Validate and apply one op immediately, outside any epoch (local
    /// administration; the control plane goes through
    /// [`stage_epoch`](Self::stage_epoch) / [`commit_epoch`](Self::commit_epoch)).
    pub fn apply_op(&mut self, op: EnclaveOp) -> Result<(), ApplyError> {
        let mut ready = self.validate_ops(std::slice::from_ref(&op))?;
        self.apply_ready(ready.remove(0));
        Ok(())
    }

    /// Every rule in every table was installed under the active epoch —
    /// the invariant the two-phase protocol maintains; property-tested
    /// under loss, reordering, and partitions.
    pub fn serves_single_epoch(&self) -> bool {
        self.tables
            .iter()
            .flat_map(|t| t.rules.iter())
            .all(|r| r.epoch == self.active_epoch)
    }

    /// FNV-1a digest of the *structural* configuration: tables and rules
    /// (spec + function index), installed functions (name, concurrency,
    /// schema, and bytecode for interpreted functions). Runtime state and
    /// counters are excluded, so the digest is stable across traffic. The
    /// controller compares an enclave's reported digest against a shadow
    /// enclave holding the desired configuration to detect drift.
    pub fn config_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.tables.len());
        for t in &self.tables {
            h.write_usize(t.rules.len());
            for r in &t.rules {
                match &r.spec {
                    MatchSpec::Any => h.write_u64(1),
                    MatchSpec::Class(c) => {
                        h.write_u64(2);
                        h.write_u64(u64::from(c.0));
                    }
                    MatchSpec::AnyOf(cs) => {
                        h.write_u64(3);
                        h.write_usize(cs.len());
                        for c in cs {
                            h.write_u64(u64::from(c.0));
                        }
                    }
                }
                h.write_usize(r.func.0);
            }
        }
        h.write_usize(self.functions.len());
        for f in &self.functions {
            h.write_bytes(f.name.as_bytes());
            h.write_u64(match f.concurrency {
                Concurrency::Parallel => 0,
                Concurrency::PerMessage => 1,
                Concurrency::Serialized => 2,
            });
            h.write_usize(f.schema.fields().len());
            for fd in f.schema.fields() {
                h.write_bytes(fd.name.as_bytes());
                h.write_u64(fd.slot as u64);
            }
            h.write_usize(f.schema.arrays().len());
            for a in f.schema.arrays() {
                h.write_bytes(a.name.as_bytes());
                h.write_usize(a.stride());
            }
            match &f.action {
                ActionImpl::Interpreted(p) => h.write_bytes(&eden_vm::encode_program(p)),
                ActionImpl::Native(_) => h.write_bytes(b"<native>"),
            }
        }
        h.finish()
    }

    /// Drop every table (recreating empty table 0), every function, and
    /// all function state — the anchor of a full-replacement epoch.
    fn reset_config(&mut self) {
        self.tables.clear();
        self.tables.push(MatchActionTable::default());
        self.functions.clear();
        self.pkt_bindings.clear();
        self.states.clear();
        self.repl.clear();
        self.func_latency.clear();
        self.lane_safe = true;
    }

    /// Current configuration shape, the starting point for validation.
    fn shape(&self) -> ConfigShape {
        ConfigShape {
            rules_per_table: self.tables.iter().map(|t| t.rules.len()).collect(),
            funcs: self
                .functions
                .iter()
                .map(|f| (f.schema.scope_len(Scope::Global), f.schema.arrays().len()))
                .collect(),
        }
    }

    /// Check `ops` against the evolving configuration shape and decode
    /// shipped programs; all-or-nothing.
    fn validate_ops(&self, ops: &[EnclaveOp]) -> Result<Vec<ReadyOp>, ApplyError> {
        let mut shape = self.shape();
        let mut ready = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let r =
                match op {
                    EnclaveOp::Reset => {
                        shape.rules_per_table = vec![0];
                        shape.funcs.clear();
                        ReadyOp::Reset
                    }
                    EnclaveOp::CreateTable => {
                        shape.rules_per_table.push(0);
                        ReadyOp::CreateTable
                    }
                    EnclaveOp::ClearTable { table } => {
                        let n = shape.rules_per_table.get_mut(*table).ok_or(
                            ApplyError::NoSuchTable {
                                op: i,
                                table: *table,
                            },
                        )?;
                        *n = 0;
                        ReadyOp::ClearTable(*table)
                    }
                    EnclaveOp::InstallFunction {
                        name,
                        bytecode,
                        schema,
                        concurrency,
                    } => {
                        let f = InstalledFunction::from_shipped(
                            name,
                            bytecode,
                            schema.clone(),
                            *concurrency,
                        )
                        .map_err(|e| ApplyError::BadBytecode {
                            op: i,
                            reason: format!("{e:?}"),
                        })?;
                        shape
                            .funcs
                            .push((schema.scope_len(Scope::Global), schema.arrays().len()));
                        ReadyOp::InstallFunction(Box::new(f))
                    }
                    EnclaveOp::InstallRule { table, spec, func } => {
                        let n = shape.rules_per_table.get_mut(*table).ok_or(
                            ApplyError::NoSuchTable {
                                op: i,
                                table: *table,
                            },
                        )?;
                        if *func >= shape.funcs.len() {
                            return Err(ApplyError::NoSuchFunction { op: i, func: *func });
                        }
                        *n += 1;
                        ReadyOp::InstallRule {
                            table: *table,
                            spec: spec.clone(),
                            func: *func,
                        }
                    }
                    EnclaveOp::RemoveRule { table, rule } => {
                        let n = shape.rules_per_table.get_mut(*table).ok_or(
                            ApplyError::NoSuchTable {
                                op: i,
                                table: *table,
                            },
                        )?;
                        if *rule >= *n {
                            return Err(ApplyError::NoSuchRule { op: i, rule: *rule });
                        }
                        *n -= 1;
                        ReadyOp::RemoveRule {
                            table: *table,
                            rule: *rule,
                        }
                    }
                    EnclaveOp::SetGlobal { func, slot, value } => {
                        let &(slots, _) = shape
                            .funcs
                            .get(*func)
                            .ok_or(ApplyError::NoSuchFunction { op: i, func: *func })?;
                        if *slot >= slots {
                            return Err(ApplyError::NoSuchSlot { op: i, slot: *slot });
                        }
                        ReadyOp::SetGlobal {
                            func: *func,
                            slot: *slot,
                            value: *value,
                        }
                    }
                    EnclaveOp::SetArray {
                        func,
                        array,
                        values,
                    } => {
                        let &(_, arrays) = shape
                            .funcs
                            .get(*func)
                            .ok_or(ApplyError::NoSuchFunction { op: i, func: *func })?;
                        if *array >= arrays {
                            return Err(ApplyError::NoSuchArray {
                                op: i,
                                array: *array,
                            });
                        }
                        ReadyOp::SetArray {
                            func: *func,
                            array: *array,
                            values: values.clone(),
                        }
                    }
                };
            ready.push(r);
        }
        Ok(ready)
    }

    /// Apply one validated op. Infallible by construction: validation
    /// checked every index against the shape this op meets.
    fn apply_ready(&mut self, op: ReadyOp) {
        match op {
            ReadyOp::Reset => self.reset_config(),
            ReadyOp::CreateTable => {
                self.create_table();
            }
            ReadyOp::ClearTable(t) => self.clear_table(TableId(t)),
            ReadyOp::InstallFunction(f) => {
                self.install_function(*f);
            }
            ReadyOp::InstallRule { table, spec, func } => {
                self.install_rule(TableId(table), spec, FuncId(func));
            }
            ReadyOp::RemoveRule { table, rule } => {
                let removed = self.remove_rule(TableId(table), rule);
                debug_assert!(removed, "validated rule index");
            }
            ReadyOp::SetGlobal { func, slot, value } => self.set_global(FuncId(func), slot, value),
            ReadyOp::SetArray {
                func,
                array,
                values,
            } => self.set_array(FuncId(func), array, values),
        }
    }

    // ------------------------------------------------------------------
    // data path
    // ------------------------------------------------------------------

    /// Run the match-action pipeline on one egress packet. This is the
    /// routine the microbenchmarks time; `on_egress` is a thin wrapper.
    pub fn process(&mut self, packet: &mut Packet, rng: &mut SimRng, now: Time) -> HookVerdict {
        self.process_dir(packet, rng, now, FlowDirection::Egress)
    }

    /// Run the match-action pipeline with an explicit direction.
    pub fn process_dir(
        &mut self,
        packet: &mut Packet,
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
    ) -> HookVerdict {
        self.stats.packets += 1;
        self.last_now = now;
        let sampled = self.sampler.sample();
        let stage_t = sampled.then(std::time::Instant::now);

        // --- classify: class list, message identity, per-packet RNG ----
        self.classes.clear();
        classify(packet, &self.flow_rules, &mut self.classes);
        let msg_id = message_id(packet);
        let mut prng = rng.fork_packet();

        // packet-lifetime scratch for unmapped fields
        self.scratch.iter_mut().for_each(|v| *v = 0);

        // sampled packet: open a fresh trace rooted at a "pkt" span, with
        // the classify stage already timed and recorded
        let at = now.as_nanos();
        let trace = stage_t.map(|t0| {
            let classify_ns = t0.elapsed().as_nanos() as u64;
            self.stage_hists[STAGE_CLASSIFY].record(classify_ns);
            let trace_id = self.spans.next_span_id();
            let root = self
                .spans
                .begin(TraceContext::sampled(trace_id, 0), "pkt", at);
            self.spans.record(
                TraceContext::sampled(trace_id, root),
                "classify",
                at,
                at + classify_ns,
            );
            self.flight[0].record(FlightEvent {
                at_ns: at,
                lane: 0,
                kind: FlightKind::Classify,
                a: u64::from(self.classes.first().copied().unwrap_or(0)),
                b: classify_ns,
            });
            (trace_id, root, classify_ns, std::time::Instant::now())
        });

        // --- match + execute: serial walk on lane 0 --------------------
        let mut func_samples = Vec::new();
        let walk = {
            let mut tables = DirectTables(&mut self.tables);
            let mut inv = SerialInvoker {
                functions: &mut self.functions,
                bindings: &self.pkt_bindings,
                states: &mut self.states,
                repl: &mut self.repl,
                interp: self.pool.lane_mut(0),
                timed: sampled,
                samples: &mut func_samples,
                ring: &mut self.flight[0],
                lane: 0,
            };
            walk_packet(
                &mut tables,
                &mut inv,
                &self.classes,
                msg_id,
                packet,
                &mut self.scratch,
                &mut prng,
                now,
                direction,
                self.config.fail_open,
                None,
            )
        };
        if walk.punt {
            // zero-copy punt: move the packet into the mailbox, leaving
            // the canonical consumed placeholder (the verdict is Drop, so
            // the caller releases its slot either way)
            self.push_punt(std::mem::replace(packet, Packet::consumed()));
        }
        self.stats.account_walk(&walk);
        for (fid, ns) in func_samples {
            self.func_latency[fid].record(ns);
        }
        if let Some((trace_id, root, classify_ns, t_walk)) = trace {
            let walk_ns = t_walk.elapsed().as_nanos() as u64;
            self.stage_hists[STAGE_EXECUTE].record(walk_ns);
            self.spans.record(
                TraceContext::sampled(trace_id, root),
                "execute",
                at + classify_ns,
                at + classify_ns + walk_ns,
            );
            if walk.punt {
                self.flight[0].record(FlightEvent {
                    at_ns: at,
                    lane: 0,
                    kind: FlightKind::Punt,
                    a: u64::from(self.classes.first().copied().unwrap_or(0)),
                    b: 0,
                });
            }
            self.spans.end(root, at + classify_ns + walk_ns);
        }
        if walk.loop_abort {
            self.flight[0].record(FlightEvent {
                at_ns: at,
                lane: 0,
                kind: FlightKind::TableLoop,
                a: 0,
                b: 0,
            });
        }
        if walk.fault {
            self.freeze_flight("vm_trap");
        }
        walk.verdict
    }

    /// Run the match-action pipeline on a batch of egress packets.
    ///
    /// Equivalent — verdict for verdict, header byte for header byte,
    /// state word for state word — to calling [`process`](Self::process)
    /// on each packet in order; the batch path exists so the stages can
    /// amortize per-call costs and, when every installed function is
    /// interpreted and non-`Serialized`, execute message lanes on a
    /// scoped worker pool.
    pub fn process_batch(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
    ) -> Vec<HookVerdict> {
        self.process_batch_dir(packets, rng, now, FlowDirection::Egress)
    }

    /// Batch processing with an explicit direction.
    pub fn process_batch_dir(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
    ) -> Vec<HookVerdict> {
        let mut out = Vec::with_capacity(packets.len());
        self.process_batch_dir_into(packets, rng, now, direction, &mut out);
        out
    }

    /// Allocation-free egress batch entry point: one verdict per packet
    /// is *appended* to `out` in packet order, so a caller can reuse a
    /// single verdict buffer across batches.
    pub fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
        out: &mut Vec<HookVerdict>,
    ) {
        self.process_batch_dir_into(packets, rng, now, FlowDirection::Egress, out);
    }

    /// Allocation-free batch processing with an explicit direction.
    pub fn process_batch_dir_into(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
        out: &mut Vec<HookVerdict>,
    ) {
        if packets.is_empty() {
            return;
        }
        if self.parallel_eligible(packets.len()) {
            self.batches_parallel += 1;
            self.process_batch_parallel(packets, rng, now, direction, out);
        } else {
            self.batches_serial += 1;
            self.process_batch_serial(packets, rng, now, direction, out);
        }
    }

    /// May this batch take the parallel path? All functions lane-safe
    /// (interpreted, not `Serialized`), more than one lane, batch large
    /// enough — in total and per lane — to pay for the worker handoff,
    /// and enough message-state headroom that lane-side block creation
    /// can never trigger a FIFO eviction (eviction order is only defined
    /// on the serial path).
    fn parallel_eligible(&self, n: usize) -> bool {
        self.lane_safe
            && !self.functions.is_empty()
            && self.pool.lanes() > 1
            && n >= self.config.parallel_batch_min.max(1)
            && n / self.pool.lanes() >= self.config.parallel_per_lane_min.max(1)
            && self.states.iter().all(|s| s.headroom() >= n)
    }

    /// The serial batch path, staged struct-of-arrays style: classify
    /// every packet into flat columns (class keys, ranges, message ids,
    /// RNG forks), batch-probe the class→rule index, then execute the
    /// whole batch on lane 0's interpreter through one
    /// [`InterpreterPool::run_lane_batch`] call. Equivalent to per-packet
    /// [`process_dir`](Self::process_dir) by construction: the same
    /// `walk_packet` runs in the same packet order against the same
    /// state, and RNG forks happen in batch order. With tracing enabled
    /// it *is* the per-packet path, so span and sampler behavior stay
    /// bit-identical.
    fn process_batch_serial(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
        out: &mut Vec<HookVerdict>,
    ) {
        if self.sampler.enabled() {
            // per-packet spans and sampler draws: the staged path would
            // change what gets recorded, so fall back wholesale
            for p in packets.iter_mut() {
                let v = self.process_dir(p, rng, now, direction);
                out.push(v);
            }
            return;
        }
        let n = packets.len();
        self.stats.packets += n as u64;
        self.last_now = now;
        let mut bs = std::mem::take(&mut self.batch);
        bs.clear_columns();

        // --- classify: SoA columns, batch order (RNG fork order must
        // match the per-packet path) ------------------------------------
        for p in packets.iter() {
            let start = bs.key_col.len() as u32;
            classify(p, &self.flow_rules, &mut bs.key_col);
            bs.ranges.push((start, bs.key_col.len() as u32 - start));
            bs.msg_ids.push(message_id(p));
            bs.prngs.push(rng.fork_packet());
        }

        // --- match: batch-probe table 0 over the flat key column --------
        {
            let BatchScratch {
                key_col,
                ranges,
                firsts,
                ..
            } = &mut bs;
            let mut tables = DirectTables(&mut self.tables);
            for &(start, len) in ranges.iter() {
                let classes = &key_col[start as usize..(start + len) as usize];
                firsts.push(tables.lookup(0, classes));
            }
        }

        // --- execute: lane 0, one pool call for the whole batch ---------
        let fail_open = self.config.fail_open;
        let max_punted = self.config.max_punted;
        let mut faulted = false;
        let mut samples: Vec<(usize, u64)> = Vec::new();
        {
            let BatchScratch {
                key_col,
                ranges,
                msg_ids,
                prngs,
                firsts,
                ..
            } = &mut bs;
            self.pool.run_lane_batch(0, n, |interp, i| {
                self.scratch.iter_mut().for_each(|v| *v = 0);
                let (start, len) = ranges[i];
                let classes = &key_col[start as usize..(start + len) as usize];
                let packet = &mut packets[i];
                let walk = {
                    let mut tables = DirectTables(&mut self.tables);
                    let mut inv = SerialInvoker {
                        functions: &mut self.functions,
                        bindings: &self.pkt_bindings,
                        states: &mut self.states,
                        repl: &mut self.repl,
                        interp,
                        timed: false,
                        samples: &mut samples,
                        ring: &mut self.flight[0],
                        lane: 0,
                    };
                    walk_packet(
                        &mut tables,
                        &mut inv,
                        classes,
                        msg_ids[i],
                        packet,
                        &mut self.scratch,
                        &mut prngs[i],
                        now,
                        direction,
                        fail_open,
                        Some(firsts[i]),
                    )
                };
                if walk.punt {
                    // zero-copy punt: move the packet into the mailbox,
                    // leaving the same consumed placeholder the
                    // per-packet path leaves
                    push_punt_raw(
                        &mut self.punt_tx,
                        &mut self.punt_rx,
                        &mut self.stats,
                        max_punted,
                        std::mem::replace(packet, Packet::consumed()),
                    );
                }
                self.stats.account_walk(&walk);
                if walk.loop_abort {
                    self.flight[0].record(FlightEvent {
                        at_ns: now.as_nanos(),
                        lane: 0,
                        kind: FlightKind::TableLoop,
                        a: 0,
                        b: 0,
                    });
                }
                faulted |= walk.fault;
                out.push(walk.verdict);
            });
        }
        for (fid, ns) in samples {
            self.func_latency[fid].record(ns);
        }
        self.batch = bs;
        if faulted {
            self.freeze_flight("vm_trap");
        }
    }

    fn process_batch_parallel(
        &mut self,
        packets: &mut [Packet],
        rng: &mut SimRng,
        now: Time,
        direction: FlowDirection,
        out: &mut Vec<HookVerdict>,
    ) {
        let n = packets.len();
        let lanes = self.pool.lanes();
        self.stats.packets += n as u64;
        self.last_now = now;
        let tracing = self.sampler.enabled();
        if tracing {
            self.flight[0].record(FlightEvent {
                at_ns: now.as_nanos(),
                lane: 0,
                kind: FlightKind::BatchStart,
                a: n as u64,
                b: 0,
            });
        }
        let t_classify = tracing.then(std::time::Instant::now);
        let mut bs = std::mem::take(&mut self.batch);
        bs.clear_columns();

        // --- classify stage: SoA columns, batch order (RNG forks and
        // sampler draws must match the serial path) ----------------------
        for p in packets.iter() {
            let start = bs.key_col.len() as u32;
            classify(p, &self.flow_rules, &mut bs.key_col);
            bs.ranges.push((start, bs.key_col.len() as u32 - start));
            bs.msg_ids.push(message_id(p));
            bs.prngs.push(rng.fork_packet());
            bs.sampled.push(self.sampler.sample());
        }
        let classify_ns = t_classify.map(|t| t.elapsed().as_nanos() as u64);
        let t_match = tracing.then(std::time::Instant::now);

        // --- match stage: batch-probe table 0 over the flat key column --
        {
            let BatchScratch {
                key_col,
                ranges,
                firsts,
                ..
            } = &mut bs;
            let mut tables = DirectTables(&mut self.tables);
            for &(start, len) in ranges.iter() {
                firsts.push(tables.lookup(0, &key_col[start as usize..(start + len) as usize]));
            }
        }
        let match_ns = t_match.map(|t| t.elapsed().as_nanos() as u64);
        let t_execute = tracing.then(std::time::Instant::now);

        // --- partition into lanes by message id -------------------------
        bs.lane_idx.resize_with(lanes, Vec::new);
        for v in bs.lane_idx.iter_mut() {
            v.clear();
        }
        for (i, &m) in bs.msg_ids.iter().enumerate() {
            bs.lane_idx[(m % lanes as u64) as usize].push(i as u32);
        }

        // --- execute stage: persistent worker lanes ---------------------
        let rule_counts: Vec<usize> = self.tables.iter().map(|t| t.rules.len()).collect();
        let scratch_len = self.scratch.len();
        let nfuncs = self.functions.len();
        bs.lane_scratch.resize_with(lanes, LaneScratch::default);
        for scr in bs.lane_scratch.iter_mut() {
            scr.reset(&rule_counts, nfuncs, scratch_len);
        }
        let lane_funcs: Vec<LaneFunc<'_>> = self
            .functions
            .iter()
            .map(|f| match &f.action {
                ActionImpl::Interpreted(program) => LaneFunc {
                    program,
                    concurrency: f.concurrency,
                },
                ActionImpl::Native(_) => unreachable!("parallel path requires interpreted"),
            })
            .collect();
        let mut lane_states: Vec<Vec<LaneFnState<'_>>> = (0..lanes)
            .map(|_| Vec::with_capacity(self.functions.len()))
            .collect();
        for (state, repl) in self.states.iter_mut().zip(self.repl.iter()) {
            let msg_slots = state.msg_slots();
            let (shards, global, arrays) = state.split_shards();
            let repl = repl.as_ref().map(|h| ReplShared {
                spec: h.spec(),
                remote: h.remote_globals(),
                remote_arrays: h.remote_arrays(),
            });
            debug_assert_eq!(shards.len(), lanes, "shard count tracks lane count");
            for (lane, shard) in shards.into_iter().enumerate() {
                lane_states[lane].push(LaneFnState {
                    shard,
                    msg_slots,
                    global,
                    arrays,
                    repl,
                });
            }
        }

        let slab = PacketSlab::new(packets);
        let fail_open = self.config.fail_open;
        {
            let BatchScratch {
                key_col,
                ranges,
                msg_ids,
                prngs,
                sampled,
                firsts,
                lane_idx,
                lane_scratch,
            } = &mut bs;
            let key_col: &[u32] = key_col;
            let ranges: &[(u32, u32)] = ranges;
            let msg_ids: &[u64] = msg_ids;
            let prngs: &[PacketRng] = prngs;
            let sampled: &[bool] = sampled;
            let firsts: &[Lookup] = firsts;
            let mut tasks: Vec<LaneTask<'_, '_>> = lane_idx
                .iter()
                .zip(lane_scratch.iter_mut())
                .zip(lane_states)
                .zip(self.pool.lanes_mut().iter_mut())
                .zip(self.flight.iter_mut())
                .enumerate()
                .map(|(lane, ((((idxs, scr), states), interp), ring))| LaneTask {
                    idxs,
                    key_col,
                    ranges,
                    msg_ids,
                    prngs,
                    sampled,
                    firsts,
                    slab: &slab,
                    tables: &self.tables,
                    funcs: &lane_funcs,
                    bindings: &self.pkt_bindings,
                    states,
                    interp,
                    ring,
                    scr,
                    now,
                    direction,
                    fail_open,
                    lane: lane as u16,
                })
                .collect();
            self.lane_pool.run(&mut tasks, run_lane_task);
        }
        let execute_ns = t_execute.map(|t| t.elapsed().as_nanos() as u64);

        // --- merge stage: counters in lane order, packet-ordered queues --
        let base = out.len();
        out.resize(base + n, HookVerdict::Pass);
        let mut all_punts: Vec<(u32, Packet)> = Vec::new();
        let mut all_created: Vec<(usize, usize, u64)> = Vec::new();
        let mut faulted = false;
        for scr in bs.lane_scratch.iter_mut() {
            faulted |= scr.stats.faults > 0;
            for &(fid, ns) in &scr.func_samples {
                self.func_latency[fid].record(ns);
            }
            self.stats.merge(&scr.stats);
            for (tbl, d) in self.tables.iter_mut().zip(&scr.table_deltas) {
                tbl.lookups += d.lookups;
                tbl.matched += d.matched;
                tbl.missed += d.missed;
                for (rule, &hits) in tbl.rules.iter_mut().zip(&d.rule_hits) {
                    rule.hits += hits;
                }
            }
            for (f, d) in self.functions.iter_mut().zip(&scr.func_deltas) {
                d.apply_to(f);
            }
            for (idx, v) in scr.verdicts.drain(..) {
                out[base + idx as usize] = v;
            }
            all_punts.append(&mut scr.punts);
            all_created.append(&mut scr.created);
        }
        // replay lane-side message-block creations and punts in packet
        // arrival order, so FIFO bookkeeping and the mailbox match the
        // serial path exactly (sorts are stable; each packet lives on one
        // lane, so its entries are already internally ordered)
        all_created.sort_by_key(|&(idx, _, _)| idx);
        for (_, fid, msg_id) in all_created {
            self.states[fid].note_created(msg_id);
        }
        all_punts.sort_by_key(|&(idx, _)| idx);
        for (_, p) in all_punts {
            self.push_punt(p);
        }
        self.batch = bs;
        // batch-level stage trace: one root span with the three pipeline
        // stages as children, laid out back to back from the batch instant
        if let (Some(c), Some(m), Some(e)) = (classify_ns, match_ns, execute_ns) {
            self.stage_hists[STAGE_CLASSIFY].record(c);
            self.stage_hists[STAGE_MATCH].record(m);
            self.stage_hists[STAGE_EXECUTE].record(e);
            let at = now.as_nanos();
            let trace_id = self.spans.next_span_id();
            let root = self
                .spans
                .begin(TraceContext::sampled(trace_id, 0), "batch", at);
            let ctx = TraceContext::sampled(trace_id, root);
            self.spans.record(ctx, "classify", at, at + c);
            self.spans.record(ctx, "match", at + c, at + c + m);
            self.spans
                .record(ctx, "execute", at + c + m, at + c + m + e);
            self.spans.end(root, at + c + m + e);
        }
        if faulted {
            self.freeze_flight("vm_trap");
        }
    }

    /// Append to the bounded punt mailbox, evicting the oldest punt (and
    /// counting it) when full.
    fn push_punt(&mut self, packet: Packet) {
        push_punt_raw(
            &mut self.punt_tx,
            &mut self.punt_rx,
            &mut self.stats,
            self.config.max_punted,
            packet,
        );
    }

    // ------------------------------------------------------------------
    // telemetry (stats-pull API)
    // ------------------------------------------------------------------

    /// Copy every data-path counter into a point-in-time
    /// [`StatsSnapshot`]: enclave totals, per-table and per-rule match
    /// counts, per-function invocation/fault/verdict counts, and the
    /// interpreter pool's accumulated cost (summed over lanes). `flows` is
    /// empty and `host` is `None` — the controller merges those in from
    /// the host stack (see
    /// [`Controller::pull_host_stats`](crate::Controller::pull_host_stats)).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let enclave = self.enclave_counters();
        let tables = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| TableCounters {
                table: i,
                lookups: t.lookups,
                matches: t.matched,
                misses: t.missed,
            })
            .collect();
        let rules = self
            .tables
            .iter()
            .enumerate()
            .flat_map(|(ti, t)| {
                t.rules.iter().enumerate().map(move |(ri, r)| RuleCounters {
                    table: ti,
                    rule: ri,
                    func: r.func.0,
                    hits: r.hits,
                })
            })
            .collect();
        let functions = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| FunctionCounters {
                func: i,
                name: f.name.clone(),
                invocations: f.invocations,
                faults: f.faults,
                drops: f.drops,
                punts: f.punts,
                header_modifies: f.header_modifies,
                enqueue_charge_bytes: f.enqueue_charge_bytes,
            })
            .collect();
        let vmc = self.pool.counters();
        let opcode_counts = match self.pool.opcode_histogram() {
            Some(hist) => hist
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (eden_vm::Op::kind_name(i).to_string(), n))
                .collect(),
            None => Vec::new(),
        };
        StatsSnapshot {
            captured_at_ns: self.last_now.as_nanos(),
            enclave,
            tables,
            rules,
            functions,
            vm: VmCounters {
                invocations: vmc.invocations,
                traps: vmc.traps,
                steps: vmc.steps,
                elapsed_ns: vmc.elapsed_ns,
                opcode_counts,
            },
            flows: Vec::new(),
            host: None,
            latencies: self.latency_stats(),
        }
    }

    /// The enclave-total counters as the telemetry type.
    fn enclave_counters(&self) -> EnclaveCounters {
        EnclaveCounters {
            processed: self.stats.packets,
            matched: self.stats.matched,
            misses: self.stats.missed,
            forwarded: self.stats.forwarded,
            dropped: self.stats.dropped,
            punted: self.stats.punted_to_controller,
            queued: self.stats.queued,
            faults: self.stats.faults,
            header_modifies: self.stats.header_modifies,
            enqueue_charge_bytes: self.stats.enqueue_charge_bytes,
            punt_drops: self.stats.punt_drops,
            table_loop_aborts: self.stats.table_loop_aborts,
            batches_serial: self.batches_serial,
            batches_parallel: self.batches_parallel,
        }
    }

    /// Which batch path ran, `(serial, parallel)` — satellite telemetry
    /// for the per-lane fan-out gate.
    pub fn batch_path_counts(&self) -> (u64, u64) {
        (self.batches_serial, self.batches_parallel)
    }

    /// Named latency histograms for a snapshot: pipeline stages, sampled
    /// VM execution, and per-function cost. Empty (and the section
    /// entirely absent) unless tracing is enabled, so default snapshots —
    /// and the serial/batch equivalence they are compared by — carry no
    /// wall-clock noise.
    fn latency_stats(&self) -> Vec<LatencyStat> {
        if !self.sampler.enabled() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (name, h) in STAGE_NAMES.iter().zip(&self.stage_hists) {
            if !h.is_empty() {
                out.push(LatencyStat::new(*name, h.clone()));
            }
        }
        let vm = self.pool.latency_histogram();
        if !vm.is_empty() {
            out.push(LatencyStat::new("vm.exec", vm));
        }
        for (f, h) in self.functions.iter().zip(&self.func_latency) {
            if !h.is_empty() {
                out.push(LatencyStat::new(format!("func.{}", f.name), h.clone()));
            }
        }
        out
    }

    /// Enable or disable the interpreter pool's per-opcode histogram (off
    /// by default; see [`eden_vm::Interpreter::set_opcode_profiling`]).
    pub fn set_opcode_profiling(&mut self, enabled: bool) {
        self.pool.set_opcode_profiling(enabled);
    }

    // ------------------------------------------------------------------
    // tracing + flight recorder
    // ------------------------------------------------------------------

    /// Change the data-path trace sampling rate at runtime (0 disables;
    /// see [`EnclaveConfig::trace_sample`]).
    pub fn set_trace_sample(&mut self, every: u32) {
        self.config.trace_sample = every;
        self.sampler = Sampler::every(every);
    }

    /// Whether data-path tracing is enabled at all.
    pub fn tracing_enabled(&self) -> bool {
        self.sampler.enabled()
    }

    /// Set the host address spans (and flight dumps) are stamped with —
    /// agents learn theirs at install time.
    pub fn set_trace_host(&mut self, host: u32) {
        self.spans.set_host(host);
    }

    /// Record a completed control-plane span against this host's sink
    /// (the agent's prepare/commit handlers use this). Returns the span id.
    pub fn record_span(
        &mut self,
        ctx: TraceContext,
        name: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
    ) -> u64 {
        self.spans.record(ctx, name, start_ns, end_ns)
    }

    /// Remove and return up to `max` completed spans, oldest first (the
    /// agent ships these back to the controller).
    pub fn drain_spans(&mut self, max: usize) -> Vec<Span> {
        self.spans.drain(max)
    }

    /// Completed spans waiting for collection.
    pub fn pending_spans(&self) -> usize {
        self.spans.pending()
    }

    /// Record a control-plane flight event into ring 0, stamped with the
    /// enclave's last-seen packet time.
    pub fn flight_record(&mut self, kind: FlightKind, a: u64, b: u64) {
        self.flight[0].record(FlightEvent {
            at_ns: self.last_now.as_nanos(),
            lane: 0,
            kind,
            a,
            b,
        });
    }

    /// Freeze the per-lane event rings into a [`FlightDump`] (last
    /// events, open spans, and a counter snapshot), emit it per
    /// `EDEN_FLIGHT`, and keep it for
    /// [`last_flight_dump`](Self::last_flight_dump).
    pub fn freeze_flight(&mut self, reason: &str) {
        let dump = FlightDump::freeze(
            reason,
            self.spans.host(),
            self.last_now.as_nanos(),
            &self.flight,
            self.spans.open_spans(),
            self.enclave_counters(),
        );
        dump.emit();
        self.last_dump = Some(dump);
    }

    /// The most recent flight-recorder dump, if anything froze it.
    pub fn last_flight_dump(&self) -> Option<&FlightDump> {
        self.last_dump.as_ref()
    }

    /// Remove and return the most recent flight-recorder dump (the
    /// fuzzer attaches these to repro files).
    pub fn take_flight_dump(&mut self) -> Option<FlightDump> {
        self.last_dump.take()
    }
}

impl Telemetry for Enclave {
    fn snapshot(&self) -> StatsSnapshot {
        self.stats_snapshot()
    }
}

impl PacketHook for Enclave {
    fn on_egress(&mut self, packet: &mut Packet, env: &mut HookEnv<'_>) -> HookVerdict {
        self.process_dir(packet, env.rng, env.now, FlowDirection::Egress)
    }

    fn on_egress_batch(
        &mut self,
        packets: &mut [Packet],
        env: &mut HookEnv<'_>,
        verdicts: &mut Vec<HookVerdict>,
    ) {
        self.process_batch_dir_into(packets, env.rng, env.now, FlowDirection::Egress, verdicts);
    }

    fn on_ingress(&mut self, packet: &mut Packet, env: &mut HookEnv<'_>) -> HookVerdict {
        if self.config.process_ingress {
            self.process_dir(packet, env.rng, env.now, FlowDirection::Ingress)
        } else {
            HookVerdict::Pass
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// ----------------------------------------------------------------------
// classify stage
// ----------------------------------------------------------------------

/// Derive the class list: stage-assigned metadata plus enclave five-tuple
/// rules.
fn classify(packet: &Packet, flow_rules: &[(FiveTupleMatch, ClassId)], out: &mut Vec<u32>) {
    if let Some(meta) = &packet.meta {
        out.extend_from_slice(&meta.classes);
    }
    for (spec, class) in flow_rules {
        if spec.matches(packet) {
            out.push(class.0);
        }
    }
}

/// Message identity: stage metadata, else flow-as-message.
fn message_id(packet: &Packet) -> u64 {
    match &packet.meta {
        Some(m) if m.msg_id != 0 => m.msg_id,
        _ => flow_msg_id(packet),
    }
}

/// Flow-as-message identity for unclassified traffic: a stable,
/// direction-canonical hash of the five-tuple, offset so it cannot collide
/// with stage message ids. Both directions of a connection map to the same
/// message id, which is what lets one function's flow state implement
/// connection tracking across egress and ingress.
fn flow_msg_id(p: &Packet) -> u64 {
    match p.five_tuple() {
        Some((si, sp, di, dp, pr)) => {
            let a = (u64::from(si) << 16) | u64::from(sp);
            let b = (u64::from(di) << 16) | u64::from(dp);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mut h: u64 = 0xcbf29ce484222325;
            for v in [lo, hi, u64::from(pr)] {
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            }
            h | (1 << 63)
        }
        None => 1 << 63,
    }
}

// ----------------------------------------------------------------------
// match stage
// ----------------------------------------------------------------------

/// Outcome of one table lookup.
#[derive(Debug, Clone, Copy)]
enum Lookup {
    /// The table id does not exist (bad `GotoTable`).
    NoTable,
    /// No rule matched.
    Miss,
    /// First matching rule's action function.
    Hit(usize),
}

/// How a walk reaches the tables: the serial path counts hits in place;
/// worker lanes see the tables read-only and record deltas.
trait TableAccess {
    fn lookup(&mut self, table: usize, classes: &[u32]) -> Lookup;
}

struct DirectTables<'a>(&'a mut [MatchActionTable]);

impl TableAccess for DirectTables<'_> {
    fn lookup(&mut self, table: usize, classes: &[u32]) -> Lookup {
        let Some(tbl) = self.0.get_mut(table) else {
            return Lookup::NoTable;
        };
        tbl.lookups += 1;
        match tbl.find(classes) {
            Some(idx) => {
                tbl.matched += 1;
                tbl.rules[idx].hits += 1;
                Lookup::Hit(tbl.rules[idx].func.0)
            }
            None => {
                tbl.missed += 1;
                Lookup::Miss
            }
        }
    }
}

/// Per-table counter deltas accumulated by one worker lane.
#[derive(Debug)]
struct TableDelta {
    lookups: u64,
    matched: u64,
    missed: u64,
    rule_hits: Vec<u64>,
}

impl TableDelta {
    fn for_rules(rules: usize) -> TableDelta {
        TableDelta {
            lookups: 0,
            matched: 0,
            missed: 0,
            rule_hits: vec![0; rules],
        }
    }
}

struct SharedTables<'a, 'b> {
    tables: &'a [MatchActionTable],
    deltas: &'b mut [TableDelta],
}

impl TableAccess for SharedTables<'_, '_> {
    fn lookup(&mut self, table: usize, classes: &[u32]) -> Lookup {
        let Some(tbl) = self.tables.get(table) else {
            return Lookup::NoTable;
        };
        let d = &mut self.deltas[table];
        d.lookups += 1;
        match tbl.find(classes) {
            Some(idx) => {
                d.matched += 1;
                d.rule_hits[idx] += 1;
                Lookup::Hit(tbl.rules[idx].func.0)
            }
            None => {
                d.missed += 1;
                Lookup::Miss
            }
        }
    }
}

// ----------------------------------------------------------------------
// execute stage
// ----------------------------------------------------------------------

/// What one invocation produced.
struct InvokeOut {
    result: Result<Outcome, VmError>,
    queue: Option<(i64, i64)>,
    header_modifies: u64,
}

/// Per-function counter deltas for one invocation (or one lane's worth).
#[derive(Debug, Default, Clone)]
struct FuncDelta {
    invocations: u64,
    faults: u64,
    drops: u64,
    punts: u64,
    header_modifies: u64,
    enqueue_charge_bytes: u64,
}

impl FuncDelta {
    fn record(&mut self, out: &InvokeOut) {
        self.header_modifies += out.header_modifies;
        match &out.result {
            Ok(outcome) => {
                self.invocations += 1;
                if let Some((_, charge)) = out.queue {
                    self.enqueue_charge_bytes += charge.max(0) as u64;
                }
                match outcome {
                    Outcome::Dropped => self.drops += 1,
                    Outcome::SentToController => self.punts += 1,
                    Outcome::Done | Outcome::GotoTable(_) => {}
                }
            }
            Err(_) => self.faults += 1,
        }
    }

    fn apply_to(&self, f: &mut InstalledFunction) {
        f.invocations += self.invocations;
        f.faults += self.faults;
        f.drops += self.drops;
        f.punts += self.punts;
        f.header_modifies += self.header_modifies;
        f.enqueue_charge_bytes += self.enqueue_charge_bytes;
    }
}

/// How a walk runs one action function: the serial path owns every
/// function and its full state (and supports native closures); a worker
/// lane owns one message shard per function and its own interpreter.
trait Invoker {
    #[allow(clippy::too_many_arguments)]
    fn invoke(
        &mut self,
        fid: usize,
        msg_id: u64,
        packet: &mut Packet,
        scratch: &mut [i64],
        rng: &mut PacketRng,
        now: Time,
        direction: FlowDirection,
    ) -> InvokeOut;
}

struct SerialInvoker<'a> {
    functions: &'a mut [InstalledFunction],
    bindings: &'a [Vec<(Option<HeaderField>, Access)>],
    states: &'a mut [FunctionState],
    repl: &'a mut [Option<HostRepl>],
    interp: &'a mut Interpreter,
    /// Sampled packet: time this invocation and record an Execute event.
    timed: bool,
    /// Sampled `(function, elapsed ns)` pairs, merged into the enclave's
    /// per-function histograms after the walk.
    samples: &'a mut Vec<(usize, u64)>,
    ring: &'a mut FlightRing,
    lane: u16,
}

impl Invoker for SerialInvoker<'_> {
    fn invoke(
        &mut self,
        fid: usize,
        msg_id: u64,
        packet: &mut Packet,
        scratch: &mut [i64],
        rng: &mut PacketRng,
        now: Time,
        direction: FlowDirection,
    ) -> InvokeOut {
        let concurrency = self.functions[fid].concurrency;
        let (msg, global, arrays) = self.states[fid].split_for(msg_id);
        let repl = match self.repl[fid].as_mut() {
            Some(h) => ReplRef::Excl(h),
            None => ReplRef::Off,
        };
        let mut host = InvocationHost {
            packet,
            bindings: &self.bindings[fid],
            scratch,
            msg,
            state: GlobalView::Excl { global, arrays },
            repl,
            rng,
            now,
            direction,
            queue: None,
            header_modifies: 0,
            concurrency,
        };
        let func = &mut self.functions[fid];
        let t = self.timed.then(std::time::Instant::now);
        let result = match &mut func.action {
            ActionImpl::Interpreted(program) => self.interp.run(program, &mut host),
            ActionImpl::Native(f) => {
                let mut env = NativeEnv::new(&mut host);
                f(&mut env)
            }
        };
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            self.samples.push((fid, ns));
            self.ring.record(FlightEvent {
                at_ns: now.as_nanos(),
                lane: self.lane,
                kind: FlightKind::Execute,
                a: fid as u64,
                b: ns,
            });
        }
        if result.is_err() {
            // native faults have no trap site; use the kind-count sentinel
            let (a, b) = match &func.action {
                ActionImpl::Interpreted(_) => self
                    .interp
                    .last_trap()
                    .map(|s| (s.op_kind as u64, u64::from(s.pc)))
                    .unwrap_or((eden_vm::Op::KIND_COUNT as u64, 0)),
                ActionImpl::Native(_) => (eden_vm::Op::KIND_COUNT as u64, 0),
            };
            self.ring.record(FlightEvent {
                at_ns: now.as_nanos(),
                lane: self.lane,
                kind: FlightKind::VmTrap,
                a,
                b,
            });
        }
        let out = InvokeOut {
            result,
            queue: host.queue,
            header_modifies: host.header_modifies,
        };
        let mut d = FuncDelta::default();
        d.record(&out);
        d.apply_to(func);
        out
    }
}

/// A lane's view of one interpreted function.
struct LaneFunc<'a> {
    program: &'a Program,
    concurrency: Concurrency,
}

/// A lane's view of one function's state: its own message shard, shared
/// read-only globals.
struct LaneFnState<'a> {
    shard: &'a mut MsgShard,
    msg_slots: usize,
    global: &'a [i64],
    arrays: &'a [Vec<i64>],
    /// Read-only replica view (replicated functions only). Lanes never
    /// write globals, so no exclusive form is needed here.
    repl: Option<ReplShared<'a>>,
}

struct LaneInvoker<'a, 'b> {
    funcs: &'a [LaneFunc<'a>],
    bindings: &'a [Vec<(Option<HeaderField>, Access)>],
    states: &'b mut [LaneFnState<'a>],
    func_deltas: &'b mut [FuncDelta],
    interp: &'b mut Interpreter,
    /// (batch index, function, message) of blocks this lane created, for
    /// packet-order FIFO replay at merge time.
    created: &'b mut Vec<(usize, usize, u64)>,
    batch_idx: usize,
    /// Sampled packet: time this invocation and record an Execute event.
    timed: bool,
    /// Sampled `(function, elapsed ns)` pairs, merged at batch-merge time.
    samples: &'b mut Vec<(usize, u64)>,
    ring: &'b mut FlightRing,
    lane: u16,
}

impl Invoker for LaneInvoker<'_, '_> {
    fn invoke(
        &mut self,
        fid: usize,
        msg_id: u64,
        packet: &mut Packet,
        scratch: &mut [i64],
        rng: &mut PacketRng,
        now: Time,
        direction: FlowDirection,
    ) -> InvokeOut {
        let st = &mut self.states[fid];
        if !st.shard.contains_key(&msg_id) {
            // headroom was verified before the fan-out: creating here can
            // never force an eviction, so FIFO replay at merge suffices
            st.shard.insert(msg_id, vec![0; st.msg_slots]);
            self.created.push((self.batch_idx, fid, msg_id));
        }
        let msg = st.shard.get_mut(&msg_id).expect("inserted above");
        let func = &self.funcs[fid];
        let mut host = InvocationHost {
            packet,
            bindings: &self.bindings[fid],
            scratch,
            msg,
            state: GlobalView::Shared {
                global: st.global,
                arrays: st.arrays,
            },
            repl: match st.repl {
                Some(s) => ReplRef::Shared(s),
                None => ReplRef::Off,
            },
            rng,
            now,
            direction,
            queue: None,
            header_modifies: 0,
            concurrency: func.concurrency,
        };
        let t = self.timed.then(std::time::Instant::now);
        let result = self.interp.run(func.program, &mut host);
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            self.samples.push((fid, ns));
            self.ring.record(FlightEvent {
                at_ns: now.as_nanos(),
                lane: self.lane,
                kind: FlightKind::Execute,
                a: fid as u64,
                b: ns,
            });
        }
        if result.is_err() {
            let (a, b) = self
                .interp
                .last_trap()
                .map(|s| (s.op_kind as u64, u64::from(s.pc)))
                .unwrap_or((eden_vm::Op::KIND_COUNT as u64, 0));
            self.ring.record(FlightEvent {
                at_ns: now.as_nanos(),
                lane: self.lane,
                kind: FlightKind::VmTrap,
                a,
                b,
            });
        }
        let out = InvokeOut {
            result,
            queue: host.queue,
            header_modifies: host.header_modifies,
        };
        self.func_deltas[fid].record(&out);
        out
    }
}

/// Reused struct-of-arrays scratch for the batched stages. Taken with
/// `mem::take` at batch start and restored after, so steady-state batches
/// run entirely out of recycled allocations.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Flat class-key column: every packet's class list, back to back.
    key_col: Vec<u32>,
    /// Per-packet `(start, len)` spans into `key_col`.
    ranges: Vec<(u32, u32)>,
    /// Message-identity column.
    msg_ids: Vec<u64>,
    /// Per-packet forked RNG column (fork order = batch order).
    prngs: Vec<PacketRng>,
    /// Trace-sampled flags (parallel path; the serial staged path only
    /// runs with tracing off).
    sampled: Vec<bool>,
    /// Match-stage output: table-0 resolution per packet.
    firsts: Vec<Lookup>,
    /// Per-lane packet-index partitions (parallel path).
    lane_idx: Vec<Vec<u32>>,
    /// Per-lane execute-stage scratch and outputs (parallel path).
    lane_scratch: Vec<LaneScratch>,
}

impl BatchScratch {
    fn clear_columns(&mut self) {
        self.key_col.clear();
        self.ranges.clear();
        self.msg_ids.clear();
        self.prngs.clear();
        self.sampled.clear();
        self.firsts.clear();
    }
}

/// One worker lane's reusable execute-stage scratch and outputs.
#[derive(Debug, Default)]
struct LaneScratch {
    verdicts: Vec<(u32, HookVerdict)>,
    stats: EnclaveStats,
    table_deltas: Vec<TableDelta>,
    func_deltas: Vec<FuncDelta>,
    /// `(batch index, packet)` punts, *moved* out of the slab (the slot
    /// keeps the consumed placeholder, same as the serial path).
    punts: Vec<(u32, Packet)>,
    /// `(batch index, function, message)` of state blocks this lane
    /// created, for packet-order FIFO replay at merge time.
    created: Vec<(usize, usize, u64)>,
    /// Sampled `(function, elapsed ns)` pairs from this lane.
    func_samples: Vec<(usize, u64)>,
    /// Packet-lifetime scratch for unmapped fields.
    pkt_scratch: Vec<i64>,
}

impl LaneScratch {
    fn reset(&mut self, rule_counts: &[usize], funcs: usize, scratch_len: usize) {
        self.verdicts.clear();
        self.stats = EnclaveStats::default();
        self.table_deltas.clear();
        self.table_deltas
            .extend(rule_counts.iter().map(|&n| TableDelta::for_rules(n)));
        self.func_deltas.clear();
        self.func_deltas.resize(funcs, FuncDelta::default());
        self.punts.clear();
        self.created.clear();
        self.func_samples.clear();
        self.pkt_scratch.clear();
        self.pkt_scratch.resize(scratch_len, 0);
    }
}

/// Everything one worker lane needs for the execute stage: its packet
/// indices, shared read-only views of the SoA columns / tables /
/// functions, its own state shards and interpreter, and its
/// [`LaneScratch`] outputs. Packets are written in place through the
/// shared [`PacketSlab`]; soundness rests on the lane partition being
/// disjoint (each batch index appears in exactly one lane's `idxs`).
struct LaneTask<'a, 'p> {
    idxs: &'a [u32],
    key_col: &'a [u32],
    ranges: &'a [(u32, u32)],
    msg_ids: &'a [u64],
    prngs: &'a [PacketRng],
    sampled: &'a [bool],
    firsts: &'a [Lookup],
    slab: &'a PacketSlab<'p>,
    tables: &'a [MatchActionTable],
    funcs: &'a [LaneFunc<'a>],
    bindings: &'a [Vec<(Option<HeaderField>, Access)>],
    states: Vec<LaneFnState<'a>>,
    interp: &'a mut Interpreter,
    ring: &'a mut FlightRing,
    scr: &'a mut LaneScratch,
    now: Time,
    direction: FlowDirection,
    fail_open: bool,
    lane: u16,
}

/// The per-lane execute stage: one [`Interpreter::run_batch`] call walks
/// every packet index assigned to this lane, reading the shared SoA
/// columns and writing packets in place through the [`PacketSlab`].
fn run_lane_task(_lane: usize, t: &mut LaneTask<'_, '_>) {
    let interp = &mut *t.interp;
    interp.run_batch(t.idxs.len(), |interp, k| {
        let i = t.idxs[k] as usize;
        let (start, len) = t.ranges[i];
        let classes = &t.key_col[start as usize..(start + len) as usize];
        let mut prng = t.prngs[i].clone();
        // SAFETY: lanes partition batch indices disjointly, so no other
        // lane touches this packet slot, and `LanePool::run`'s barrier
        // keeps the slab alive until every lane is done.
        let packet = unsafe { t.slab.pkt_mut(PacketRef(t.idxs[k])) };
        t.scr.pkt_scratch.iter_mut().for_each(|v| *v = 0);
        let walk = {
            let mut tables = SharedTables {
                tables: t.tables,
                deltas: &mut t.scr.table_deltas,
            };
            let mut inv = LaneInvoker {
                funcs: t.funcs,
                bindings: t.bindings,
                states: &mut t.states,
                func_deltas: &mut t.scr.func_deltas,
                interp,
                created: &mut t.scr.created,
                batch_idx: i,
                timed: t.sampled[i],
                samples: &mut t.scr.func_samples,
                ring: &mut *t.ring,
                lane: t.lane,
            };
            walk_packet(
                &mut tables,
                &mut inv,
                classes,
                t.msg_ids[i],
                packet,
                &mut t.scr.pkt_scratch,
                &mut prng,
                t.now,
                t.direction,
                t.fail_open,
                Some(t.firsts[i]),
            )
        };
        if walk.punt {
            // zero-copy punt: move out of the slab, leaving the same
            // consumed placeholder the serial path leaves
            t.scr
                .punts
                .push((i as u32, std::mem::replace(packet, Packet::consumed())));
        }
        t.scr.stats.account_walk(&walk);
        t.scr.verdicts.push((i as u32, walk.verdict));
    });
}

/// Append to the bounded punt-mailbox ring: when full, pop (and count)
/// the oldest punt first — O(1), where the old `Vec::remove(0)` mailbox
/// shifted every queued punt on each eviction.
fn push_punt_raw(
    tx: &mut Producer<Packet>,
    rx: &mut Consumer<Packet>,
    stats: &mut EnclaveStats,
    max_punted: usize,
    packet: Packet,
) {
    if max_punted == 0 {
        stats.punt_drops += 1;
        return;
    }
    if let Err(packet) = tx.push(packet) {
        let _ = rx.pop();
        stats.punt_drops += 1;
        let pushed = tx.push(packet).is_ok();
        debug_assert!(pushed, "punt ring has a free slot after eviction");
    }
}

/// One packet's trip through the execute stage.
struct WalkResult {
    verdict: HookVerdict,
    /// Verdict was a controller punt (the caller clones into the mailbox).
    punt: bool,
    matched_any: bool,
    fault: bool,
    header_modifies: u64,
    loop_abort: bool,
}

/// The table walk: lookup → invoke → verdict, with `GotoTable`
/// continuations. One implementation serves both the serial path and the
/// worker lanes — the [`TableAccess`]/[`Invoker`] pair carries the
/// difference — which is what makes batch/serial equivalence structural
/// rather than a property to re-prove after every change.
#[allow(clippy::too_many_arguments)]
fn walk_packet<T: TableAccess, I: Invoker>(
    tables: &mut T,
    inv: &mut I,
    classes: &[u32],
    msg_id: u64,
    packet: &mut Packet,
    scratch: &mut [i64],
    rng: &mut PacketRng,
    now: Time,
    direction: FlowDirection,
    fail_open: bool,
    mut first: Option<Lookup>,
) -> WalkResult {
    let mut res = WalkResult {
        verdict: HookVerdict::Pass,
        punt: false,
        matched_any: false,
        fault: false,
        header_modifies: 0,
        loop_abort: false,
    };
    let mut verdict_queue: Option<(i64, i64)> = None;
    let mut table = 0usize;
    let mut hops = 0u32;
    'walk: loop {
        hops += 1;
        if hops > 8 {
            res.loop_abort = true; // table-loop guard: fail open, counted
            break 'walk;
        }
        let lookup = match first.take() {
            Some(precomputed) => precomputed,
            None => tables.lookup(table, classes),
        };
        let fid = match lookup {
            Lookup::NoTable | Lookup::Miss => break 'walk,
            Lookup::Hit(fid) => fid,
        };
        res.matched_any = true;
        let out = inv.invoke(fid, msg_id, packet, scratch, rng, now, direction);
        // header writes happened even if the function later trapped or
        // dropped, so they are merged on every exit path
        res.header_modifies += out.header_modifies;
        match out.result {
            Ok(outcome) => {
                if let Some(q) = out.queue {
                    verdict_queue = Some(q);
                }
                match outcome {
                    Outcome::Done => break 'walk,
                    Outcome::Dropped => {
                        res.verdict = HookVerdict::Drop;
                        return res;
                    }
                    Outcome::SentToController => {
                        res.verdict = HookVerdict::Drop;
                        res.punt = true;
                        return res;
                    }
                    Outcome::GotoTable(t) => {
                        table = t as usize;
                        continue 'walk;
                    }
                }
            }
            Err(_trap) => {
                res.fault = true;
                if fail_open {
                    break 'walk;
                }
                res.verdict = HookVerdict::Drop;
                return res;
            }
        }
    }
    res.verdict = match verdict_queue {
        Some((queue, charge)) => HookVerdict::Queue {
            queue: queue.max(0) as usize,
            charge: charge.max(0) as u64,
        },
        None => HookVerdict::Pass,
    };
    res
}

/// Shared read-only replica view for a worker lane: the spec plus the
/// remote-contribution snapshots. Only mutated between batches, so lanes
/// read it without synchronization.
#[derive(Clone, Copy)]
struct ReplShared<'a> {
    spec: &'a ReplSpec,
    remote: &'a [i64],
    remote_arrays: &'a [Vec<i64>],
}

/// A function's view of its replication runtime during one invocation.
/// `Off` for non-replicated functions — the common case, one branch on
/// every global access. Writers (always `Serialized`, hence serial-path
/// only) get the exclusive form, which can queue sequenced ops; lanes get
/// the shared read-only form.
enum ReplRef<'a> {
    Off,
    Excl(&'a mut HostRepl),
    Shared(ReplShared<'a>),
}

impl ReplRef<'_> {
    /// Effective value of global `slot` given its local contribution.
    #[inline]
    fn read_global(&self, slot: usize, local: i64) -> i64 {
        let (spec, remote) = match self {
            ReplRef::Off => return local,
            ReplRef::Excl(h) => (h.spec(), h.remote_globals()),
            ReplRef::Shared(s) => (s.spec, s.remote),
        };
        match spec.global_mode(slot) {
            Some(mode) => merged_read(mode, remote.get(slot).copied().unwrap_or(0), local),
            None => local,
        }
    }

    /// Effective value of array cell `(id, index)` given its local value.
    #[inline]
    fn read_array(&self, id: usize, index: usize, local: i64) -> i64 {
        let (spec, remote) = match self {
            ReplRef::Off => return local,
            ReplRef::Excl(h) => (h.spec(), h.remote_array(id)),
            ReplRef::Shared(s) => (
                s.spec,
                s.remote_arrays.get(id).map_or(&[][..], Vec::as_slice),
            ),
        };
        match spec.array_mode(id) {
            Some(mode) => merged_read(mode, remote.get(index).copied().unwrap_or(0), local),
            None => local,
        }
    }

    /// Route a store to global `slot`: `Some(new_local)` writes the local
    /// slot, `None` means the write was queued for controller sequencing
    /// (the slot changes only when the ordered entry comes back).
    #[inline]
    fn store_global(&mut self, slot: usize, value: i64) -> Option<i64> {
        match self {
            ReplRef::Off | ReplRef::Shared(_) => Some(value),
            ReplRef::Excl(h) => match h.spec().global_mode(slot) {
                None => Some(value),
                Some(ReplMode::Sequenced) => {
                    h.seq_store_global(slot as u8, value);
                    None
                }
                Some(mode) => Some(merged_store(
                    mode,
                    h.remote_globals().get(slot).copied().unwrap_or(0),
                    value,
                )),
            },
        }
    }

    /// Route a store to array cell `(id, index)`; same contract as
    /// [`store_global`](Self::store_global).
    #[inline]
    fn store_array(&mut self, id: usize, index: usize, value: i64) -> Option<i64> {
        match self {
            ReplRef::Off | ReplRef::Shared(_) => Some(value),
            ReplRef::Excl(h) => match h.spec().array_mode(id) {
                None => Some(value),
                Some(ReplMode::Sequenced) => {
                    h.seq_store_array(id as u8, index as u32, value);
                    None
                }
                Some(mode) => Some(merged_store(
                    mode,
                    h.remote_array(id).get(index).copied().unwrap_or(0),
                    value,
                )),
            },
        }
    }
}

/// A function's view of the shared globals: the serial path holds them
/// exclusively; worker lanes share them read-only (safe because only
/// `Serialized` functions may write, and those never reach a lane).
enum GlobalView<'a> {
    Excl {
        global: &'a mut [i64],
        arrays: &'a mut [Vec<i64>],
    },
    Shared {
        global: &'a [i64],
        arrays: &'a [Vec<i64>],
    },
}

impl GlobalView<'_> {
    fn global(&self, slot: usize) -> Option<i64> {
        match self {
            GlobalView::Excl { global, .. } => global.get(slot).copied(),
            GlobalView::Shared { global, .. } => global.get(slot).copied(),
        }
    }

    fn array(&self, array: usize) -> Option<&[i64]> {
        match self {
            GlobalView::Excl { arrays, .. } => arrays.get(array).map(|a| a.as_slice()),
            GlobalView::Shared { arrays, .. } => arrays.get(array).map(|a| a.as_slice()),
        }
    }
}

/// The per-invocation state view the VM (or a native function) runs
/// against. Mapped packet slots read/write real header fields through the
/// HeaderMap; unmapped slots use packet-lifetime scratch. The function's
/// derived concurrency level (§3.4.4) is enforced here: a `Parallel`
/// (read-only) function may not write message or global state, a
/// `PerMessage` function may not write global state — violations trap like
/// any other fault, on the serial path and on lanes alike.
struct InvocationHost<'a> {
    packet: &'a mut Packet,
    bindings: &'a [(Option<HeaderField>, Access)],
    scratch: &'a mut [i64],
    msg: &'a mut [i64],
    state: GlobalView<'a>,
    repl: ReplRef<'a>,
    rng: &'a mut PacketRng,
    now: Time,
    direction: FlowDirection,
    queue: Option<(i64, i64)>,
    /// Mapped header fields written during this invocation (telemetry).
    header_modifies: u64,
    concurrency: Concurrency,
}

impl Host for InvocationHost<'_> {
    fn load_pkt(&mut self, slot: u8) -> Result<i64, VmError> {
        match self.bindings.get(slot as usize) {
            Some((Some(HeaderField::Direction), _)) => Ok(match self.direction {
                FlowDirection::Egress => 0,
                FlowDirection::Ingress => 1,
            }),
            Some((Some(field), _)) => Ok(crate::headermap::read_header_field(self.packet, *field)),
            Some((None, _)) => Ok(self.scratch[slot as usize]),
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
        }
    }

    fn store_pkt(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        match self.bindings.get(slot as usize) {
            Some((_, Access::ReadOnly)) => Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
            Some((Some(field), _)) => {
                crate::headermap::write_header_field(self.packet, *field, value);
                self.header_modifies += 1;
                Ok(())
            }
            Some((None, _)) => {
                self.scratch[slot as usize] = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Packet,
                slot,
            }),
        }
    }

    fn load_msg(&mut self, slot: u8) -> Result<i64, VmError> {
        self.msg
            .get(slot as usize)
            .copied()
            .ok_or(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Message,
                slot,
            })
    }

    fn store_msg(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        if self.concurrency == Concurrency::Parallel {
            // a read-only function writing message state would invalidate
            // its derived concurrency level — trap instead of racing
            return Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Message,
                slot,
            });
        }
        match self.msg.get_mut(slot as usize) {
            Some(s) => {
                *s = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Message,
                slot,
            }),
        }
    }

    fn load_glob(&mut self, slot: u8) -> Result<i64, VmError> {
        let local = self
            .state
            .global(slot as usize)
            .ok_or(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Global,
                slot,
            })?;
        Ok(self.repl.read_global(slot as usize, local))
    }

    fn store_glob(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        if self.concurrency != Concurrency::Serialized {
            return Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Global,
                slot,
            });
        }
        match &mut self.state {
            GlobalView::Excl { global, .. } => match global.get_mut(slot as usize) {
                Some(s) => {
                    if let Some(v) = self.repl.store_global(slot as usize, value) {
                        *s = v;
                    }
                    Ok(())
                }
                None => Err(VmError::BadStateSlot {
                    scope: eden_vm::StateScope::Global,
                    slot,
                }),
            },
            // unreachable in practice: Serialized functions never run on a
            // lane, but fail safe rather than assume
            GlobalView::Shared { .. } => Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Global,
                slot,
            }),
        }
    }

    fn arr_load(&mut self, array: u8, index: i64) -> Result<i64, VmError> {
        let arr = self
            .state
            .array(array as usize)
            .ok_or(VmError::BadArrayAccess { array, index })?;
        let i = usize::try_from(index)
            .ok()
            .filter(|&i| i < arr.len())
            .ok_or(VmError::BadArrayAccess { array, index })?;
        Ok(self.repl.read_array(array as usize, i, arr[i]))
    }

    fn arr_store(&mut self, array: u8, index: i64, value: i64) -> Result<(), VmError> {
        if self.concurrency != Concurrency::Serialized {
            return Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Global,
                slot: array,
            });
        }
        match &mut self.state {
            GlobalView::Excl { arrays, .. } => {
                let arr = arrays
                    .get_mut(array as usize)
                    .ok_or(VmError::BadArrayAccess { array, index })?;
                let i = usize::try_from(index)
                    .ok()
                    .filter(|&i| i < arr.len())
                    .ok_or(VmError::BadArrayAccess { array, index })?;
                if let Some(v) = self.repl.store_array(array as usize, i, value) {
                    arr[i] = v;
                }
                Ok(())
            }
            GlobalView::Shared { .. } => Err(VmError::ReadOnlyViolation {
                scope: eden_vm::StateScope::Global,
                slot: array,
            }),
        }
    }

    fn arr_len(&mut self, array: u8) -> Result<i64, VmError> {
        self.state
            .array(array as usize)
            .map(|a| a.len() as i64)
            .ok_or(VmError::BadArrayAccess { array, index: -1 })
    }

    fn rand64(&mut self) -> i64 {
        self.rng.next_i64()
    }

    fn now_ns(&mut self) -> i64 {
        self.now.as_nanos() as i64
    }

    fn effect(&mut self, effect: Effect) -> Result<(), VmError> {
        match effect {
            Effect::SetQueue { queue, charge } => {
                if queue < 0 {
                    return Err(VmError::BadQueue(queue));
                }
                self.queue = Some((queue, charge));
                Ok(())
            }
            Effect::GotoTable { table } => {
                if !(0..=u8::MAX as i64).contains(&table) {
                    return Err(VmError::BadTable(table));
                }
                Ok(())
            }
            Effect::Drop | Effect::ToController => Ok(()),
        }
    }
}

/// Convenience: build a native [`InstalledFunction`] in one call.
pub fn native_function(
    name: &str,
    schema: Schema,
    concurrency: Concurrency,
    f: NativeFn,
) -> InstalledFunction {
    InstalledFunction::native(name, f, schema, concurrency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_lang::compile;

    fn interp_fn(src: &str, schema: Schema) -> InstalledFunction {
        let compiled = compile("t", src, &schema).expect("test source compiles");
        InstalledFunction::interpreted("t", compiled)
    }

    #[test]
    fn rule_index_is_first_match_wins() {
        let mut t = MatchActionTable::default();
        for (spec, func) in [
            (MatchSpec::Class(ClassId(7)), 0),
            (MatchSpec::Any, 1),
            (MatchSpec::Class(ClassId(9)), 2),
            (MatchSpec::AnyOf(vec![ClassId(3), ClassId(4)]), 3),
        ] {
            t.push_rule(Rule {
                spec,
                func: FuncId(func),
                hits: 0,
                epoch: 0,
            });
        }
        assert_eq!(t.find(&[7]), Some(0));
        assert_eq!(t.find(&[9]), Some(1), "Any precedes the class-9 rule");
        assert_eq!(t.find(&[4]), Some(1), "Any precedes the AnyOf rule");
        assert_eq!(t.find(&[]), Some(1));

        let mut t2 = MatchActionTable::default();
        t2.push_rule(Rule {
            spec: MatchSpec::AnyOf(vec![ClassId(3)]),
            func: FuncId(0),
            hits: 0,
            epoch: 0,
        });
        t2.push_rule(Rule {
            spec: MatchSpec::Class(ClassId(5)),
            func: FuncId(1),
            hits: 0,
            epoch: 0,
        });
        assert_eq!(t2.find(&[5]), Some(1));
        assert_eq!(t2.find(&[3, 5]), Some(0), "earlier AnyOf wins");
        assert_eq!(t2.find(&[9]), None);
    }

    #[test]
    fn parallel_eligibility_gates() {
        // default config: 4 lanes, batch minimum 32
        let mut e = Enclave::new(EnclaveConfig::default());
        assert!(!e.parallel_eligible(64), "no functions installed");
        let schema = Schema::new().packet_field("Priority", Access::ReadWrite, None);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> packet.Priority <- 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(e.parallel_eligible(32));
        assert!(!e.parallel_eligible(31), "below the batch minimum");

        // a native function is not Send: the whole enclave falls back
        e.install_function(native_function(
            "n",
            Schema::new(),
            Concurrency::Parallel,
            Box::new(|_| Ok(Outcome::Done)),
        ));
        assert!(!e.parallel_eligible(1024));
    }

    #[test]
    fn serialized_function_disables_lanes() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new().global_field("C", Access::ReadWrite);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> _global.C <- _global.C + 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(!e.parallel_eligible(1024), "global writer must stay serial");
    }

    #[test]
    fn headroom_gate_blocks_oversized_batches() {
        let mut e = Enclave::new(EnclaveConfig {
            max_messages_per_function: 10,
            parallel_batch_min: 1,
            parallel_per_lane_min: 1,
            ..EnclaveConfig::default()
        });
        let schema = Schema::new()
            .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
            .msg_field("B", Access::ReadWrite);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> msg.B <- msg.B + packet.Size",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(e.parallel_eligible(10));
        assert!(
            !e.parallel_eligible(11),
            "a batch that could evict must run serially"
        );
    }

    /// A Reset-led full-replacement epoch: one priority-setter function and
    /// one Any rule, priority = `prio`.
    fn epoch_ops(prio: u8) -> Vec<EnclaveOp> {
        let schema =
            Schema::new().packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp));
        let src = format!("fun (packet, msg, _global) -> packet.Priority <- {prio}");
        let compiled = compile("set_prio", &src, &schema).expect("compiles");
        vec![
            EnclaveOp::Reset,
            EnclaveOp::InstallFunction {
                name: "set_prio".into(),
                bytecode: eden_vm::encode_program(&compiled.program),
                schema,
                concurrency: compiled.concurrency,
            },
            EnclaveOp::InstallRule {
                table: 0,
                spec: MatchSpec::Any,
                func: 0,
            },
        ]
    }

    fn run_one(e: &mut Enclave) -> u8 {
        let mut p = Packet::udp(1, 2, netsim::UdpHeader::default(), 100);
        let mut rng = SimRng::new(1);
        e.process(&mut p, &mut rng, Time::ZERO);
        p.priority()
    }

    #[test]
    fn staged_epoch_is_invisible_until_commit() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid epoch");
        assert_eq!(e.active_epoch(), 0);
        assert_eq!(e.staged_epoch(), Some(1));
        assert_eq!(run_one(&mut e), 0, "staged config must not process packets");

        assert!(e.commit_epoch(1));
        assert_eq!(e.active_epoch(), 1);
        assert_eq!(e.staged_epoch(), None);
        assert_eq!(run_one(&mut e), 3);
        assert!(e.serves_single_epoch());
    }

    #[test]
    fn commit_is_idempotent_and_rejects_unknown_epochs() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid");
        assert!(!e.commit_epoch(2), "not the staged epoch");
        assert!(e.commit_epoch(1));
        assert!(e.commit_epoch(1), "duplicate commit of active epoch is ok");
        assert!(!e.commit_epoch(2), "never prepared");
    }

    #[test]
    fn abort_discards_staged_epoch() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid");
        e.abort_epoch(2);
        assert_eq!(e.staged_epoch(), Some(1), "mismatched abort is a no-op");
        e.abort_epoch(1);
        assert_eq!(e.staged_epoch(), None);
        assert!(!e.commit_epoch(1), "aborted epoch cannot commit");
        assert_eq!(run_one(&mut e), 0);
    }

    #[test]
    fn restaging_replaces_previous_staging() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid");
        e.stage_epoch(2, &epoch_ops(5)).expect("valid");
        assert_eq!(e.staged_epoch(), Some(2));
        assert!(e.commit_epoch(2));
        assert_eq!(run_one(&mut e), 5);
    }

    #[test]
    fn invalid_epochs_are_rejected_whole() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let mut ops = epoch_ops(3);
        ops.push(EnclaveOp::InstallRule {
            table: 7,
            spec: MatchSpec::Any,
            func: 0,
        });
        let err = e.stage_epoch(1, &ops).expect_err("bad table index");
        assert!(matches!(err, ApplyError::NoSuchTable { table: 7, .. }));
        assert_eq!(e.staged_epoch(), None, "nothing staged on error");

        let err = e
            .stage_epoch(
                1,
                &[EnclaveOp::SetGlobal {
                    func: 0,
                    slot: 0,
                    value: 1,
                }],
            )
            .expect_err("no functions installed");
        assert!(matches!(err, ApplyError::NoSuchFunction { func: 0, .. }));

        let err = e
            .stage_epoch(
                1,
                &[EnclaveOp::InstallFunction {
                    name: "junk".into(),
                    bytecode: vec![0xFF, 0x00, 0x13],
                    schema: Schema::new(),
                    concurrency: Concurrency::Parallel,
                }],
            )
            .expect_err("garbage bytecode");
        assert!(matches!(err, ApplyError::BadBytecode { .. }));
    }

    #[test]
    fn config_digest_tracks_structure_not_counters() {
        let mut a = Enclave::new(EnclaveConfig::default());
        let mut b = Enclave::new(EnclaveConfig::default());
        a.stage_epoch(1, &epoch_ops(3)).expect("valid");
        assert!(a.commit_epoch(1));
        b.stage_epoch(1, &epoch_ops(3)).expect("valid");
        assert!(b.commit_epoch(1));
        assert_eq!(a.config_digest(), b.config_digest());

        // Traffic moves counters but not the digest.
        let before = a.config_digest();
        run_one(&mut a);
        assert_eq!(a.config_digest(), before);

        // A different program does move it.
        let mut c = Enclave::new(EnclaveConfig::default());
        c.stage_epoch(1, &epoch_ops(5)).expect("valid");
        assert!(c.commit_epoch(1));
        assert_ne!(a.config_digest(), c.config_digest());
    }

    #[test]
    fn delta_epoch_stages_against_matching_digest() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid");
        assert!(e.commit_epoch(1));

        // A diff appending one rule, anchored at the current digest.
        let delta = vec![EnclaveOp::InstallRule {
            table: 0,
            spec: MatchSpec::Class(ClassId(1)),
            func: 0,
        }];
        let base = e.config_digest();
        e.stage_epoch_delta(2, base, &delta)
            .expect("digest matches");
        assert!(e.commit_epoch(2));
        assert_eq!(e.active_epoch(), 2);
        assert_eq!(e.tables[0].rules.len(), 2);
        assert!(
            e.serves_single_epoch(),
            "surviving rules must be re-stamped into the committed epoch"
        );

        // The delta'd config is byte-for-byte the same structure a full
        // replacement would have produced.
        let mut full = Enclave::new(EnclaveConfig::default());
        let mut ops = epoch_ops(3);
        ops.push(EnclaveOp::InstallRule {
            table: 0,
            spec: MatchSpec::Class(ClassId(1)),
            func: 0,
        });
        full.stage_epoch(2, &ops).expect("valid");
        assert!(full.commit_epoch(2));
        assert_eq!(e.config_digest(), full.config_digest());
    }

    #[test]
    fn delta_epoch_rejects_stale_digest() {
        let mut e = Enclave::new(EnclaveConfig::default());
        e.stage_epoch(1, &epoch_ops(3)).expect("valid");
        assert!(e.commit_epoch(1));
        let have = e.config_digest();

        let err = e
            .stage_epoch_delta(2, have ^ 1, &[EnclaveOp::CreateTable])
            .expect_err("anchored at a digest we don't have");
        assert_eq!(
            err,
            ApplyError::DigestMismatch {
                have,
                want: have ^ 1
            }
        );
        assert_eq!(e.staged_epoch(), None, "nothing staged on mismatch");
        assert_eq!(e.config_digest(), have, "config untouched");
    }

    #[test]
    fn remove_rule_rebuilds_first_match_index() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new().packet_field("Priority", Access::ReadWrite, None);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> packet.Priority <- 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
        e.install_rule(TableId(0), MatchSpec::Class(ClassId(2)), f);
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(e.remove_rule(TableId(0), 0));
        assert!(!e.remove_rule(TableId(0), 9), "out of range");
        let t = &e.tables[0];
        assert_eq!(t.find(&[2]), Some(0), "class-2 rule shifted down");
        assert_eq!(t.find(&[1]), Some(1), "class-1 traffic now hits Any");
        assert_eq!(t.rules.len(), 2);
    }

    #[test]
    fn vm_trap_freezes_flight_recorder() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let mut b = eden_vm::ProgramBuilder::new();
        b.push(1).push(0).div().pop().halt();
        let bytecode = eden_vm::encode_program(&b.build().unwrap());
        let f = e.install_function(
            InstalledFunction::from_shipped(
                "divzero",
                &bytecode,
                Schema::new(),
                Concurrency::Parallel,
            )
            .unwrap(),
        );
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(e.last_flight_dump().is_none());

        let mut p = Packet::udp(1, 2, netsim::UdpHeader::default(), 100);
        let mut rng = SimRng::new(1);
        e.process(&mut p, &mut rng, Time::from_nanos(5));

        let dump = e.last_flight_dump().expect("trap froze the recorder");
        assert_eq!(dump.reason, "vm_trap");
        let last = dump.last_event().expect("events retained");
        assert!(matches!(last.kind, FlightKind::VmTrap));
        assert_eq!(
            eden_vm::Op::kind_name(last.a as usize),
            "div",
            "last event attributes the trapping opcode"
        );
        assert!(dump.counters.conserved(), "snapshot obeys conservation");
        assert_eq!(dump.counters.faults, 1);

        let taken = e.take_flight_dump().expect("dump available once");
        assert_eq!(taken.reason, "vm_trap");
        assert!(e.last_flight_dump().is_none());
    }

    #[test]
    fn sampled_tracing_records_spans_and_latencies() {
        let mut e = Enclave::new(EnclaveConfig {
            trace_sample: 2,
            ..EnclaveConfig::default()
        });
        let schema = Schema::new().packet_field("Priority", Access::ReadWrite, None);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> packet.Priority <- 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        let mut rng = SimRng::new(1);
        for i in 0..8u64 {
            let mut p = Packet::udp(1, 2, netsim::UdpHeader::default(), 100);
            e.process(&mut p, &mut rng, Time::from_nanos(i));
        }
        // 1-in-2 sampling: 4 traced packets, each completing 3 spans
        // (classify + execute + the "pkt" root)
        assert_eq!(e.pending_spans(), 12);
        let spans = e.drain_spans(100);
        assert!(spans.iter().any(|s| s.name == "pkt"));
        assert!(spans.iter().any(|s| s.name == "classify"));
        assert!(spans.iter().any(|s| s.name == "execute"));
        assert_eq!(e.pending_spans(), 0);

        let snap = e.stats_snapshot();
        let names: Vec<&str> = snap.latencies.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"stage.classify"), "{names:?}");
        assert!(names.contains(&"stage.execute"), "{names:?}");
        assert!(names.contains(&"vm.exec"), "{names:?}");
        assert!(names.contains(&"func.t"), "{names:?}");

        // with sampling off (the default) snapshots carry no latencies
        let quiet = Enclave::new(EnclaveConfig::default());
        assert!(!quiet.tracing_enabled());
        assert!(quiet.stats_snapshot().latencies.is_empty());
    }

    #[test]
    fn batch_path_records_stage_histograms() {
        let mut e = Enclave::new(EnclaveConfig {
            trace_sample: 4,
            parallel_batch_min: 1,
            ..EnclaveConfig::default()
        });
        let schema = Schema::new().packet_field("Priority", Access::ReadWrite, None);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> packet.Priority <- 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        let mut rng = SimRng::new(1);
        let mut batch: Vec<Packet> = (0..64)
            .map(|_| Packet::udp(1, 2, netsim::UdpHeader::default(), 100))
            .collect();
        e.process_batch(&mut batch, &mut rng, Time::from_nanos(1));
        let snap = e.stats_snapshot();
        let names: Vec<&str> = snap.latencies.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"stage.classify"), "{names:?}");
        assert!(names.contains(&"stage.match"), "{names:?}");
        assert!(names.contains(&"stage.execute"), "{names:?}");
        assert!(names.contains(&"func.t"), "{names:?}");
        let spans = e.drain_spans(100);
        assert!(spans.iter().any(|s| s.name == "batch"));
        assert!(spans.iter().any(|s| s.name == "match"));
    }

    #[test]
    fn merged_global_reads_combine_remote_and_local() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new()
            .global_field("Tokens", Access::ReadWrite)
            .replicated(ReplMode::MergedSum);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> _global.Tokens <- _global.Tokens + 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(e.repl_active());
        assert_eq!(e.repl_funcs(), vec![0]);

        run_one(&mut e);
        assert_eq!(e.global(f, 0), 1, "local contribution");
        assert_eq!(e.global_effective(f, 0), 1, "no remote view yet");

        // a controller view: the rest of the fleet contributes 40
        let view = eden_repl::FuncView {
            func: 0,
            version: 1,
            remote: vec![(0, 40)],
            ..Default::default()
        };
        e.apply_repl_view(&view, 1_000);
        assert_eq!(e.global_effective(f, 0), 41, "remote + local");

        // the next increment observes 41 and stores 42; the local
        // contribution absorbs the difference (read-your-writes without
        // double-counting the remote part)
        run_one(&mut e);
        assert_eq!(e.global(f, 0), 2);
        assert_eq!(e.global_effective(f, 0), 42);
        let d = e.repl_delta(0).expect("replicated function");
        assert_eq!(d.merged, vec![(0, 2)], "delta carries the contribution");
        assert!(d.seq_ops.is_empty());
    }

    #[test]
    fn sequenced_store_defers_until_controller_order() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new()
            .global_field("Steer", Access::ReadWrite)
            .replicated(ReplMode::Sequenced);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> _global.Steer <- 7",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);

        run_one(&mut e);
        assert_eq!(e.global(f, 0), 0, "write awaits controller sequencing");
        let d = e.repl_delta(0).expect("replicated function");
        assert_eq!(d.seq_ops.len(), 1);
        assert_eq!(d.seq_ops[0].value, 7);
        assert_eq!(e.repl_host(0).unwrap().pending_len(), 1);

        // the controller sequences it and the view applies it locally
        let view = eden_repl::FuncView {
            func: 0,
            version: 1,
            entries: vec![eden_repl::SeqEntry {
                seq: 1,
                host: 9,
                op: d.seq_ops[0],
            }],
            acked_op_id: 1,
            ..Default::default()
        };
        e.apply_repl_view(&view, 2_000);
        assert_eq!(e.global(f, 0), 7, "applied in controller order");
        assert_eq!(e.repl_host(0).unwrap().pending_len(), 0, "op acked");
        assert_eq!(e.repl_host(0).unwrap().applied_seq(), 1);
    }

    #[test]
    fn divergent_view_freezes_flight_recorder() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new()
            .global_field("Tokens", Access::ReadWrite)
            .replicated(ReplMode::MergedSum);
        e.install_function(interp_fn(
            "fun (packet, msg, _global) -> _global.Tokens <- _global.Tokens + 1",
            schema,
        ));
        assert!(e.last_flight_dump().is_none());
        let view = eden_repl::FuncView {
            func: 0,
            divergent: true,
            ..Default::default()
        };
        e.apply_repl_view(&view, 0);
        let dump = e.last_flight_dump().expect("divergence froze the recorder");
        assert_eq!(dump.reason, "repl_divergence");
    }

    #[test]
    fn plain_functions_have_no_repl_runtime() {
        let mut e = Enclave::new(EnclaveConfig::default());
        let schema = Schema::new().global_field("C", Access::ReadWrite);
        let f = e.install_function(interp_fn(
            "fun (packet, msg, _global) -> _global.C <- _global.C + 1",
            schema,
        ));
        e.install_rule(TableId(0), MatchSpec::Any, f);
        assert!(!e.repl_active());
        assert!(e.repl_delta(0).is_none());
        run_one(&mut e);
        assert_eq!(e.global(f, 0), 1);
        assert_eq!(e.global_effective(f, 0), 1);
    }

    #[test]
    fn apply_op_validates_against_current_shape() {
        let mut e = Enclave::new(EnclaveConfig::default());
        assert!(e
            .apply_op(EnclaveOp::InstallRule {
                table: 0,
                spec: MatchSpec::Any,
                func: 0,
            })
            .is_err());
        e.apply_op(EnclaveOp::CreateTable).expect("valid");
        assert_eq!(e.tables.len(), 2);
        e.apply_op(EnclaveOp::Reset).expect("valid");
        assert_eq!(e.tables.len(), 1);
        assert!(e.functions.is_empty());
    }
}
