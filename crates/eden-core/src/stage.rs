//! Stages: application-level classification (§3.3, Tables 2–3).
//!
//! A stage advertises which application fields it can classify on and which
//! metadata it can emit ([`StageInfo`], the paper's `getStageInfo`). The
//! controller installs classification rules of the form
//! `<classifier> → [class_name, {meta-data}]`, organized into *rule-sets*
//! such that a message matches at most one rule per rule-set (first match
//! wins). Classifying a message yields one class per matching rule-set plus
//! a fresh message identifier; the stage attaches all of it as
//! [`EdenMeta`] when it sends the message.

use std::collections::HashMap;

use netsim::EdenMeta;

use crate::class::ClassId;

/// A value of an application-level classification field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    Str(String),
    Int(i64),
}

impl FieldValue {
    fn matches(&self, m: &Matcher) -> bool {
        match m {
            Matcher::Any => true,
            Matcher::Exact(v) => self == v,
            Matcher::Prefix(p) => match self {
                FieldValue::Str(s) => s.starts_with(p.as_str()),
                FieldValue::Int(_) => false,
            },
        }
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

/// One classifier term: how a field must look for the rule to match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Matcher {
    /// `*` — anything (including an absent field).
    Any,
    /// Exact value.
    Exact(FieldValue),
    /// String prefix (URL paths, key namespaces).
    Prefix(String),
}

/// A classification rule within a rule-set.
#[derive(Debug, Clone)]
pub struct StageRule {
    /// Unique within the stage (returned by `create_rule`).
    pub id: u64,
    /// Conjunction of per-field matchers.
    pub classifier: Vec<(String, Matcher)>,
    /// Interned class assigned on match.
    pub class: ClassId,
}

/// What a stage can classify on and emit (Table 2 rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageInfo {
    pub name: String,
    /// Fields usable in classifiers, e.g. `["msg_type", "key"]`.
    pub classifiers: Vec<String>,
    /// Metadata fields the stage can attach, e.g. `["msg_id", "msg_size"]`.
    pub metadata: Vec<String>,
}

#[derive(Debug, Default)]
struct RuleSet {
    rules: Vec<StageRule>,
}

/// An Eden-compliant application/library component.
#[derive(Debug)]
pub struct Stage {
    info: StageInfo,
    rule_sets: HashMap<String, RuleSet>,
    next_rule: u64,
    next_msg_id: u64,
    /// Messages classified so far.
    pub classified: u64,
}

impl Stage {
    /// A stage advertising the given classification surface.
    pub fn new(name: &str, classifiers: &[&str], metadata: &[&str]) -> Stage {
        Stage {
            info: StageInfo {
                name: name.to_string(),
                classifiers: classifiers.iter().map(|s| s.to_string()).collect(),
                metadata: metadata.iter().map(|s| s.to_string()).collect(),
            },
            rule_sets: HashMap::new(),
            next_rule: 1,
            next_msg_id: 1,
            classified: 0,
        }
    }

    /// The paper's `getStageInfo` (S0).
    pub fn get_info(&self) -> &StageInfo {
        &self.info
    }

    /// The paper's `createStageRule` (S1): install
    /// `<classifier> → [class, {…}]` into `rule_set`, returning the rule id.
    ///
    /// # Panics
    /// Panics if the classifier references a field the stage did not
    /// advertise — the controller is supposed to consult `get_info` first.
    pub fn create_rule(
        &mut self,
        rule_set: &str,
        classifier: Vec<(String, Matcher)>,
        class: ClassId,
    ) -> u64 {
        for (field, _) in &classifier {
            assert!(
                self.info.classifiers.iter().any(|c| c == field),
                "stage '{}' cannot classify on '{}'",
                self.info.name,
                field
            );
        }
        let id = self.next_rule;
        self.next_rule += 1;
        self.rule_sets
            .entry(rule_set.to_string())
            .or_default()
            .rules
            .push(StageRule {
                id,
                classifier,
                class,
            });
        id
    }

    /// The paper's `removeStageRule` (S2). Returns whether a rule was
    /// removed.
    pub fn remove_rule(&mut self, rule_set: &str, rule_id: u64) -> bool {
        if let Some(rs) = self.rule_sets.get_mut(rule_set) {
            let before = rs.rules.len();
            rs.rules.retain(|r| r.id != rule_id);
            return rs.rules.len() != before;
        }
        false
    }

    /// Classify one application message described by `fields`, producing
    /// the metadata to attach to its packets: one class per matching
    /// rule-set (first rule wins within a set) and a fresh message id.
    ///
    /// Well-known field names populate the metadata directly: `msg_type`
    /// and `msg_size` (integers), `tenant`, and `key` (hashed into
    /// `key_hash`).
    pub fn classify(&mut self, fields: &[(&str, FieldValue)]) -> EdenMeta {
        let mut classes = Vec::new();
        // deterministic order: sort rule-set names
        let mut set_names: Vec<&String> = self.rule_sets.keys().collect();
        set_names.sort();
        for name in set_names {
            let rs = &self.rule_sets[name];
            for rule in &rs.rules {
                let matches = rule.classifier.iter().all(|(field, matcher)| {
                    match fields.iter().find(|(f, _)| f == field) {
                        Some((_, v)) => v.matches(matcher),
                        None => matches!(matcher, Matcher::Any),
                    }
                });
                if matches {
                    classes.push(rule.class.0);
                    break;
                }
            }
        }
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.classified += 1;

        let mut meta = EdenMeta {
            classes,
            msg_id,
            msg_start: true,
            ..Default::default()
        };
        for (field, value) in fields {
            match (*field, value) {
                ("msg_type", FieldValue::Int(v)) => meta.msg_type = *v,
                ("msg_size", FieldValue::Int(v)) => meta.msg_size = *v,
                ("tenant", FieldValue::Int(v)) => meta.tenant = *v,
                ("key", FieldValue::Str(s)) => meta.key_hash = hash_str(s),
                ("key", FieldValue::Int(v)) => meta.key_hash = *v,
                _ => {}
            }
        }
        meta
    }
}

/// Stable 63-bit FNV-1a string hash for key metadata.
fn hash_str(s: &str) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h & (i64::MAX as u64)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 6 rule-sets for a memcached stage.
    fn memcached_stage() -> (Stage, [ClassId; 7]) {
        let mut s = Stage::new(
            "memcached",
            &["msg_type", "key"],
            &["msg_id", "msg_type", "key", "msg_size"],
        );
        // ids as the controller would intern them
        let get = ClassId(1);
        let put = ClassId(2);
        let default = ClassId(3);
        let geta = ClassId(4);
        let a = ClassId(5);
        let other = ClassId(6);
        let unused = ClassId(7);

        // r1: GET / PUT
        s.create_rule(
            "r1",
            vec![("msg_type".into(), Matcher::Exact("GET".into()))],
            get,
        );
        s.create_rule(
            "r1",
            vec![("msg_type".into(), Matcher::Exact("PUT".into()))],
            put,
        );
        // r2: everything → DEFAULT
        s.create_rule("r2", vec![("msg_type".into(), Matcher::Any)], default);
        // r3: <GET,"a"> → GETA ; <*,"a"> → A ; <*,*> → OTHER
        s.create_rule(
            "r3",
            vec![
                ("msg_type".into(), Matcher::Exact("GET".into())),
                ("key".into(), Matcher::Exact("a".into())),
            ],
            geta,
        );
        s.create_rule("r3", vec![("key".into(), Matcher::Exact("a".into()))], a);
        s.create_rule("r3", vec![], other);
        (s, [get, put, default, geta, a, other, unused])
    }

    #[test]
    fn figure6_put_for_key_a() {
        // "a PUT request for key 'a' would be classified as belonging to
        //  three classes: …PUT, …DEFAULT, and …A."
        let (mut s, [_, put, default, _, a, _, _]) = memcached_stage();
        let meta = s.classify(&[
            ("msg_type", "PUT".into()),
            ("key", "a".into()),
            ("msg_size", 4096.into()),
        ]);
        assert_eq!(meta.classes, vec![put.0, default.0, a.0]);
        assert_eq!(meta.msg_size, 4096);
        assert!(meta.msg_start);
    }

    #[test]
    fn figure6_get_for_key_a_hits_geta() {
        let (mut s, [_, _, default, geta, _, _, _]) = memcached_stage();
        let meta = s.classify(&[("msg_type", "GET".into()), ("key", "a".into())]);
        assert!(meta.classes.contains(&geta.0));
        assert!(meta.classes.contains(&default.0));
    }

    #[test]
    fn first_match_wins_within_rule_set() {
        let (mut s, [get, _, _, _, _, other, _]) = memcached_stage();
        let meta = s.classify(&[("msg_type", "GET".into()), ("key", "zzz".into())]);
        assert!(meta.classes.contains(&get.0));
        assert!(meta.classes.contains(&other.0), "r3 falls through to OTHER");
    }

    #[test]
    fn message_ids_are_unique_and_monotonic() {
        let (mut s, _) = memcached_stage();
        let a = s.classify(&[("msg_type", "GET".into())]);
        let b = s.classify(&[("msg_type", "GET".into())]);
        assert!(b.msg_id > a.msg_id);
    }

    #[test]
    fn rule_removal() {
        let (mut s, [get, ..]) = memcached_stage();
        // find r1's GET rule id = 1 (first created)
        assert!(s.remove_rule("r1", 1));
        let meta = s.classify(&[("msg_type", "GET".into())]);
        assert!(!meta.classes.contains(&get.0), "GET rule removed");
        assert!(!s.remove_rule("r1", 999));
    }

    #[test]
    #[should_panic(expected = "cannot classify on")]
    fn unadvertised_classifier_rejected() {
        let mut s = Stage::new("http", &["url"], &["msg_id"]);
        s.create_rule("r1", vec![("tenant".into(), Matcher::Any)], ClassId(1));
    }

    #[test]
    fn prefix_matcher() {
        let mut s = Stage::new("http", &["url"], &["msg_id"]);
        let api = ClassId(9);
        s.create_rule(
            "r1",
            vec![("url".into(), Matcher::Prefix("/api/".into()))],
            api,
        );
        let m = s.classify(&[("url", "/api/users".into())]);
        assert_eq!(m.classes, vec![api.0]);
        let m = s.classify(&[("url", "/static/x.css".into())]);
        assert!(m.classes.is_empty());
    }

    #[test]
    fn tenant_and_key_metadata() {
        let mut s = Stage::new("storage", &["msg_type"], &["msg_id", "tenant"]);
        let m = s.classify(&[
            ("msg_type", 1.into()),
            ("tenant", 42.into()),
            ("key", "user:123".into()),
        ]);
        assert_eq!(m.tenant, 42);
        assert_eq!(m.msg_type, 1);
        assert!(m.key_hash > 0);
    }
}
