//! Enclave configuration operations — the unit of control-plane updates.
//!
//! The paper's controller programs enclaves through a narrow API (§3.4.5);
//! `eden-ctrl` carries that API over the wire as a sequence of
//! [`EnclaveOp`]s grouped into an *epoch*. An epoch is staged as a whole
//! ([`Enclave::stage_epoch`](crate::Enclave::stage_epoch)) — every op
//! validated and every shipped program decoded and re-verified up front —
//! and later committed atomically between packets
//! ([`Enclave::commit_epoch`](crate::Enclave::commit_epoch)), so the data
//! path never observes a rule table mixing configuration from two epochs.

use eden_lang::{Concurrency, Schema};

use crate::enclave::MatchSpec;

/// One enclave configuration operation, as carried by the control plane.
///
/// Indices (`table`, `func`, `rule`) refer to the enclave's configuration
/// *as of this op*, i.e. after all preceding ops in the same epoch have
/// applied. Controller updates are normally `Reset`-led full replacements,
/// which makes index assignment deterministic on both sides.
#[derive(Debug, Clone, PartialEq)]
pub enum EnclaveOp {
    /// Drop every table (recreating empty table 0), function, and all
    /// function state. The anchor of a full-replacement epoch.
    Reset,
    /// Append an empty match-action table.
    CreateTable,
    /// Remove all rules from table `table`.
    ClearTable { table: usize },
    /// Install a compiled function shipped as verified bytecode.
    InstallFunction {
        name: String,
        bytecode: Vec<u8>,
        schema: Schema,
        concurrency: Concurrency,
    },
    /// Append a rule to `table` (first match wins).
    InstallRule {
        table: usize,
        spec: MatchSpec,
        func: usize,
    },
    /// Remove rule `rule` (by position) from `table`; later rules shift
    /// down by one.
    RemoveRule { table: usize, rule: usize },
    /// Write one global scalar of function `func`.
    SetGlobal {
        func: usize,
        slot: usize,
        value: i64,
    },
    /// Replace global array `array` of function `func` with flattened
    /// `values`.
    SetArray {
        func: usize,
        array: usize,
        values: Vec<i64>,
    },
}

/// Why an epoch failed to stage. Reported back to the controller in a
/// `Nack`, which aborts the two-phase update cluster-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// `table` index out of range at that point in the op sequence.
    NoSuchTable { op: usize, table: usize },
    /// `func` index out of range at that point in the op sequence.
    NoSuchFunction { op: usize, func: usize },
    /// `rule` index out of range for its table.
    NoSuchRule { op: usize, rule: usize },
    /// Global scalar slot out of range for the function's schema.
    NoSuchSlot { op: usize, slot: usize },
    /// Global array id out of range for the function's schema.
    NoSuchArray { op: usize, array: usize },
    /// Shipped bytecode failed to decode or re-verify.
    BadBytecode { op: usize, reason: String },
    /// A delta epoch was anchored against a config digest this enclave
    /// does not currently have — the sender's picture of our config is
    /// stale, so applying the diff would corrupt it. The remedy is a
    /// full-table resync.
    DigestMismatch { have: u64, want: u64 },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::NoSuchTable { op, table } => {
                write!(f, "op {op}: no such table {table}")
            }
            ApplyError::NoSuchFunction { op, func } => {
                write!(f, "op {op}: no such function {func}")
            }
            ApplyError::NoSuchRule { op, rule } => write!(f, "op {op}: no such rule {rule}"),
            ApplyError::NoSuchSlot { op, slot } => {
                write!(f, "op {op}: global slot {slot} out of range")
            }
            ApplyError::NoSuchArray { op, array } => {
                write!(f, "op {op}: global array {array} out of range")
            }
            ApplyError::BadBytecode { op, reason } => {
                write!(f, "op {op}: bad bytecode: {reason}")
            }
            ApplyError::DigestMismatch { have, want } => {
                write!(f, "digest mismatch: have {have:#018x} want {want:#018x}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}
