//! Persistent worker threads for the enclave's parallel lanes.
//!
//! PR 2's batch path spawned a `crossbeam::scope` per batch: thread
//! creation plus teardown cost ~60–70 µs per batch, which is why 4-lane
//! batch-8 measured ~25× *worse* than serial. This pool spawns each lane
//! worker once (lazily, on the first parallel batch — fuzzers construct
//! millions of enclaves that never go parallel) and dispatches per-batch
//! work over the lock-free SPSC [`ring`](crate::ring)s, so steady-state
//! fan-out is two ring operations and an unpark per lane.
//!
//! [`LanePool::run`] is a *barrier*: lane 0 runs inline on the caller's
//! thread, lanes 1.. run on workers, and the call returns only after
//! every dispatched worker has reported completion (or re-raises a worker
//! panic). That barrier is the soundness argument for the lifetime
//! erasure below — the borrowed task data in `Job` cannot outlive `run`
//! because `run` does not return while any worker still holds a `Job`.

use crate::ring::{spsc, Consumer, Producer};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// A lifetime-erased unit of lane work. `slot` points at a `TaskSlot<T>`
/// on the coordinator's stack; `call` is the monomorphized trampoline
/// that knows `T` again.
struct Job {
    slot: *mut (),
    call: unsafe fn(*mut (), usize),
    lane: usize,
}

// SAFETY: a Job is produced from `&mut T` where `T: Send`, consumed by
// exactly one worker, and the coordinator blocks until the worker is done
// — so the pointee is valid for the Job's whole life and never aliased.
unsafe impl Send for Job {}

struct TaskSlot<T> {
    f: fn(usize, &mut T),
    task: *mut T,
}

unsafe fn trampoline<T>(slot: *mut (), lane: usize) {
    // SAFETY: `slot` was created from `&mut TaskSlot<T>` by `run`, which
    // keeps the slot vec alive (and unmoved) until the barrier completes.
    let slot = unsafe { &mut *slot.cast::<TaskSlot<T>>() };
    // SAFETY: `task` came from a distinct `&mut T`; only this worker
    // dereferences it while the job is outstanding.
    (slot.f)(lane, unsafe { &mut *slot.task });
}

enum Msg {
    Run(Job),
    Shutdown,
}

/// `Ok` or the payload of a worker panic, re-raised on the coordinator.
type Done = Result<(), Box<dyn Any + Send>>;

struct Worker {
    work: Producer<Msg>,
    done: Consumer<Done>,
    handle: std::thread::Thread,
    join: Option<JoinHandle<()>>,
}

impl Worker {
    fn spawn(index: usize) -> Worker {
        // capacity 2: at most one outstanding job plus a shutdown message
        let (work_tx, mut work_rx) = spsc::<Msg>(2);
        let (mut done_tx, done_rx) = spsc::<Done>(2);
        let join = std::thread::Builder::new()
            .name(format!("eden-lane-{}", index + 1))
            .spawn(move || {
                // spin briefly between batches (lanes are latency-bound),
                // then park until the coordinator pushes and unparks
                let mut idle = 0u32;
                loop {
                    match work_rx.pop() {
                        Some(Msg::Run(job)) => {
                            idle = 0;
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                // SAFETY: see `Job` — pointee valid until
                                // the coordinator's barrier releases.
                                unsafe { (job.call)(job.slot, job.lane) }
                            }));
                            // capacity can't be exceeded: one done per job
                            let _ = done_tx.push(result);
                        }
                        Some(Msg::Shutdown) => break,
                        None => {
                            // Spin only briefly, then yield before parking:
                            // on a single-core host an idle worker spinning
                            // through its timeslice starves the coordinator
                            // (and sibling lanes) it is waiting on.
                            idle += 1;
                            if idle < 64 {
                                std::hint::spin_loop();
                            } else if idle < 128 {
                                std::thread::yield_now();
                            } else {
                                std::thread::park();
                            }
                        }
                    }
                }
            })
            .expect("spawn lane worker");
        Worker {
            work: work_tx,
            done: done_rx,
            handle: join.thread().clone(),
            join: Some(join),
        }
    }

    fn send(&mut self, msg: Msg) {
        let pushed = self.work.push(msg).is_ok();
        debug_assert!(pushed, "lane work ring overflow (protocol violation)");
        self.handle.unpark();
    }

    fn wait_done(&mut self) -> Done {
        // Short spin for the multicore fast path, then yield: the worker
        // may need this very core to produce the result we are polling
        // for, and yield_now is near-free when nothing else is runnable.
        let mut idle = 0u32;
        loop {
            if let Some(done) = self.done.pop() {
                return done;
            }
            idle += 1;
            if idle < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A pool of persistent lane workers with a fork-join `run` entry point.
pub struct LanePool {
    workers: Vec<Worker>,
}

impl Default for LanePool {
    fn default() -> LanePool {
        LanePool::new()
    }
}

impl LanePool {
    /// An empty pool; workers spawn lazily on first use.
    pub fn new() -> LanePool {
        LanePool {
            workers: Vec::new(),
        }
    }

    /// Number of workers currently spawned (test/telemetry hook).
    pub fn spawned(&self) -> usize {
        self.workers.len()
    }

    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let index = self.workers.len();
            self.workers.push(Worker::spawn(index));
        }
    }

    /// Run `f(lane, &mut tasks[lane])` for every task: lane 0 inline on
    /// this thread, the rest on pool workers. Blocks until all lanes
    /// finish; a worker panic is re-raised here after the barrier (so
    /// borrows never escape).
    pub fn run<T: Send>(&mut self, tasks: &mut [T], f: fn(usize, &mut T)) {
        let lanes = tasks.len();
        if lanes == 0 {
            return;
        }
        self.ensure_workers(lanes - 1);
        let (lane0, rest) = tasks.split_first_mut().expect("lanes >= 1");
        // slots must not move while workers hold pointers into them:
        // sized exactly, never pushed afterwards
        let mut slots: Vec<TaskSlot<T>> = rest
            .iter_mut()
            .map(|task| TaskSlot {
                f,
                task: task as *mut T,
            })
            .collect();
        for (i, (worker, slot)) in self.workers.iter_mut().zip(slots.iter_mut()).enumerate() {
            worker.send(Msg::Run(Job {
                slot: (slot as *mut TaskSlot<T>).cast(),
                call: trampoline::<T>,
                lane: i + 1,
            }));
        }
        let inline = catch_unwind(AssertUnwindSafe(|| f(0, lane0)));
        // barrier: wait for EVERY dispatched worker even if one (or the
        // inline lane) panicked — otherwise task borrows would escape
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for worker in self.workers.iter_mut().take(lanes - 1) {
            if let Err(payload) = worker.wait_done() {
                panic = Some(payload);
            }
        }
        if let Err(payload) = inline {
            panic = Some(payload);
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.send(Msg::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl std::fmt::Debug for LanePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LanePool")
            .field("spawned", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_lane_once() {
        let mut pool = LanePool::new();
        assert_eq!(pool.spawned(), 0, "lazy spawn");
        let mut tasks: Vec<(usize, u64)> = (0..4).map(|i| (i, 0u64)).collect();
        pool.run(&mut tasks, |lane, t| {
            assert_eq!(lane, t.0, "lane index matches task slot");
            t.1 = 100 + lane as u64;
        });
        assert_eq!(pool.spawned(), 3, "coordinator runs lane 0 inline");
        let got: Vec<u64> = tasks.iter().map(|t| t.1).collect();
        assert_eq!(got, vec![100, 101, 102, 103]);
    }

    #[test]
    fn reuses_workers_across_batches() {
        let mut pool = LanePool::new();
        let mut acc = vec![0u64; 3];
        for round in 0..100u64 {
            let mut tasks: Vec<(u64, &mut u64)> =
                acc.iter_mut().map(|slot| (round, slot)).collect();
            pool.run(&mut tasks, |_, t| *t.1 += t.0);
        }
        assert_eq!(pool.spawned(), 2);
        let want: u64 = (0..100).sum();
        assert_eq!(acc, vec![want; 3]);
    }

    #[test]
    fn shrinking_and_growing_lane_counts() {
        let mut pool = LanePool::new();
        for lanes in [4usize, 1, 2, 8, 3] {
            let mut tasks = vec![0u32; lanes];
            pool.run(&mut tasks, |lane, t| *t = lane as u32 + 1);
            let want: Vec<u32> = (1..=lanes as u32).collect();
            assert_eq!(tasks, want);
        }
        assert_eq!(pool.spawned(), 7);
    }

    #[test]
    fn worker_panic_propagates_after_barrier() {
        let mut pool = LanePool::new();
        let mut tasks = vec![0u8; 4];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&mut tasks, |lane, _| {
                if lane == 2 {
                    panic!("lane 2 exploded");
                }
            });
        }));
        assert!(result.is_err(), "panic reaches the coordinator");
        // the pool is still usable afterwards
        pool.run(&mut tasks, |lane, t| *t = lane as u8);
        assert_eq!(tasks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let mut pool = LanePool::new();
        let mut tasks: Vec<u8> = Vec::new();
        pool.run(&mut tasks, |_, _| unreachable!());
        assert_eq!(pool.spawned(), 0);
    }
}
