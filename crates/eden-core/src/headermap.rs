//! HeaderMap bindings: schema fields ↔ packet headers/metadata.
//!
//! Figure 8 of the paper annotates state variables with
//! `HeaderMap("IPv4", "TotalLength")` etc.; the compiler resolves variables
//! to slots and the *enclave* maps slots onto real header fields at
//! invocation time. This module is that mapping for the simulator's
//! [`Packet`]. The `wire` round-trip tests in `eden-core/tests` show the
//! written values land at the correct bit positions of encoded frames.

use eden_lang::HeaderField;
use netsim::{L4Header, Packet};

/// Read `field` from `packet` as the i64 the VM sees.
pub fn read_header_field(packet: &Packet, field: HeaderField) -> i64 {
    match field {
        HeaderField::Ipv4TotalLength => i64::from(packet.ip.total_length),
        HeaderField::Ipv4Src => i64::from(packet.ip.src),
        HeaderField::Ipv4Dst => i64::from(packet.ip.dst),
        HeaderField::Ipv4Protocol => i64::from(packet.ip.protocol),
        HeaderField::Ipv4Dscp => i64::from(packet.ip.dscp),
        HeaderField::SrcPort => match &packet.l4 {
            L4Header::Tcp(t) => i64::from(t.src_port),
            L4Header::Udp(u) => i64::from(u.src_port),
        },
        HeaderField::DstPort => match &packet.l4 {
            L4Header::Tcp(t) => i64::from(t.dst_port),
            L4Header::Udp(u) => i64::from(u.dst_port),
        },
        HeaderField::TcpSeq => match &packet.l4 {
            L4Header::Tcp(t) => i64::from(t.seq),
            L4Header::Udp(_) => 0,
        },
        HeaderField::Dot1qPcp => i64::from(packet.priority()),
        HeaderField::Dot1qVid => i64::from(packet.route_label()),
        HeaderField::MetaMsgId => packet
            .meta
            .as_ref()
            .map(|m| (m.msg_id & (i64::MAX as u64)) as i64)
            .unwrap_or(0),
        HeaderField::MetaMsgType => packet.meta.as_ref().map(|m| m.msg_type).unwrap_or(0),
        HeaderField::MetaMsgSize => packet.meta.as_ref().map(|m| m.msg_size).unwrap_or(0),
        HeaderField::MetaTenant => packet.meta.as_ref().map(|m| m.tenant).unwrap_or(0),
        HeaderField::MetaKeyHash => packet.meta.as_ref().map(|m| m.key_hash).unwrap_or(0),
        HeaderField::MetaMsgStart => packet
            .meta
            .as_ref()
            .map(|m| i64::from(m.msg_start))
            .unwrap_or(0),
        // Direction is runtime-supplied; the enclave's invocation host
        // overrides this before the lookup ever reaches here.
        HeaderField::Direction => 0,
    }
}

/// Write `value` into `field` of `packet`. Out-of-range values are masked
/// to the field's width (as hardware would). Writes to stage metadata
/// update the host-local sidecar (creating it if absent).
pub fn write_header_field(packet: &mut Packet, field: HeaderField, value: i64) {
    match field {
        HeaderField::Ipv4TotalLength => {
            packet.ip.total_length = (value as u64 & 0xFFFF) as u16;
        }
        HeaderField::Ipv4Src => packet.ip.src = value as u32,
        HeaderField::Ipv4Dst => packet.ip.dst = value as u32,
        HeaderField::Ipv4Protocol => packet.ip.protocol = value as u8,
        HeaderField::Ipv4Dscp => packet.ip.dscp = (value & 0x3F) as u8,
        HeaderField::SrcPort => match &mut packet.l4 {
            L4Header::Tcp(t) => t.src_port = value as u16,
            L4Header::Udp(u) => u.src_port = value as u16,
        },
        HeaderField::DstPort => match &mut packet.l4 {
            L4Header::Tcp(t) => t.dst_port = value as u16,
            L4Header::Udp(u) => u.dst_port = value as u16,
        },
        HeaderField::TcpSeq => {
            if let L4Header::Tcp(t) = &mut packet.l4 {
                t.seq = value as u32;
            }
        }
        HeaderField::Dot1qPcp => packet.set_priority((value & 7) as u8),
        HeaderField::Dot1qVid => packet.set_route_label((value & 0xFFF) as u16),
        HeaderField::MetaMsgId => meta_mut(packet).msg_id = value as u64,
        HeaderField::MetaMsgType => meta_mut(packet).msg_type = value,
        HeaderField::MetaMsgSize => meta_mut(packet).msg_size = value,
        HeaderField::MetaTenant => meta_mut(packet).tenant = value,
        HeaderField::MetaKeyHash => meta_mut(packet).key_hash = value,
        HeaderField::MetaMsgStart => meta_mut(packet).msg_start = value != 0,
        HeaderField::Direction => {} // runtime pseudo-field, not packet data
    }
}

fn meta_mut(packet: &mut Packet) -> &mut netsim::EdenMeta {
    packet.meta.get_or_insert_with(Default::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TcpHeader;

    fn pkt() -> Packet {
        Packet::tcp(
            10,
            20,
            TcpHeader {
                src_port: 1000,
                dst_port: 2000,
                seq: 7,
                ..Default::default()
            },
            100,
        )
    }

    #[test]
    fn reads_match_struct_fields() {
        let p = pkt();
        assert_eq!(read_header_field(&p, HeaderField::Ipv4TotalLength), 140);
        assert_eq!(read_header_field(&p, HeaderField::Ipv4Src), 10);
        assert_eq!(read_header_field(&p, HeaderField::SrcPort), 1000);
        assert_eq!(read_header_field(&p, HeaderField::DstPort), 2000);
        assert_eq!(read_header_field(&p, HeaderField::TcpSeq), 7);
        assert_eq!(read_header_field(&p, HeaderField::Dot1qPcp), 0);
    }

    #[test]
    fn pcp_write_masks_to_three_bits() {
        let mut p = pkt();
        write_header_field(&mut p, HeaderField::Dot1qPcp, 13); // 0b1101 → 5
        assert_eq!(p.priority(), 5);
    }

    #[test]
    fn vid_write_masks_to_twelve_bits() {
        let mut p = pkt();
        write_header_field(&mut p, HeaderField::Dot1qVid, 0x1FFF);
        assert_eq!(p.route_label(), 0xFFF);
    }

    #[test]
    fn meta_fields_default_zero_and_autocreate() {
        let mut p = pkt();
        assert_eq!(read_header_field(&p, HeaderField::MetaMsgSize), 0);
        write_header_field(&mut p, HeaderField::MetaMsgSize, 4096);
        assert_eq!(read_header_field(&p, HeaderField::MetaMsgSize), 4096);
        assert!(p.meta.is_some());
    }

    #[test]
    fn round_trip_through_wire_encoding() {
        // A priority written through the HeaderMap must land in the top
        // three TCI bits of the actual encoded frame.
        let mut p = pkt();
        write_header_field(&mut p, HeaderField::Dot1qPcp, 6);
        write_header_field(&mut p, HeaderField::Dot1qVid, 0x0AB);
        let bytes = netsim::wire::encode(&p);
        let decoded = netsim::wire::decode(&bytes).unwrap();
        assert_eq!(read_header_field(&decoded, HeaderField::Dot1qPcp), 6);
        assert_eq!(read_header_field(&decoded, HeaderField::Dot1qVid), 0x0AB);
    }
}
