//! Property tests for the SPSC ring (`eden_core::ring`).
//!
//! The unit tests in `ring.rs` pin specific scenarios; these drive the
//! ring through arbitrary operation sequences against a `VecDeque` model
//! (full/empty transitions, wraparound far past the slot count) and
//! through cross-thread producer/consumer races at arbitrary capacities,
//! where strict FIFO order must survive the cache-counter fast paths.

use eden_core::ring::spsc;
use proptest::prelude::*;
use std::collections::VecDeque;

/// One step of a single-threaded ring workout.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![any::<u64>().prop_map(Op::Push), Just(Op::Pop)],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary push/pop interleavings agree with a bounded `VecDeque`
    /// model: same accept/refuse decisions, same popped values, same
    /// occupancy — including rings so small every operation wraps.
    #[test]
    fn matches_vecdeque_model(cap in 1usize..9, ops in ops()) {
        let (mut tx, mut rx) = spsc::<u64>(cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let accepted = tx.push(v).is_ok();
                    prop_assert_eq!(
                        accepted,
                        model.len() < cap,
                        "push accepted iff below logical capacity"
                    );
                    if accepted {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(tx.len(), model.len());
            prop_assert_eq!(rx.len(), model.len());
            prop_assert_eq!(tx.is_full(), model.len() >= cap);
            prop_assert_eq!(rx.is_empty(), model.is_empty());
        }
        // drain whatever the workout left behind, still in FIFO order
        while let Some(v) = rx.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// Occupancy counters wrap correctly long after the free-running
    /// positions lap the slot array many times over.
    #[test]
    fn wraparound_preserves_fifo(cap in 1usize..5, rounds in 1usize..50) {
        let (mut tx, mut rx) = spsc::<usize>(cap);
        let mut next_in = 0usize;
        let mut next_out = 0usize;
        for _ in 0..rounds {
            // fill to capacity, then drain completely: each round laps
            // the slot array at least once
            while tx.push(next_in).is_ok() {
                next_in += 1;
            }
            prop_assert!(tx.is_full());
            while let Some(v) = rx.pop() {
                prop_assert_eq!(v, next_out);
                next_out += 1;
            }
            prop_assert!(rx.is_empty());
        }
        prop_assert_eq!(next_in, next_out, "every push was popped");
        prop_assert_eq!(next_in, cap * rounds);
    }
}

proptest! {
    // thread spawns per case are comparatively expensive; fewer cases,
    // each covering thousands of handoffs
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A producer thread races a consumer thread over a ring of arbitrary
    /// (small) capacity: every value arrives exactly once, in order, no
    /// matter how the full/empty retries interleave.
    #[test]
    fn cross_thread_drain_is_fifo(cap in 1usize..17, n in 1u64..3000) {
        let (mut tx, mut rx) = spsc::<u64>(cap);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut next = 0u64;
            while next < n {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, next, "strict FIFO across threads");
                        next += 1;
                    }
                    None => std::hint::spin_loop(),
                }
            }
            assert!(rx.pop().is_none(), "nothing left after the last value");
        });
    }
}
