//! The paper's concurrency model (§3.4.4) under real threads.
//!
//! The compiler derives, from the state annotations, how many invocations
//! of a function may overlap:
//!
//! * **parallel** (read-only message & global state) — any number at once;
//! * **per-message** — one packet per message at a time;
//! * **serialized** (global writes) — one invocation at a time.
//!
//! The single-threaded simulator only records the level; this test
//! demonstrates the discipline is *sufficient* on real threads: programs
//! run under their declared level produce the same results as sequential
//! execution, with `parking_lot` locks standing in for the enclave's
//! authoritative-state synchronization.

use std::sync::Arc;

use eden_apps::functions;
use eden_lang::{compile, Concurrency};
use eden_vm::{Host, Interpreter, Limits, VecHost, VmError};
use parking_lot::Mutex;

/// A host whose global scalars live behind a shared lock (the enclave's
/// authoritative copy), while packet/message state is invocation-local.
struct SharedGlobalHost {
    local: VecHost,
    global: Arc<Mutex<Vec<i64>>>,
}

impl Host for SharedGlobalHost {
    fn load_pkt(&mut self, s: u8) -> Result<i64, VmError> {
        self.local.load_pkt(s)
    }
    fn store_pkt(&mut self, s: u8, v: i64) -> Result<(), VmError> {
        self.local.store_pkt(s, v)
    }
    fn load_msg(&mut self, s: u8) -> Result<i64, VmError> {
        self.local.load_msg(s)
    }
    fn store_msg(&mut self, s: u8, v: i64) -> Result<(), VmError> {
        self.local.store_msg(s, v)
    }
    fn load_glob(&mut self, slot: u8) -> Result<i64, VmError> {
        self.global
            .lock()
            .get(slot as usize)
            .copied()
            .ok_or(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Global,
                slot,
            })
    }
    fn store_glob(&mut self, slot: u8, v: i64) -> Result<(), VmError> {
        match self.global.lock().get_mut(slot as usize) {
            Some(g) => {
                *g = v;
                Ok(())
            }
            None => Err(VmError::BadStateSlot {
                scope: eden_vm::StateScope::Global,
                slot,
            }),
        }
    }
    fn arr_load(&mut self, a: u8, i: i64) -> Result<i64, VmError> {
        self.local.arr_load(a, i)
    }
    fn arr_store(&mut self, a: u8, i: i64, v: i64) -> Result<(), VmError> {
        self.local.arr_store(a, i, v)
    }
    fn arr_len(&mut self, a: u8) -> Result<i64, VmError> {
        self.local.arr_len(a)
    }
    fn rand64(&mut self) -> i64 {
        self.local.rand64()
    }
    fn now_ns(&mut self) -> i64 {
        self.local.now_ns()
    }
    fn effect(&mut self, e: eden_vm::Effect) -> Result<(), VmError> {
        self.local.effect(e)
    }
}

#[test]
fn parallel_functions_run_concurrently_without_coordination() {
    // SFF is `Parallel`: read-only global array, writes only packet state.
    let bundle = functions::sff();
    let compiled = compile("sff", &bundle.source, &bundle.schema()).unwrap();
    assert_eq!(compiled.concurrency, Concurrency::Parallel);
    let program = Arc::new(compiled.program);

    let threads = 8;
    let per_thread = 5_000u64;
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let program = Arc::clone(&program);
            scope.spawn(move |_| {
                let mut interp = Interpreter::new(Limits::default());
                let mut host = VecHost::with_slots(2, 0, 0);
                host.arrays
                    .push(vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
                for i in 0..per_thread {
                    host.packet[0] = ((t * 131 + i as usize * 977) % 2_000_000) as i64;
                    interp.run(&program, &mut host).expect("no traps");
                    let expect = match host.packet[0] {
                        s if s <= 10 * 1024 => 7,
                        s if s <= 1024 * 1024 => 5,
                        _ => 1,
                    };
                    assert_eq!(host.packet[1], expect);
                }
            });
        }
    })
    .expect("threads join");
}

#[test]
fn serialized_function_is_correct_under_the_global_lock() {
    // flow-counter is `Serialized` (writes global state); run it from many
    // threads with the authoritative global behind a lock — the paper's
    // "only one parallel invocation" discipline, here made safe by mutual
    // exclusion around whole invocations.
    let bundle = functions::flow_counter();
    let compiled = compile("ctr", &bundle.source, &bundle.schema()).unwrap();
    assert_eq!(compiled.concurrency, Concurrency::Serialized);
    let program = Arc::new(compiled.program);
    let global = Arc::new(Mutex::new(vec![0i64; 2]));
    let invocation_lock = Arc::new(Mutex::new(()));

    let threads = 8;
    let per_thread = 2_000u64;
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let program = Arc::clone(&program);
            let global = Arc::clone(&global);
            let invocation_lock = Arc::clone(&invocation_lock);
            scope.spawn(move |_| {
                let mut interp = Interpreter::new(Limits::default());
                for _ in 0..per_thread {
                    let _serialized = invocation_lock.lock();
                    let mut host = SharedGlobalHost {
                        local: VecHost::with_slots(1, 2, 0),
                        global: Arc::clone(&global),
                    };
                    host.local.packet[0] = 100;
                    interp.run(&program, &mut host).expect("no traps");
                }
            });
        }
    })
    .expect("threads join");

    let g = global.lock();
    assert_eq!(g[0], threads as i64 * per_thread as i64 * 100, "TotalBytes");
    assert_eq!(g[1], threads as i64 * per_thread as i64, "TotalPackets");
}
