//! Full-pipeline integration: controller programs a stage and an enclave;
//! an application classifies messages; the enclave's interpreted action
//! function sets packet priorities that take effect at the simulated
//! switch.

use eden_core::{
    Controller, Enclave, EnclaveConfig, FiveTupleMatch, InstalledFunction, MatchSpec, Matcher,
    NativeEnv, Stage, TableId,
};
use eden_lang::{Access, Concurrency, HeaderField, Schema};
use eden_vm::Outcome;
use netsim::{EdenMeta, Packet, SimRng, TcpHeader, Time};
use transport::HookVerdict;

fn pias_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .msg_field("Size", Access::ReadWrite)
        .msg_field("Priority", Access::ReadOnly)
        .global_array(
            "Priorities",
            &["MessageSizeLimit", "Priority"],
            Access::ReadOnly,
        )
}

const PIAS_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let msg_size = msg.Size + packet.Size
    msg.Size <- msg_size
    let priorities = _global.Priorities
    let rec search index =
        if index >= priorities.Length then 0
        elif msg_size <= priorities.[index].MessageSizeLimit then
            priorities.[index].Priority
        else search (index + 1)
    packet.Priority <-
        let desired = msg.Priority
        if desired < 1 then desired
        else search (0)
"#;

fn tagged_packet(msg_id: u64, classes: Vec<u32>, payload: usize) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 1234,
            dst_port: 80,
            ..Default::default()
        },
        payload,
    );
    p.meta = Some(EdenMeta {
        classes,
        msg_id,
        ..Default::default()
    });
    p
}

/// Rule removal reports success, and callers must check it: a removed
/// rule stops classifying, a bogus id returns `false` (with a stderr
/// warning) and changes nothing.
#[test]
fn remove_stage_rule_result_reflects_what_happened() {
    let mut controller = Controller::new();
    let mut stage = Stage::new("memcached", &["msg_type", "key"], &["msg_id", "msg_size"]);
    let rule = controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact("GET".into()))],
        "GET",
    );
    let get_class = controller.class("memcached.r1.GET");

    let meta = stage.classify(&[("msg_type", "GET".into()), ("msg_size", 100.into())]);
    assert_eq!(
        meta.classes,
        vec![get_class.0],
        "rule classifies while live"
    );

    assert!(
        controller.remove_stage_rule(&mut stage, "r1", rule),
        "existing rule removes"
    );
    let meta = stage.classify(&[("msg_type", "GET".into()), ("msg_size", 100.into())]);
    assert!(meta.classes.is_empty(), "removed rule no longer classifies");

    assert!(
        !controller.remove_stage_rule(&mut stage, "r1", rule),
        "double removal reports false"
    );
    assert!(
        !controller.remove_stage_rule(&mut stage, "nope", rule),
        "unknown rule set reports false"
    );
}

#[test]
fn stage_to_enclave_pias_pipeline() {
    let mut controller = Controller::new();

    // --- stage side: memcached classifies GETs and PUTs -----------------
    let mut stage = Stage::new("memcached", &["msg_type", "key"], &["msg_id", "msg_size"]);
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact("GET".into()))],
        "GET",
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact("PUT".into()))],
        "PUT",
    );
    let get_class = controller.class("memcached.r1.GET");

    // --- enclave side: PIAS on GET traffic -------------------------------
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let schema = pias_schema();
    let pias = controller
        .install_program(&mut enclave, "pias", PIAS_SRC, &schema)
        .expect("compiles");
    enclave.install_rule(TableId(0), MatchSpec::Class(get_class), pias);
    enclave.set_array(
        pias,
        0,
        Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
    );

    // message priority desire defaults to 0 (respected directly): make the
    // msg state's Priority field 1 via... it defaults to 0, so desired=0 is
    // respected and priority stays 0. Instead set desired >= 1 by writing
    // msg state before: simpler — check desired<1 path first.
    let mut rng = SimRng::new(1);

    // classify a GET message through the stage
    let meta = stage.classify(&[("msg_type", "GET".into()), ("msg_size", 2048.into())]);
    assert_eq!(meta.classes, vec![get_class.0]);

    // run its packets through the enclave: desired priority is 0 at first
    // (msg.Priority state defaults to 0 → respected → pcp 0)
    let mut p = tagged_packet(meta.msg_id, meta.classes.clone(), 1000);
    let verdict = enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(verdict, HookVerdict::Pass);
    assert_eq!(p.priority(), 0, "desired<1 is respected");

    assert_eq!(enclave.stats.packets, 1);
    assert_eq!(enclave.stats.matched, 1);
}

/// Helper: make an enclave with PIAS installed where msg.Priority defaults
/// are not consulted (desired set to 7 via a native setup function is
/// overkill — instead use a variant program without the desired check).
const PIAS_NO_DESIRE: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let msg_size = msg.Size + packet.Size
    msg.Size <- msg_size
    let priorities = _global.Priorities
    let rec search index =
        if index >= priorities.Length then 0
        elif msg_size <= priorities.[index].MessageSizeLimit then
            priorities.[index].Priority
        else search (index + 1)
    packet.Priority <- search (0)
"#;

#[test]
fn pias_demotes_growing_messages() {
    let mut controller = Controller::new();
    let c = controller.class("app.r1.FLOW");
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = controller
        .install_program(&mut enclave, "pias", PIAS_NO_DESIRE, &pias_schema())
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);
    enclave.set_array(
        f,
        0,
        Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
    );

    let mut rng = SimRng::new(1);
    let mut priorities_seen = Vec::new();
    // 1000 packets of 1460B: crosses 10KB after 8 packets, 1MB after ~719
    for _ in 0..1000 {
        let mut p = tagged_packet(42, vec![c.0], 1460);
        enclave.process(&mut p, &mut rng, Time::ZERO);
        priorities_seen.push(p.priority());
    }
    assert_eq!(priorities_seen[0], 7, "starts at highest priority");
    assert_eq!(priorities_seen[20], 5, "demoted past 10KB");
    assert_eq!(priorities_seen[999], 1, "background priority past 1MB");
    // never promoted back
    let mut last = 7;
    for &p in &priorities_seen {
        assert!(p <= last, "priorities only demote");
        last = p;
    }
}

#[test]
fn per_message_state_is_isolated() {
    let mut controller = Controller::new();
    let c = controller.class("app.r1.FLOW");
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = controller
        .install_program(&mut enclave, "pias", PIAS_NO_DESIRE, &pias_schema())
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);
    enclave.set_array(
        f,
        0,
        Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
    );
    let mut rng = SimRng::new(1);

    // grow message 1 past the first threshold
    for _ in 0..20 {
        let mut p = tagged_packet(1, vec![c.0], 1460);
        enclave.process(&mut p, &mut rng, Time::ZERO);
    }
    // message 2 still starts fresh
    let mut p = tagged_packet(2, vec![c.0], 1460);
    enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(p.priority(), 7, "new message unaffected by message 1");
    assert_eq!(enclave.function_state(f).live_messages(), 2);
}

#[test]
fn native_and_interpreted_agree() {
    // The same PIAS logic as a native closure must produce identical
    // priorities — the premise of the paper's native/Eden comparison.
    let mut controller = Controller::new();
    let c = controller.class("app.r1.FLOW");
    let schema = pias_schema();

    let build_interp = |controller: &Controller| {
        let mut e = Enclave::new(EnclaveConfig::default());
        let f = controller
            .install_program(&mut e, "pias", PIAS_NO_DESIRE, &pias_schema())
            .unwrap();
        e.install_rule(TableId(0), MatchSpec::Class(c), f);
        e.set_array(
            f,
            0,
            Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
        );
        e
    };

    // slots per schema: pkt 0=Size 1=Priority; msg 0=Size; arrays 0=Priorities
    let native = move |env: &mut NativeEnv<'_>| -> Result<Outcome, eden_vm::VmError> {
        let msg_size = env.msg(0)? + env.pkt(0)?;
        env.set_msg(0, msg_size)?;
        let n = env.arr_len(0)? / 2;
        let mut prio = 0;
        for i in 0..n {
            if msg_size <= env.arr(0, i * 2)? {
                prio = env.arr(0, i * 2 + 1)?;
                break;
            }
        }
        env.set_pkt(1, prio)?;
        Ok(Outcome::Done)
    };
    let mut native_enclave = Enclave::new(EnclaveConfig::default());
    let nf = native_enclave.install_function(InstalledFunction::native(
        "pias-native",
        Box::new(native),
        schema.clone(),
        Concurrency::PerMessage,
    ));
    native_enclave.install_rule(TableId(0), MatchSpec::Class(c), nf);
    native_enclave.set_array(
        nf,
        0,
        Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
    );

    let mut interp_enclave = build_interp(&controller);
    let mut rng1 = SimRng::new(1);
    let mut rng2 = SimRng::new(1);
    for i in 0..2000 {
        let mut a = tagged_packet(i % 7, vec![c.0], 1460);
        let mut b = a.clone();
        interp_enclave.process(&mut a, &mut rng1, Time::ZERO);
        native_enclave.process(&mut b, &mut rng2, Time::ZERO);
        assert_eq!(a.priority(), b.priority(), "packet {i}");
    }
    assert_eq!(interp_enclave.stats.faults, 0);
    assert_eq!(native_enclave.stats.faults, 0);
}

#[test]
fn flow_rules_classify_unmodified_traffic() {
    // Enclave-level classification (Table 2's last row): packets with no
    // stage metadata still match via five-tuple rules, and the flow is the
    // message.
    let mut controller = Controller::new();
    let c = controller.class("enclave.flows.WEB");
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = controller
        .install_program(&mut enclave, "pias", PIAS_NO_DESIRE, &pias_schema())
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);
    enclave.set_array(
        f,
        0,
        Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1])),
    );
    enclave.add_flow_rule(
        FiveTupleMatch {
            dst_port: Some(80),
            ..Default::default()
        },
        c,
    );

    let mut rng = SimRng::new(1);
    // packets of one TCP flow, no meta at all
    let mut last_prio = 7;
    for i in 0..30 {
        let mut p = Packet::tcp(
            9,
            8,
            TcpHeader {
                src_port: 5555,
                dst_port: 80,
                ..Default::default()
            },
            1460,
        );
        let v = enclave.process(&mut p, &mut rng, Time::ZERO);
        assert_eq!(v, HookVerdict::Pass);
        if i == 0 {
            assert_eq!(p.priority(), 7);
        }
        last_prio = p.priority();
    }
    assert_eq!(last_prio, 5, "flow crossed 10KB and was demoted");

    // different flow → different message → fresh priority
    let mut p = Packet::tcp(
        9,
        8,
        TcpHeader {
            src_port: 6666,
            dst_port: 80,
            ..Default::default()
        },
        1460,
    );
    enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(p.priority(), 7);

    // non-matching port → no rule → untouched
    let mut p = Packet::tcp(
        9,
        8,
        TcpHeader {
            src_port: 6666,
            dst_port: 443,
            ..Default::default()
        },
        1460,
    );
    enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(p.priority(), 0);
}

#[test]
fn faulting_function_fails_open_and_isolates() {
    // A function that divides by zero must not affect forwarding.
    let mut controller = Controller::new();
    let c = controller.class("x.r.ALL");
    let schema =
        Schema::new().packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength));
    let src = "fun (p, m, g) -> p.Size / (p.Size - p.Size) // div by zero\n";
    // note: expression result is discarded; the div traps at runtime
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = controller
        .install_program(&mut enclave, "broken", src, &schema)
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);

    let mut rng = SimRng::new(1);
    let mut p = tagged_packet(1, vec![c.0], 100);
    let v = enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(v, HookVerdict::Pass, "fail-open forwards");
    assert_eq!(enclave.stats.faults, 1);
    assert_eq!(enclave.function(f).faults, 1);

    // fail-closed configuration drops instead
    let mut enclave = Enclave::new(EnclaveConfig {
        fail_open: false,
        ..Default::default()
    });
    let f = controller
        .install_program(&mut enclave, "broken", src, &schema)
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);
    let mut p = tagged_packet(1, vec![c.0], 100);
    let v = enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(v, HookVerdict::Drop);
}

#[test]
fn goto_table_chains_functions() {
    // table 0: tag priority 3 then goto table 1; table 1: bump route label.
    let mut controller = Controller::new();
    let c = controller.class("x.r.ALL");
    let schema = Schema::new()
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .packet_field("Label", Access::ReadWrite, Some(HeaderField::Dot1qVid));
    let first = "fun (p, m, g) ->\n    p.Priority <- 3\n    gotoTable (1)\n";
    let second = "fun (p, m, g) -> p.Label <- 77";

    let mut enclave = Enclave::new(EnclaveConfig::default());
    let t1 = enclave.create_table();
    let f1 = controller
        .install_program(&mut enclave, "first", first, &schema)
        .unwrap();
    let f2 = controller
        .install_program(&mut enclave, "second", second, &schema)
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f1);
    enclave.install_rule(t1, MatchSpec::Any, f2);

    let mut rng = SimRng::new(1);
    let mut p = tagged_packet(1, vec![c.0], 100);
    enclave.process(&mut p, &mut rng, Time::ZERO);
    assert_eq!(p.priority(), 3);
    assert_eq!(p.route_label(), 77);
}

#[test]
fn drop_verdict_from_dsl() {
    let mut controller = Controller::new();
    let c = controller.class("fw.r.BLOCKED");
    let schema = Schema::new();
    let src = "fun (p, m, g) -> drop ()";
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = controller
        .install_program(&mut enclave, "fw", src, &schema)
        .unwrap();
    enclave.install_rule(TableId(0), MatchSpec::Class(c), f);

    let mut rng = SimRng::new(1);
    let mut p = tagged_packet(1, vec![c.0], 100);
    assert_eq!(
        enclave.process(&mut p, &mut rng, Time::ZERO),
        HookVerdict::Drop
    );
    assert_eq!(enclave.stats.dropped, 1);

    // unmatched packets pass
    let mut p = tagged_packet(1, vec![999], 100);
    assert_eq!(
        enclave.process(&mut p, &mut rng, Time::ZERO),
        HookVerdict::Pass
    );
}
