//! Ingress processing + direction-canonical flow state: a stateful
//! firewall (connection tracking) built from one action function.

use eden_apps::functions;
use eden_core::{
    ClassId, Enclave, EnclaveConfig, FiveTupleMatch, FlowDirection, MatchSpec, TableId,
};
use netsim::{Packet, SimRng, TcpHeader, Time};
use transport::HookVerdict;

fn build() -> Enclave {
    let bundle = functions::conntrack();
    let mut e = Enclave::new(EnclaveConfig {
        process_ingress: true,
        ..Default::default()
    });
    let f = e.install_function(bundle.interpreted());
    // classify ALL tcp traffic at the enclave (no app changes)
    e.add_flow_rule(
        FiveTupleMatch {
            proto: Some(6),
            ..Default::default()
        },
        ClassId(1),
    );
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    e
}

fn pkt(src: u32, sp: u16, dst: u32, dp: u16) -> Packet {
    Packet::tcp(
        src,
        dst,
        TcpHeader {
            src_port: sp,
            dst_port: dp,
            ..Default::default()
        },
        100,
    )
}

#[test]
fn outbound_flows_admit_their_return_traffic() {
    let mut e = build();
    let mut rng = SimRng::new(1);

    // outbound: us(10):5000 → them(20):80
    let mut out = pkt(10, 5000, 20, 80);
    assert_eq!(
        e.process_dir(&mut out, &mut rng, Time::ZERO, FlowDirection::Egress),
        HookVerdict::Pass
    );

    // return traffic (reversed tuple) is admitted
    let mut back = pkt(20, 80, 10, 5000);
    assert_eq!(
        e.process_dir(&mut back, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Pass,
        "established flow's return path must pass"
    );
}

#[test]
fn unsolicited_inbound_is_dropped() {
    let mut e = build();
    let mut rng = SimRng::new(1);
    let mut attack = pkt(66, 6666, 10, 22);
    assert_eq!(
        e.process_dir(&mut attack, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Drop
    );
    // and the Blocked counter ticks
    assert_eq!(e.global(eden_core::FuncId(0), 0), 1);

    // a different unsolicited flow is also dropped (separate flow state)
    let mut attack2 = pkt(66, 7777, 10, 22);
    assert_eq!(
        e.process_dir(&mut attack2, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Drop
    );
    assert_eq!(e.global(eden_core::FuncId(0), 0), 2);
}

#[test]
fn flows_are_isolated_from_each_other() {
    let mut e = build();
    let mut rng = SimRng::new(1);
    // establish flow A only
    let mut a_out = pkt(10, 5000, 20, 80);
    e.process_dir(&mut a_out, &mut rng, Time::ZERO, FlowDirection::Egress);

    // flow B's "return" traffic (never established) is dropped
    let mut b_back = pkt(20, 80, 10, 5001);
    assert_eq!(
        e.process_dir(&mut b_back, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Drop,
        "different source port = different flow = unestablished"
    );
}

#[test]
fn ingress_disabled_by_default() {
    // Without process_ingress, the hook's ingress side passes everything —
    // existing egress-only deployments are unaffected by the feature.
    let bundle = functions::conntrack();
    let mut e = Enclave::new(EnclaveConfig::default());
    let f = e.install_function(bundle.interpreted());
    e.add_flow_rule(
        FiveTupleMatch {
            proto: Some(6),
            ..Default::default()
        },
        ClassId(1),
    );
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);

    use transport::PacketHook;
    let mut rng = SimRng::new(1);
    let mut env = transport::HookEnv {
        now: Time::ZERO,
        rng: &mut rng,
    };
    let mut attack = pkt(66, 6666, 10, 22);
    assert_eq!(e.on_ingress(&mut attack, &mut env), HookVerdict::Pass);
}

#[test]
fn shipped_bytecode_behaves_like_locally_compiled() {
    // controller → wire → enclave: the conntrack program survives
    // serialization and still enforces the firewall.
    let controller = eden_core::Controller::new();
    let bundle = functions::conntrack();
    let blob = controller
        .ship_function("conntrack", &bundle.source, &bundle.schema())
        .expect("compiles and encodes");
    let function = eden_core::InstalledFunction::from_shipped(
        "conntrack",
        &blob,
        bundle.schema(),
        bundle.concurrency,
    )
    .expect("decodes and verifies");

    let mut e = Enclave::new(EnclaveConfig {
        process_ingress: true,
        ..Default::default()
    });
    let f = e.install_function(function);
    e.add_flow_rule(
        FiveTupleMatch {
            proto: Some(6),
            ..Default::default()
        },
        ClassId(1),
    );
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);

    let mut rng = SimRng::new(1);
    let mut attack = pkt(66, 6666, 10, 22);
    assert_eq!(
        e.process_dir(&mut attack, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Drop
    );
    let mut out = pkt(10, 5000, 20, 80);
    assert_eq!(
        e.process_dir(&mut out, &mut rng, Time::ZERO, FlowDirection::Egress),
        HookVerdict::Pass
    );
    let mut back = pkt(20, 80, 10, 5000);
    assert_eq!(
        e.process_dir(&mut back, &mut rng, Time::ZERO, FlowDirection::Ingress),
        HookVerdict::Pass
    );
}
