//! Controller-side replication hub.
//!
//! The hub is the rendezvous for every host's sync: it keeps each host's
//! merged contributions, assigns the single global order for sequenced
//! writes, fans per-host views back out (each host receives the merged
//! contribution of every *other* host, never its own), and runs the
//! anti-entropy digest check that flags replicas which stopped
//! converging.

use std::collections::{BTreeMap, VecDeque};

use crate::spec::ReplSpec;
use crate::sync::{FuncDelta, FuncView, SeqEntry, SeqSnapshot, SeqTarget};
use crate::{merged_read, state_digest, ReplMode};

/// Sequenced entries retained for ordered catch-up. A host lagging more
/// than this many entries (a long partition) is resynced from an absolute
/// snapshot instead.
pub const SEQ_RETAIN_CAP: usize = 4096;

/// Consecutive anti-entropy rounds a host may report a *stable but wrong*
/// digest before it is declared divergent. Transient mismatches are
/// normal — a delta races the view that would fix it — but a host whose
/// digest stopped moving and still disagrees has a replication bug.
pub const DIVERGENCE_ROUNDS: u32 = 3;

#[derive(Debug, Clone)]
struct HostState {
    merged: Vec<i64>,
    merged_arrays: Vec<Vec<i64>>,
    /// Ops with id ≤ this are already sequenced (retransmit dedup).
    max_op: u64,
    /// Host has applied sequenced entries through this position.
    acked_seq: u64,
    last_digest: u64,
    mismatch_rounds: u32,
    divergent: bool,
    last_seen_ns: u64,
}

impl HostState {
    fn new(spec: &ReplSpec) -> HostState {
        HostState {
            merged: vec![0; spec.global_len()],
            merged_arrays: vec![Vec::new(); spec.array_len()],
            max_op: 0,
            acked_seq: 0,
            last_digest: 0,
            mismatch_rounds: 0,
            divergent: false,
            last_seen_ns: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct FuncHub {
    spec: ReplSpec,
    hosts: Vec<(u32, HostState)>,
    /// Next global sequence number to assign (first entry gets 1).
    next_seq: u64,
    log: VecDeque<SeqEntry>,
    /// Entries with seq ≤ base_seq have been compacted into the
    /// authoritative applied state below.
    base_seq: u64,
    /// Sequenced globals as of `base_seq` (the snapshot a laggard adopts
    /// before replaying the retained tail).
    seq_globals: Vec<i64>,
    /// Which sequenced slots were ever written (keeps snapshots sparse).
    seq_written: Vec<bool>,
    /// Sequenced array cells as of `base_seq`, sparse.
    seq_cells: BTreeMap<(u8, u32), i64>,
    version: u64,
}

impl FuncHub {
    fn new(spec: ReplSpec) -> FuncHub {
        let n = spec.global_len();
        FuncHub {
            spec,
            hosts: Vec::new(),
            next_seq: 1,
            log: VecDeque::new(),
            base_seq: 0,
            seq_globals: vec![0; n],
            seq_written: vec![false; n],
            seq_cells: BTreeMap::new(),
            version: 0,
        }
    }

    fn host_mut(&mut self, host: u32) -> &mut HostState {
        if let Some(pos) = self.hosts.iter().position(|(h, _)| *h == host) {
            return &mut self.hosts[pos].1;
        }
        self.hosts.push((host, HostState::new(&self.spec)));
        &mut self.hosts.last_mut().expect("just pushed").1
    }

    /// Fleet-wide merged total for `slot`, optionally excluding one host.
    fn merged_total(&self, slot: usize, mode: ReplMode, exclude: Option<u32>) -> i64 {
        let mut acc = 0i64;
        for (h, hs) in &self.hosts {
            if Some(*h) == exclude {
                continue;
            }
            let c = hs.merged.get(slot).copied().unwrap_or(0);
            acc = merged_read(mode, acc, c);
        }
        acc
    }

    /// Fleet-wide merged array for `id`, optionally excluding one host.
    /// Length is the longest contribution seen.
    fn merged_array_total(&self, id: usize, mode: ReplMode, exclude: Option<u32>) -> Vec<i64> {
        let mut acc: Vec<i64> = Vec::new();
        for (h, hs) in &self.hosts {
            if Some(*h) == exclude {
                continue;
            }
            let c = hs.merged_arrays.get(id).map_or(&[][..], Vec::as_slice);
            if c.len() > acc.len() {
                acc.resize(c.len(), 0);
            }
            for (i, &v) in c.iter().enumerate() {
                acc[i] = merged_read(mode, acc[i], v);
            }
        }
        acc
    }

    /// Digest of the fleet state as a host holding `applied_seq` should
    /// see it — the anti-entropy expectation.
    fn expected_digest(&self, applied_seq: u64) -> u64 {
        let totals: Vec<i64> = self
            .spec
            .merged_slots()
            .map(|(slot, mode)| self.merged_total(slot, mode, None))
            .collect();
        let arrays: Vec<Vec<i64>> = self
            .spec
            .merged_arrays()
            .map(|(id, mode)| self.merged_array_total(id, mode, None))
            .collect();
        state_digest(totals, arrays.iter().map(Vec::as_slice), applied_seq)
    }

    fn apply_authoritative(&mut self, target: SeqTarget, value: i64) {
        match target {
            SeqTarget::Global { slot } => {
                if let Some(g) = self.seq_globals.get_mut(slot as usize) {
                    *g = value;
                    self.seq_written[slot as usize] = true;
                }
            }
            SeqTarget::Array { id, index } => {
                if self.spec.array_mode(id as usize) == Some(ReplMode::Sequenced) {
                    self.seq_cells.insert((id, index), value);
                }
            }
        }
    }

    fn snapshot(&self) -> SeqSnapshot {
        SeqSnapshot {
            seq: self.base_seq,
            globals: self
                .seq_written
                .iter()
                .enumerate()
                .filter(|(_, &w)| w)
                .map(|(slot, _)| (slot as u8, self.seq_globals[slot]))
                .collect(),
            cells: self
                .seq_cells
                .iter()
                .map(|(&(id, index), &v)| (id, index, v))
                .collect(),
        }
    }
}

/// Summary of per-host replication health, for ClusterStats and the
/// flight recorder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubReport {
    /// `(host, lag_ns, divergent)` — lag is time since the host's last
    /// delta; divergent hosts failed [`DIVERGENCE_ROUNDS`] anti-entropy
    /// rounds with a stable digest.
    pub hosts: Vec<(u32, u64, bool)>,
    /// Sequenced entries currently retained for catch-up.
    pub retained_entries: usize,
}

/// The controller's replication state across all installed functions.
#[derive(Debug, Clone, Default)]
pub struct ReplHub {
    funcs: Vec<Option<FuncHub>>,
}

impl ReplHub {
    pub fn new() -> ReplHub {
        ReplHub::default()
    }

    /// Register function `func`'s replication layout (controller learns
    /// it when planning the epoch). Re-installing the same spec keeps
    /// accumulated state — epochs re-push configuration idempotently;
    /// installing a *different* spec resets the function's state.
    pub fn install(&mut self, func: usize, spec: ReplSpec) {
        if spec.is_empty() {
            if func < self.funcs.len() {
                self.funcs[func] = None;
            }
            return;
        }
        if self.funcs.len() <= func {
            self.funcs.resize(func + 1, None);
        }
        match &self.funcs[func] {
            Some(hub) if hub.spec == spec => {}
            _ => self.funcs[func] = Some(FuncHub::new(spec)),
        }
    }

    /// Drop everything (controller-side `Reset`).
    pub fn reset(&mut self) {
        self.funcs.clear();
    }

    /// Any function replicated at all? Gates the wire sections.
    pub fn is_active(&self) -> bool {
        self.funcs.iter().any(Option::is_some)
    }

    /// Ingest one host's delta for one function. Idempotent under
    /// retransmission: contributions are absolute, sequenced ops dedup by
    /// op id. Unknown functions are ignored (stale delta racing an epoch
    /// change).
    pub fn ingest(&mut self, host: u32, now_ns: u64, delta: &FuncDelta) {
        let Some(Some(hub)) = self.funcs.get_mut(delta.func as usize) else {
            return;
        };
        let spec = hub.spec.clone();
        let mut changed = false;

        {
            let hs = hub.host_mut(host);
            hs.last_seen_ns = now_ns;
            for &(slot, v) in &delta.merged {
                let slot = slot as usize;
                if spec.global_mode(slot).is_some() {
                    if let Some(c) = hs.merged.get_mut(slot) {
                        if *c != v {
                            *c = v;
                            changed = true;
                        }
                    }
                }
            }
            for (id, vals) in &delta.merged_arrays {
                let id = *id as usize;
                if spec.array_mode(id).is_none() {
                    continue;
                }
                if let Some(c) = hs.merged_arrays.get_mut(id) {
                    if c != vals {
                        *c = vals.clone();
                        changed = true;
                    }
                }
            }
            if delta.applied_seq > hs.acked_seq {
                hs.acked_seq = delta.applied_seq;
            }
        }

        // Sequence the new ops in the host's issue order.
        let prev_max = hub
            .hosts
            .iter()
            .find(|(h, _)| *h == host)
            .map(|(_, hs)| hs.max_op)
            .unwrap_or(0);
        for op in &delta.seq_ops {
            if op.op_id <= prev_max {
                continue; // retransmission of an already-sequenced op
            }
            let seq = hub.next_seq;
            hub.next_seq += 1;
            hub.log.push_back(SeqEntry { seq, host, op: *op });
            // Compact overflow into the base state: the snapshot is the
            // state *at* base_seq, and the retained tail replays on top.
            while hub.log.len() > SEQ_RETAIN_CAP {
                let e = hub.log.pop_front().expect("non-empty");
                hub.base_seq = e.seq;
                hub.apply_authoritative(e.op.target, e.op.value);
            }
            hub.host_mut(host).max_op = op.op_id;
            changed = true;
        }

        if changed {
            hub.version += 1;
        }

        // Anti-entropy: compare the host's reported digest against what a
        // fully synced replica at its applied position would report.
        let expected = hub.expected_digest(delta.applied_seq);
        let hs = hub.host_mut(host);
        if delta.digest == expected {
            hs.mismatch_rounds = 0;
            hs.divergent = false;
        } else if delta.digest == hs.last_digest {
            // stable and wrong — counting toward divergence
            hs.mismatch_rounds += 1;
            if hs.mismatch_rounds >= DIVERGENCE_ROUNDS {
                hs.divergent = true;
            }
        } else {
            hs.mismatch_rounds = 1;
        }
        hs.last_digest = delta.digest;
    }

    /// Build the view to piggyback on the next message to `host`. `None`
    /// when the function has no replicated state.
    pub fn view_for(&mut self, host: u32, func: usize) -> Option<FuncView> {
        let hub = self.funcs.get_mut(func)?.as_mut()?;
        let spec = hub.spec.clone();
        // Make sure the host exists so a brand-new host gets a view
        // before its first delta arrives.
        let (acked_seq, max_op, divergent) = {
            let hs = hub.host_mut(host);
            (hs.acked_seq, hs.max_op, hs.divergent)
        };
        let remote: Vec<(u8, i64)> = spec
            .merged_slots()
            .map(|(slot, mode)| (slot as u8, hub.merged_total(slot, mode, Some(host))))
            .collect();
        let remote_arrays: Vec<(u8, Vec<i64>)> = spec
            .merged_arrays()
            .map(|(id, mode)| (id as u8, hub.merged_array_total(id, mode, Some(host))))
            .collect();
        let (snapshot, from_seq) = if acked_seq < hub.base_seq {
            (Some(hub.snapshot()), hub.base_seq)
        } else {
            (None, acked_seq)
        };
        let entries: Vec<SeqEntry> = hub
            .log
            .iter()
            .filter(|e| e.seq > from_seq)
            .copied()
            .collect();
        Some(FuncView {
            func: func as u32,
            version: hub.version,
            remote,
            remote_arrays,
            snapshot,
            entries,
            acked_op_id: max_op,
            digest: hub.expected_digest(hub.next_seq - 1),
            divergent,
        })
    }

    /// Function indices with replicated state, ascending.
    pub fn active_funcs(&self) -> Vec<usize> {
        self.funcs
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| i))
            .collect()
    }

    /// Fleet-wide merged total of `(func, slot)` — what a fully synced
    /// read would return anywhere.
    pub fn merged_total(&self, func: usize, slot: usize) -> i64 {
        let Some(Some(hub)) = self.funcs.get(func) else {
            return 0;
        };
        match hub.spec.global_mode(slot) {
            Some(mode @ (ReplMode::MergedSum | ReplMode::MergedMax)) => {
                hub.merged_total(slot, mode, None)
            }
            _ => 0,
        }
    }

    /// Highest sequenced position assigned for `func`.
    pub fn seq_head(&self, func: usize) -> u64 {
        self.funcs
            .get(func)
            .and_then(Option::as_ref)
            .map_or(0, |h| h.next_seq - 1)
    }

    /// Per-host health summary across all functions: worst lag and any
    /// divergence flag.
    pub fn report(&self, now_ns: u64) -> HubReport {
        let mut hosts: Vec<(u32, u64, bool)> = Vec::new();
        let mut retained = 0;
        for hub in self.funcs.iter().flatten() {
            retained += hub.log.len();
            for (h, hs) in &hub.hosts {
                let lag = now_ns.saturating_sub(hs.last_seen_ns);
                match hosts.iter_mut().find(|(x, _, _)| x == h) {
                    Some(row) => {
                        row.1 = row.1.max(lag);
                        row.2 |= hs.divergent;
                    }
                    None => hosts.push((*h, lag, hs.divergent)),
                }
            }
        }
        hosts.sort_by_key(|&(h, _, _)| h);
        HubReport {
            hosts,
            retained_entries: retained,
        }
    }

    /// Hosts currently flagged divergent.
    pub fn divergent_hosts(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for hub in self.funcs.iter().flatten() {
            for (h, hs) in &hub.hosts {
                if hs.divergent && !out.contains(h) {
                    out.push(*h);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRepl;
    use crate::sync::SeqOp;
    use eden_lang::{Access, Schema};

    fn spec() -> ReplSpec {
        ReplSpec::from_schema(
            &Schema::new()
                .global_field("Tokens", Access::ReadWrite)
                .replicated(ReplMode::MergedSum)
                .global_field("Hi", Access::ReadWrite)
                .replicated(ReplMode::MergedMax)
                .global_field("Steer", Access::ReadWrite)
                .replicated(ReplMode::Sequenced),
        )
    }

    fn delta(func: u32, merged: Vec<(u8, i64)>, ops: Vec<SeqOp>, applied: u64) -> FuncDelta {
        FuncDelta {
            func,
            merged,
            merged_arrays: Vec::new(),
            seq_ops: ops,
            applied_seq: applied,
            digest: 0,
        }
    }

    #[test]
    fn merged_contributions_sum_and_max() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        hub.ingest(1, 10, &delta(0, vec![(0, 5), (1, 30)], vec![], 0));
        hub.ingest(2, 11, &delta(0, vec![(0, 7), (1, 90)], vec![], 0));
        assert_eq!(hub.merged_total(0, 0), 12);
        assert_eq!(hub.merged_total(0, 1), 90);
        // view for host 1 excludes host 1's own contribution
        let v = hub.view_for(1, 0).unwrap();
        assert_eq!(v.remote, vec![(0, 7), (1, 90)]);
        let v2 = hub.view_for(2, 0).unwrap();
        assert_eq!(v2.remote, vec![(0, 5), (1, 30)]);
    }

    #[test]
    fn ingest_is_idempotent_and_order_independent() {
        let d1 = delta(0, vec![(0, 5)], vec![], 0);
        let d2 = delta(0, vec![(0, 7)], vec![], 0);
        let mut a = ReplHub::new();
        a.install(0, spec());
        a.ingest(1, 0, &d1);
        a.ingest(2, 0, &d2);
        a.ingest(1, 0, &d1); // duplicate
        let mut b = ReplHub::new();
        b.install(0, spec());
        b.ingest(2, 0, &d2);
        b.ingest(1, 0, &d1);
        assert_eq!(a.merged_total(0, 0), b.merged_total(0, 0));
        assert_eq!(a.merged_total(0, 0), 12);
    }

    #[test]
    fn sequenced_ops_get_one_global_order_with_retransmit_dedup() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        let op = |op_id, value| SeqOp {
            op_id,
            target: SeqTarget::Global { slot: 2 },
            value,
        };
        hub.ingest(1, 0, &delta(0, vec![], vec![op(1, 10)], 0));
        hub.ingest(2, 0, &delta(0, vec![], vec![op(1, 20)], 0));
        // host 1 retransmits op 1 (unacked) plus a new op 2
        hub.ingest(1, 0, &delta(0, vec![], vec![op(1, 10), op(2, 30)], 0));
        assert_eq!(hub.seq_head(0), 3, "three distinct ops sequenced");
        let v = hub.view_for(3, 0).unwrap();
        let order: Vec<(u64, u32, i64)> = v
            .entries
            .iter()
            .map(|e| (e.seq, e.host, e.op.value))
            .collect();
        assert_eq!(order, vec![(1, 1, 10), (2, 2, 20), (3, 1, 30)]);
    }

    #[test]
    fn laggard_host_gets_snapshot_resync() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        // enough ops from host 1 to overflow the retained log
        let n = SEQ_RETAIN_CAP + 10;
        let ops: Vec<SeqOp> = (1..=n as u64)
            .map(|op_id| SeqOp {
                op_id,
                target: SeqTarget::Global { slot: 2 },
                value: op_id as i64,
            })
            .collect();
        hub.ingest(1, 0, &delta(0, vec![], ops, 0));
        // host 2 never applied anything — behind the pruned base
        let v = hub.view_for(2, 0).unwrap();
        let snap = v.snapshot.clone().expect("resync snapshot");
        assert_eq!(snap.seq as usize, n - SEQ_RETAIN_CAP);
        assert_eq!(snap.globals, vec![(2, snap.seq as i64)]);
        assert_eq!(v.entries.len(), SEQ_RETAIN_CAP);
        // a HostRepl that applies it lands exactly at the head
        let mut h = HostRepl::new(spec(), &[]);
        let mut last = 0;
        h.apply_view(&v, 0, |_, v| last = v);
        assert_eq!(h.applied_seq(), n as u64);
        assert_eq!(last, n as i64);
        assert_eq!(h.resyncs(), 1);
    }

    #[test]
    fn divergence_flags_stable_wrong_digest_only() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        let mut good = delta(0, vec![(0, 5)], vec![], 0);
        // an honest host computes the digest a synced replica would
        let h = HostRepl::new(spec(), &[]);
        // ingest once so the hub knows the contribution, then compute
        hub.ingest(1, 0, &good);
        good.digest = h.digest(&[5, 0, 0], &[]);
        hub.ingest(1, 0, &good);
        assert!(hub.divergent_hosts().is_empty());

        // a corrupted host: same wrong digest, round after round
        let bad = FuncDelta {
            digest: 0xBAD,
            ..delta(0, vec![(0, 5)], vec![], 0)
        };
        for _ in 0..DIVERGENCE_ROUNDS {
            hub.ingest(1, 0, &bad);
        }
        assert_eq!(hub.divergent_hosts(), vec![1]);
        // converging again clears the flag
        good.digest = {
            let h = HostRepl::new(spec(), &[]);
            h.digest(&[5, 0, 0], &[])
        };
        hub.ingest(1, 0, &good);
        assert!(hub.divergent_hosts().is_empty());
    }

    #[test]
    fn report_tracks_lag_and_retained_entries() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        hub.ingest(1, 100, &delta(0, vec![(0, 1)], vec![], 0));
        hub.ingest(
            2,
            250,
            &delta(
                0,
                vec![],
                vec![SeqOp {
                    op_id: 1,
                    target: SeqTarget::Global { slot: 2 },
                    value: 9,
                }],
                0,
            ),
        );
        let r = hub.report(300);
        assert_eq!(r.hosts.len(), 2);
        assert_eq!(r.hosts[0], (1, 200, false));
        assert_eq!(r.hosts[1], (2, 50, false));
        assert_eq!(r.retained_entries, 1);
    }

    #[test]
    fn reinstall_same_spec_keeps_state_new_spec_resets() {
        let mut hub = ReplHub::new();
        hub.install(0, spec());
        hub.ingest(1, 0, &delta(0, vec![(0, 5)], vec![], 0));
        hub.install(0, spec()); // same layout: epoch re-push
        assert_eq!(hub.merged_total(0, 0), 5);
        let other = ReplSpec::from_schema(
            &Schema::new()
                .global_field("X", Access::ReadWrite)
                .replicated(ReplMode::MergedSum),
        );
        hub.install(0, other);
        assert_eq!(hub.merged_total(0, 0), 0);
    }
}
