//! # eden-repl — replicated cross-host state
//!
//! Eden's action functions read and write *host-local* state; the paper's
//! fleet-wide scenarios (global rate limiting à la Pulsar, distributed
//! reputation, connection-count-aware load balancing) need state that is
//! shared across every enclave running the same function. Following the
//! LOADER design, replication here never blocks the data path: functions
//! make **purely local decisions against a replica view**, and the view is
//! synchronized asynchronously over the existing controller heartbeat
//! cadence.
//!
//! Two consistency modes, declared per global scalar/array in the schema
//! ([`eden_lang::ReplMode`]):
//!
//! * **merged** (`MergedSum` / `MergedMax`) — state-based CRDT. Each host
//!   owns a *contribution* (its local slot); a read combines the host's
//!   contribution with the merged contribution of every other host
//!   ([`merged_read`]). Contributions travel whole (not as op deltas), so
//!   sync is idempotent under loss, duplication, and reordering, and any
//!   merge order converges — no increment is ever lost.
//! * **sequenced** — writes are routed through the controller, which
//!   assigns a single global order ([`hub::ReplHub`]); every host applies
//!   entries in that order and reads its own last-applied view.
//!
//! The crate is pure bookkeeping — no I/O, no clocks, no locks. The
//! dataplane glue lives in `eden-core` (replica snapshots swapped between
//! batches), the wire format in `eden-ctrl::proto` (delta/view sections
//! piggybacked on heartbeats), and the fan-out policy in the controller.

mod host;
mod hub;
mod spec;
mod sync;

pub use eden_lang::ReplMode;
pub use host::{HostRepl, SEQ_LOG_CAP, SEQ_PENDING_CAP};
pub use hub::{HubReport, ReplHub, DIVERGENCE_ROUNDS, SEQ_RETAIN_CAP};
pub use spec::ReplSpec;
pub use sync::{FuncDelta, FuncView, SeqEntry, SeqOp, SeqSnapshot, SeqTarget};

/// Combine the merged remote contribution with the host's own, per mode.
/// This is the read every replicated global load performs on the hot path
/// (inlined there; this is the canonical definition the tests pin).
#[inline]
pub fn merged_read(mode: ReplMode, remote: i64, local: i64) -> i64 {
    match mode {
        ReplMode::MergedSum => remote.wrapping_add(local),
        ReplMode::MergedMax => remote.max(local),
        // Sequenced state is applied into the local slot in controller
        // order; the remote column carries nothing for it.
        ReplMode::Sequenced => local,
    }
}

/// New local contribution after a store of `value`, per mode. The store
/// targets what the function *observes* — `g.X <- g.X + d` must make the
/// next read see `d` more — so for summed state the local contribution
/// absorbs the difference against the (fixed-within-a-batch) remote part:
/// `local' = value - remote`. Read-your-writes holds immediately, and the
/// remote contribution is never double-counted.
#[inline]
pub fn merged_store(mode: ReplMode, remote: i64, value: i64) -> i64 {
    match mode {
        ReplMode::MergedSum => value.wrapping_sub(remote),
        ReplMode::MergedMax => value,
        ReplMode::Sequenced => value,
    }
}

/// FNV-1a over a word stream — the digest both ends of the anti-entropy
/// exchange compute over their effective replicated state. Not
/// cryptographic; it detects *bugs and missed syncs*, not adversaries
/// (control frames already ride an authenticated channel in a real
/// deployment).
pub fn fnv1a64<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Digest of one function's effective replicated state: merged totals (in
/// slot order), merged array elements (in id then index order), and the
/// sequenced position. Two replicas that agree on this digest agree on
/// every merged value and have applied the same sequenced prefix.
pub fn state_digest<'a>(
    totals: impl IntoIterator<Item = i64>,
    array_totals: impl IntoIterator<Item = &'a [i64]>,
    applied_seq: u64,
) -> u64 {
    let scalars = totals.into_iter().map(|v| v as u64);
    let arrays = array_totals
        .into_iter()
        .flat_map(|a| a.iter().map(|&v| v as u64));
    fnv1a64(scalars.chain(arrays).chain(std::iter::once(applied_seq)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sum_read_your_writes() {
        let remote = 40;
        let mut local = 2;
        // g.X <- g.X + 8 observed as read-then-store
        let seen = merged_read(ReplMode::MergedSum, remote, local);
        assert_eq!(seen, 42);
        local = merged_store(ReplMode::MergedSum, remote, seen + 8);
        assert_eq!(local, 10, "local contribution absorbed the increment");
        assert_eq!(merged_read(ReplMode::MergedSum, remote, local), 50);
    }

    #[test]
    fn merged_max_read_your_writes() {
        let remote = 100;
        let mut local = 7;
        assert_eq!(merged_read(ReplMode::MergedMax, remote, local), 100);
        local = merged_store(ReplMode::MergedMax, remote, 250);
        assert_eq!(merged_read(ReplMode::MergedMax, remote, local), 250);
        // lowering the local contribution cannot lower the fleet max
        local = merged_store(ReplMode::MergedMax, remote, 5);
        assert_eq!(merged_read(ReplMode::MergedMax, remote, local), 100);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = state_digest([1, 2], [&[3i64, 4][..]], 9);
        let b = state_digest([2, 1], [&[3i64, 4][..]], 9);
        let c = state_digest([1, 2], [&[3i64, 4][..]], 10);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, state_digest([1, 2], [&[3i64, 4][..]], 9));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a of eight zero bytes (one u64 word).
        assert_eq!(fnv1a64([0u64]), 0xa8c7f832281a39c5);
    }
}
