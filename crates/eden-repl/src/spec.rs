//! Per-function replication layout, extracted from the schema.

use eden_lang::{ReplMode, Schema, Scope};

/// Which global slots and arrays of one function are replicated, and how.
/// Indexed by the same slot/id numbers the compiled bytecode addresses, so
/// the dataplane can branch on a flat lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplSpec {
    globals: Vec<Option<ReplMode>>,
    arrays: Vec<Option<ReplMode>>,
}

impl ReplSpec {
    /// Extract the replication layout from a schema. Assumes the schema
    /// already passed [`Schema::validate_repl`] (non-global annotations
    /// are a type error upstream).
    pub fn from_schema(schema: &Schema) -> ReplSpec {
        let mut globals = vec![None; schema.scope_len(Scope::Global)];
        for f in schema.fields() {
            if f.scope == Scope::Global {
                globals[f.slot as usize] = f.repl;
            }
        }
        let arrays = schema.arrays().iter().map(|a| a.repl).collect();
        ReplSpec { globals, arrays }
    }

    /// True when nothing is replicated — the dataplane keeps its plain
    /// host-local path and no sync sections go on the wire.
    pub fn is_empty(&self) -> bool {
        self.globals.iter().all(Option::is_none) && self.arrays.iter().all(Option::is_none)
    }

    /// Replication mode of global scalar `slot`, if any.
    #[inline]
    pub fn global_mode(&self, slot: usize) -> Option<ReplMode> {
        self.globals.get(slot).copied().flatten()
    }

    /// Replication mode of global array `id`, if any.
    #[inline]
    pub fn array_mode(&self, id: usize) -> Option<ReplMode> {
        self.arrays.get(id).copied().flatten()
    }

    /// Number of global scalar slots (replicated or not).
    pub fn global_len(&self) -> usize {
        self.globals.len()
    }

    /// Number of global arrays (replicated or not).
    pub fn array_len(&self) -> usize {
        self.arrays.len()
    }

    /// Slots with a *merged* mode, in slot order.
    pub fn merged_slots(&self) -> impl Iterator<Item = (usize, ReplMode)> + '_ {
        self.globals
            .iter()
            .enumerate()
            .filter_map(|(i, m)| match m {
                Some(ReplMode::MergedSum) => Some((i, ReplMode::MergedSum)),
                Some(ReplMode::MergedMax) => Some((i, ReplMode::MergedMax)),
                _ => None,
            })
    }

    /// Arrays with a *merged* mode, in id order.
    pub fn merged_arrays(&self) -> impl Iterator<Item = (usize, ReplMode)> + '_ {
        self.arrays.iter().enumerate().filter_map(|(i, m)| match m {
            Some(ReplMode::MergedSum) => Some((i, ReplMode::MergedSum)),
            Some(ReplMode::MergedMax) => Some((i, ReplMode::MergedMax)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_lang::Access;

    #[test]
    fn extraction_follows_slot_numbers() {
        let s = Schema::new()
            .packet_field("P", Access::ReadOnly, None)
            .global_field("A", Access::ReadWrite)
            .global_field("B", Access::ReadWrite)
            .replicated(ReplMode::MergedSum)
            .global_array("Xs", &[""], Access::ReadWrite)
            .replicated(ReplMode::Sequenced)
            .global_array("Ys", &[""], Access::ReadOnly);
        let spec = ReplSpec::from_schema(&s);
        assert!(!spec.is_empty());
        assert_eq!(spec.global_mode(0), None);
        assert_eq!(spec.global_mode(1), Some(ReplMode::MergedSum));
        assert_eq!(spec.global_mode(2), None, "out of range is None");
        assert_eq!(spec.array_mode(0), Some(ReplMode::Sequenced));
        assert_eq!(spec.array_mode(1), None);
        assert_eq!(spec.global_len(), 2);
        assert_eq!(spec.array_len(), 2);
        assert_eq!(
            spec.merged_slots().collect::<Vec<_>>(),
            vec![(1, ReplMode::MergedSum)]
        );
        assert_eq!(spec.merged_arrays().count(), 0);
    }

    #[test]
    fn plain_schema_is_empty() {
        let s = Schema::new().global_field("A", Access::ReadWrite);
        assert!(ReplSpec::from_schema(&s).is_empty());
    }
}
