//! The sync payloads exchanged between a host's enclave agent and the
//! controller. `eden-ctrl::proto` gives these a wire form; here they are
//! plain data so both the hub and the host runtime can be tested without
//! a network.

/// What a sequenced write targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqTarget {
    /// Global scalar slot.
    Global { slot: u8 },
    /// One element of a global array (flattened index).
    Array { id: u8, index: u32 },
}

/// One sequenced write as issued by a host, before ordering. `op_id` is
/// per-host monotonic; the hub dedups retransmissions by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqOp {
    pub op_id: u64,
    pub target: SeqTarget,
    pub value: i64,
}

/// A sequenced write after the controller assigned its global position.
/// Every host applies entries in ascending `seq`; two hosts that applied
/// the same prefix hold identical sequenced state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqEntry {
    pub seq: u64,
    /// Host that issued the write (for attribution/debugging only).
    pub host: u32,
    pub op: SeqOp,
}

/// Absolute sequenced state through `seq` — the resync path for a host
/// whose applied position fell behind the hub's retained log (long
/// partition). Values are sparse: only targets ever written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqSnapshot {
    pub seq: u64,
    /// (slot, value) for sequenced globals.
    pub globals: Vec<(u8, i64)>,
    /// (array id, flattened index, value) for sequenced array elements.
    pub cells: Vec<(u8, u32, i64)>,
}

/// Host → controller sync for one function: the host's full merged
/// contributions (idempotent under loss — resending is harmless), its
/// not-yet-acked sequenced ops, where it has applied to, and its state
/// digest for anti-entropy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncDelta {
    /// Function index in the enclave's install order.
    pub func: u32,
    /// (slot, contribution) for every merged global slot.
    pub merged: Vec<(u8, i64)>,
    /// (array id, contribution elements) for every merged array.
    pub merged_arrays: Vec<(u8, Vec<i64>)>,
    /// Sequenced ops issued but not yet acked, oldest first.
    pub seq_ops: Vec<SeqOp>,
    /// Host has applied sequenced entries through this position.
    pub applied_seq: u64,
    /// [`crate::state_digest`] over the host's effective state.
    pub digest: u64,
}

/// Controller → host sync for one function: the merged view of *every
/// other* host (never the recipient's own contribution — that would
/// double-count), the sequenced tail the host is missing, and the
/// controller's digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncView {
    pub func: u32,
    /// Monotonic view version (bumps whenever hub state changes).
    pub version: u64,
    /// (slot, merged-of-others) for every merged global slot.
    pub remote: Vec<(u8, i64)>,
    /// (array id, merged-of-others elements) for every merged array.
    pub remote_arrays: Vec<(u8, Vec<i64>)>,
    /// Present when the host's applied position predates the retained
    /// log; adopt it, then apply `entries`.
    pub snapshot: Option<SeqSnapshot>,
    /// Sequenced entries after the host's applied position (or after the
    /// snapshot), ascending.
    pub entries: Vec<SeqEntry>,
    /// The hub has ingested this host's ops through this id; the host
    /// drops them from its pending queue.
    pub acked_op_id: u64,
    /// Controller's [`crate::state_digest`] over the fleet state.
    pub digest: u64,
    /// The anti-entropy check flagged this host as divergent (stable but
    /// wrong digest for [`crate::DIVERGENCE_ROUNDS`] rounds) — the host
    /// freezes its flight recorder for forensics.
    pub divergent: bool,
}
