//! Host-side replication runtime for one installed function.
//!
//! `HostRepl` owns everything the enclave needs besides its ordinary
//! `FunctionState`: the merged **remote** contribution of every other host
//! (read by the data path as a plain slice — the enclave swaps snapshots
//! between batches, so there is no hot-path synchronization), the
//! **outbox** of sequenced writes awaiting controller ordering, and the
//! applied position of the sequenced log.

use std::collections::VecDeque;

use crate::spec::ReplSpec;
use crate::sync::{FuncDelta, FuncView, SeqEntry, SeqOp, SeqTarget};
use crate::{merged_read, state_digest};

/// Sequenced writes buffered while unacked. A controller partition longer
/// than the cap's worth of writes sheds the newest (counted, not silent);
/// merged state is unaffected — contributions always travel whole.
pub const SEQ_PENDING_CAP: usize = 1024;

/// Applied sequenced entries kept for inspection (tests pin controller
/// order against this; the flight recorder embeds it on divergence).
pub const SEQ_LOG_CAP: usize = 256;

/// Per-function host replication state.
#[derive(Debug, Clone)]
pub struct HostRepl {
    spec: ReplSpec,
    /// Merged contribution of every *other* host, per global slot (zero
    /// for non-merged slots).
    remote: Vec<i64>,
    /// Same, per array id; each sized to the local array length.
    remote_arrays: Vec<Vec<i64>>,
    /// Version of the last controller view applied.
    version: u64,
    /// When that view arrived (enclave clock, ns).
    updated_at_ns: u64,
    next_op_id: u64,
    pending: VecDeque<SeqOp>,
    /// Sequenced ops shed because the pending queue was full.
    shed_ops: u64,
    applied_seq: u64,
    applied_log: VecDeque<SeqEntry>,
    /// Times the host fell behind the retained log and adopted a snapshot.
    resyncs: u64,
}

impl HostRepl {
    /// Runtime for a function whose local arrays have `array_lens`
    /// elements (flattened), in array-id order.
    pub fn new(spec: ReplSpec, array_lens: &[usize]) -> HostRepl {
        let remote = vec![0; spec.global_len()];
        let remote_arrays = (0..spec.array_len())
            .map(|i| vec![0; array_lens.get(i).copied().unwrap_or(0)])
            .collect();
        HostRepl {
            spec,
            remote,
            remote_arrays,
            version: 0,
            updated_at_ns: 0,
            next_op_id: 1,
            pending: VecDeque::new(),
            shed_ops: 0,
            applied_seq: 0,
            applied_log: VecDeque::new(),
            resyncs: 0,
        }
    }

    #[inline]
    pub fn spec(&self) -> &ReplSpec {
        &self.spec
    }

    /// Remote contribution per global slot — what the data path snapshots.
    #[inline]
    pub fn remote_globals(&self) -> &[i64] {
        &self.remote
    }

    /// Remote contribution of array `id` — what the data path snapshots.
    #[inline]
    pub fn remote_array(&self, id: usize) -> &[i64] {
        self.remote_arrays.get(id).map_or(&[], Vec::as_slice)
    }

    /// All remote array contributions, in array-id order (the lane path
    /// shares these read-only for the duration of one batch).
    #[inline]
    pub fn remote_arrays(&self) -> &[Vec<i64>] {
        &self.remote_arrays
    }

    /// Queue a sequenced write to a global scalar.
    pub fn seq_store_global(&mut self, slot: u8, value: i64) {
        self.push_op(SeqTarget::Global { slot }, value);
    }

    /// Queue a sequenced write to an array element.
    pub fn seq_store_array(&mut self, id: u8, index: u32, value: i64) {
        self.push_op(SeqTarget::Array { id, index }, value);
    }

    fn push_op(&mut self, target: SeqTarget, value: i64) {
        if self.pending.len() >= SEQ_PENDING_CAP {
            self.shed_ops += 1;
            return;
        }
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        self.pending.push_back(SeqOp {
            op_id,
            target,
            value,
        });
    }

    /// Build the host → controller sync for this function. `globals` and
    /// `arrays` are the function's local state (the merged contributions
    /// live in the local slots). Pure read — resending is idempotent.
    pub fn build_delta(&self, func: u32, globals: &[i64], arrays: &[Vec<i64>]) -> FuncDelta {
        let merged = self
            .spec
            .merged_slots()
            .map(|(slot, _)| (slot as u8, globals.get(slot).copied().unwrap_or(0)))
            .collect();
        let merged_arrays = self
            .spec
            .merged_arrays()
            .map(|(id, _)| (id as u8, arrays.get(id).cloned().unwrap_or_default()))
            .collect();
        FuncDelta {
            func,
            merged,
            merged_arrays,
            seq_ops: self.pending.iter().copied().collect(),
            applied_seq: self.applied_seq,
            digest: self.digest(globals, arrays),
        }
    }

    /// Digest of the host's *effective* state: merged totals as the data
    /// path would read them, plus the applied sequenced position.
    pub fn digest(&self, globals: &[i64], arrays: &[Vec<i64>]) -> u64 {
        let totals: Vec<i64> = self
            .spec
            .merged_slots()
            .map(|(slot, mode)| {
                merged_read(
                    mode,
                    self.remote.get(slot).copied().unwrap_or(0),
                    globals.get(slot).copied().unwrap_or(0),
                )
            })
            .collect();
        let array_totals: Vec<Vec<i64>> = self
            .spec
            .merged_arrays()
            .map(|(id, mode)| {
                let local = arrays.get(id).map_or(&[][..], Vec::as_slice);
                let remote = self.remote_array(id);
                local
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| merged_read(mode, remote.get(i).copied().unwrap_or(0), l))
                    .collect()
            })
            .collect();
        state_digest(
            totals,
            array_totals.iter().map(Vec::as_slice),
            self.applied_seq,
        )
    }

    /// Apply a controller view: refresh the remote contributions, drop
    /// acked outbox entries, and apply the sequenced tail **in controller
    /// order** through `apply` (which writes the enclave's local state).
    /// Idempotent — duplicate views re-apply nothing.
    pub fn apply_view(
        &mut self,
        view: &FuncView,
        now_ns: u64,
        mut apply: impl FnMut(SeqTarget, i64),
    ) {
        for &(slot, v) in &view.remote {
            if let Some(r) = self.remote.get_mut(slot as usize) {
                if self.spec.global_mode(slot as usize).is_some() {
                    *r = v;
                }
            }
        }
        for (id, vals) in &view.remote_arrays {
            if self.spec.array_mode(*id as usize).is_none() {
                continue;
            }
            if let Some(r) = self.remote_arrays.get_mut(*id as usize) {
                let n = r.len().min(vals.len());
                r[..n].copy_from_slice(&vals[..n]);
                // a shorter remote view zeroes the tail rather than
                // leaving stale contributions behind
                for x in r[n..].iter_mut() {
                    *x = 0;
                }
            }
        }

        // Ack: the hub has these ops; stop retransmitting them.
        while let Some(front) = self.pending.front() {
            if front.op_id <= view.acked_op_id {
                self.pending.pop_front();
            } else {
                break;
            }
        }

        // Resync: we fell behind the retained log; adopt absolute state.
        if let Some(snap) = &view.snapshot {
            if snap.seq > self.applied_seq {
                for &(slot, v) in &snap.globals {
                    apply(SeqTarget::Global { slot }, v);
                }
                for &(id, index, v) in &snap.cells {
                    apply(SeqTarget::Array { id, index }, v);
                }
                self.applied_seq = snap.seq;
                self.resyncs += 1;
            }
        }

        // Ordered application of the sequenced tail. A gap means the view
        // was built against a newer ack than ours — stop and wait for the
        // next cadence rather than applying out of order.
        for e in &view.entries {
            if e.seq <= self.applied_seq {
                continue; // duplicate
            }
            if e.seq != self.applied_seq + 1 {
                break;
            }
            apply(e.op.target, e.op.value);
            self.applied_seq = e.seq;
            if self.applied_log.len() >= SEQ_LOG_CAP {
                self.applied_log.pop_front();
            }
            self.applied_log.push_back(*e);
        }

        if view.version >= self.version {
            self.version = view.version;
        }
        self.updated_at_ns = now_ns;
    }

    /// Sequenced entries applied on this host, oldest retained first —
    /// the order pin for tests and divergence forensics.
    pub fn applied_log(&self) -> impl Iterator<Item = &SeqEntry> {
        self.applied_log.iter()
    }

    /// Position in the global sequenced order this host has applied to.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Sequenced ops awaiting an ack.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequenced ops shed because the outbox was full.
    pub fn shed_ops(&self) -> u64 {
        self.shed_ops
    }

    /// Snapshot resyncs performed (fell behind the retained log).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Version of the last applied controller view.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Nanoseconds since the last controller view arrived — the staleness
    /// a local decision may be acting on.
    pub fn staleness_ns(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.updated_at_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplMode;
    use eden_lang::{Access, Schema};

    fn spec() -> ReplSpec {
        ReplSpec::from_schema(
            &Schema::new()
                .global_field("Tokens", Access::ReadWrite)
                .replicated(ReplMode::MergedSum)
                .global_field("Steer", Access::ReadWrite)
                .replicated(ReplMode::Sequenced)
                .global_array("Conns", &[""], Access::ReadWrite)
                .replicated(ReplMode::Sequenced),
        )
    }

    #[test]
    fn delta_carries_contributions_and_pending_ops() {
        let mut h = HostRepl::new(spec(), &[4]);
        h.seq_store_global(1, 7);
        h.seq_store_array(0, 2, 9);
        let d = h.build_delta(0, &[42, 0], &[vec![0; 4]]);
        assert_eq!(d.merged, vec![(0, 42)]);
        assert_eq!(d.seq_ops.len(), 2);
        assert_eq!(d.seq_ops[0].op_id, 1);
        assert_eq!(d.seq_ops[1].target, SeqTarget::Array { id: 0, index: 2 });
        assert_eq!(d.applied_seq, 0);
    }

    #[test]
    fn view_acks_prefix_and_applies_in_order() {
        let mut h = HostRepl::new(spec(), &[4]);
        h.seq_store_global(1, 7);
        h.seq_store_global(1, 8);
        let mut writes = Vec::new();
        let entry = |seq, value| SeqEntry {
            seq,
            host: 1,
            op: SeqOp {
                op_id: seq,
                target: SeqTarget::Global { slot: 1 },
                value,
            },
        };
        let view = FuncView {
            func: 0,
            version: 3,
            remote: vec![(0, 100)],
            entries: vec![entry(1, 7), entry(2, 8)],
            acked_op_id: 1,
            ..Default::default()
        };
        h.apply_view(&view, 50, |t, v| writes.push((t, v)));
        assert_eq!(h.remote_globals()[0], 100);
        assert_eq!(h.pending_len(), 1, "op 1 acked, op 2 still pending");
        assert_eq!(
            writes,
            vec![
                (SeqTarget::Global { slot: 1 }, 7),
                (SeqTarget::Global { slot: 1 }, 8),
            ]
        );
        assert_eq!(h.applied_seq(), 2);
        // duplicate view: nothing re-applies
        writes.clear();
        h.apply_view(&view, 60, |t, v| writes.push((t, v)));
        assert!(writes.is_empty());
        assert_eq!(h.applied_seq(), 2);
        assert_eq!(h.staleness_ns(75), 15);
    }

    #[test]
    fn gap_in_entries_defers_application() {
        let mut h = HostRepl::new(spec(), &[4]);
        let e = SeqEntry {
            seq: 5,
            host: 2,
            op: SeqOp {
                op_id: 1,
                target: SeqTarget::Global { slot: 1 },
                value: 1,
            },
        };
        let view = FuncView {
            entries: vec![e],
            ..Default::default()
        };
        let mut writes = Vec::new();
        h.apply_view(&view, 0, |t, v| writes.push((t, v)));
        assert!(writes.is_empty(), "seq 5 with applied=0 is a gap");
        assert_eq!(h.applied_seq(), 0);
    }

    #[test]
    fn snapshot_resync_adopts_absolute_state() {
        let mut h = HostRepl::new(spec(), &[4]);
        let view = FuncView {
            snapshot: Some(crate::SeqSnapshot {
                seq: 10,
                globals: vec![(1, 55)],
                cells: vec![(0, 3, 7)],
            }),
            entries: vec![SeqEntry {
                seq: 11,
                host: 1,
                op: SeqOp {
                    op_id: 9,
                    target: SeqTarget::Global { slot: 1 },
                    value: 56,
                },
            }],
            ..Default::default()
        };
        let mut writes = Vec::new();
        h.apply_view(&view, 0, |t, v| writes.push((t, v)));
        assert_eq!(
            writes,
            vec![
                (SeqTarget::Global { slot: 1 }, 55),
                (SeqTarget::Array { id: 0, index: 3 }, 7),
                (SeqTarget::Global { slot: 1 }, 56),
            ]
        );
        assert_eq!(h.applied_seq(), 11);
        assert_eq!(h.resyncs(), 1);
    }

    #[test]
    fn outbox_sheds_when_full_instead_of_growing() {
        let mut h = HostRepl::new(spec(), &[]);
        for i in 0..(SEQ_PENDING_CAP + 5) {
            h.seq_store_global(1, i as i64);
        }
        assert_eq!(h.pending_len(), SEQ_PENDING_CAP);
        assert_eq!(h.shed_ops(), 5);
    }
}
