//! The interpreter ↔ enclave boundary.
//!
//! An action function only ever sees three things (§3.4.2): the packet, its
//! message state, and its function-global state — plus builtin randomness
//! and a clock. All of them reach the VM through [`Host`]. The enclave in
//! `eden-core` implements `Host` over its authoritative state tables, which
//! is what gives the paper's guarantee that a program "can read and modify
//! only the state related to that program".
//!
//! [`VecHost`] is a plain vector-backed implementation used by unit tests,
//! property tests, and the interpreter microbenchmarks.

use crate::error::{StateScope, VmError};

/// Side effects an action function can request (§3.4.2: "control routing
/// decisions for the packet, including dropping it, sending it to a specific
/// queue associated with rate limits, sending it to a specific match-action
/// table or forwarding it to the controller").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Drop the packet.
    Drop,
    /// Direct the packet to rate-limited queue `queue`, charging `charge`
    /// bytes against that queue's budget (may differ from the packet size —
    /// Pulsar's READ-request charging, §2.1.2).
    SetQueue { queue: i64, charge: i64 },
    /// Punt the packet to the controller.
    ToController,
    /// Continue matching in another enclave table.
    GotoTable { table: i64 },
}

/// Environment an action function executes against.
///
/// Slot numbers are assigned by the `eden-lang` compiler from the state
/// schema; the enclave binds the same schema, so both sides agree on the
/// layout without shipping names to the data plane.
pub trait Host {
    /// Read packet field `slot` (HeaderMap-resolved by the enclave).
    fn load_pkt(&mut self, slot: u8) -> Result<i64, VmError>;
    /// Write packet field `slot`.
    fn store_pkt(&mut self, slot: u8, value: i64) -> Result<(), VmError>;
    /// Read per-message state field `slot`.
    fn load_msg(&mut self, slot: u8) -> Result<i64, VmError>;
    /// Write per-message state field `slot`.
    fn store_msg(&mut self, slot: u8, value: i64) -> Result<(), VmError>;
    /// Read global state field `slot`.
    fn load_glob(&mut self, slot: u8) -> Result<i64, VmError>;
    /// Write global state field `slot`.
    fn store_glob(&mut self, slot: u8, value: i64) -> Result<(), VmError>;
    /// Read `array[index]` from global array `array`.
    fn arr_load(&mut self, array: u8, index: i64) -> Result<i64, VmError>;
    /// Write `array[index]` of global array `array`.
    fn arr_store(&mut self, array: u8, index: i64, value: i64) -> Result<(), VmError>;
    /// Element count of global array `array`.
    fn arr_len(&mut self, array: u8) -> Result<i64, VmError>;
    /// A uniformly distributed non-negative random value.
    fn rand64(&mut self) -> i64;
    /// High-frequency clock in nanoseconds. In the simulator this is virtual
    /// time, which keeps whole experiments deterministic.
    fn now_ns(&mut self) -> i64;
    /// Record a packet-disposition side effect. `Drop`, `ToController` and
    /// `GotoTable` terminate the program; `SetQueue` does not.
    fn effect(&mut self, effect: Effect) -> Result<(), VmError>;
}

/// A vector-backed [`Host`] for tests and microbenchmarks.
///
/// State scopes are plain `Vec<i64>`; unknown slots trap exactly like the
/// real enclave host. Randomness is a self-contained SplitMix64 so the crate
/// stays dependency-free; the clock ticks 1 ns per call.
#[derive(Debug, Clone)]
pub struct VecHost {
    /// Packet field values, indexed by slot.
    pub packet: Vec<i64>,
    /// Message state values, indexed by slot.
    pub msg: Vec<i64>,
    /// Global state values, indexed by slot.
    pub global: Vec<i64>,
    /// Global arrays, indexed by array id.
    pub arrays: Vec<Vec<i64>>,
    /// Slots that reject writes, as `(scope, slot)` — mirrors the schema's
    /// ReadOnly annotations for tests.
    pub read_only: Vec<(StateScope, u8)>,
    /// Effects recorded so far, in order.
    pub effects: Vec<Effect>,
    /// Current clock value; incremented on every `now_ns` call.
    pub clock: i64,
    rng_state: u64,
}

impl Default for VecHost {
    fn default() -> Self {
        VecHost {
            packet: Vec::new(),
            msg: Vec::new(),
            global: Vec::new(),
            arrays: Vec::new(),
            read_only: Vec::new(),
            effects: Vec::new(),
            clock: 0,
            rng_state: 0x9E3779B97F4A7C15,
        }
    }
}

impl VecHost {
    /// Create a host with the given number of zeroed slots per scope.
    pub fn with_slots(packet: usize, msg: usize, global: usize) -> Self {
        VecHost {
            packet: vec![0; packet],
            msg: vec![0; msg],
            global: vec![0; global],
            ..Self::default()
        }
    }

    /// Reseed the internal RNG (deterministic sequences in tests).
    pub fn seed(&mut self, seed: u64) {
        self.rng_state = seed | 1;
    }

    fn get(v: &[i64], scope: StateScope, slot: u8) -> Result<i64, VmError> {
        v.get(slot as usize)
            .copied()
            .ok_or(VmError::BadStateSlot { scope, slot })
    }

    fn set(
        v: &mut [i64],
        ro: &[(StateScope, u8)],
        scope: StateScope,
        slot: u8,
        value: i64,
    ) -> Result<(), VmError> {
        if ro.contains(&(scope, slot)) {
            return Err(VmError::ReadOnlyViolation { scope, slot });
        }
        match v.get_mut(slot as usize) {
            Some(p) => {
                *p = value;
                Ok(())
            }
            None => Err(VmError::BadStateSlot { scope, slot }),
        }
    }
}

impl Host for VecHost {
    fn load_pkt(&mut self, slot: u8) -> Result<i64, VmError> {
        Self::get(&self.packet, StateScope::Packet, slot)
    }

    fn store_pkt(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        Self::set(
            &mut self.packet,
            &self.read_only,
            StateScope::Packet,
            slot,
            value,
        )
    }

    fn load_msg(&mut self, slot: u8) -> Result<i64, VmError> {
        Self::get(&self.msg, StateScope::Message, slot)
    }

    fn store_msg(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        Self::set(
            &mut self.msg,
            &self.read_only,
            StateScope::Message,
            slot,
            value,
        )
    }

    fn load_glob(&mut self, slot: u8) -> Result<i64, VmError> {
        Self::get(&self.global, StateScope::Global, slot)
    }

    fn store_glob(&mut self, slot: u8, value: i64) -> Result<(), VmError> {
        Self::set(
            &mut self.global,
            &self.read_only,
            StateScope::Global,
            slot,
            value,
        )
    }

    fn arr_load(&mut self, array: u8, index: i64) -> Result<i64, VmError> {
        let arr = self
            .arrays
            .get(array as usize)
            .ok_or(VmError::BadArrayAccess { array, index })?;
        usize::try_from(index)
            .ok()
            .and_then(|i| arr.get(i))
            .copied()
            .ok_or(VmError::BadArrayAccess { array, index })
    }

    fn arr_store(&mut self, array: u8, index: i64, value: i64) -> Result<(), VmError> {
        let arr = self
            .arrays
            .get_mut(array as usize)
            .ok_or(VmError::BadArrayAccess { array, index })?;
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| arr.get_mut(i))
            .ok_or(VmError::BadArrayAccess { array, index })?;
        *slot = value;
        Ok(())
    }

    fn arr_len(&mut self, array: u8) -> Result<i64, VmError> {
        self.arrays
            .get(array as usize)
            .map(|a| a.len() as i64)
            .ok_or(VmError::BadArrayAccess { array, index: -1 })
    }

    fn rand64(&mut self) -> i64 {
        // SplitMix64, masked to non-negative.
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) & (i64::MAX as u64)) as i64
    }

    fn now_ns(&mut self) -> i64 {
        self.clock += 1;
        self.clock
    }

    fn effect(&mut self, effect: Effect) -> Result<(), VmError> {
        if let Effect::SetQueue { queue, .. } = effect {
            if queue < 0 {
                return Err(VmError::BadQueue(queue));
            }
        }
        if let Effect::GotoTable { table } = effect {
            if table < 0 || table > u8::MAX as i64 {
                return Err(VmError::BadTable(table));
            }
        }
        self.effects.push(effect);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_slot_traps() {
        let mut h = VecHost::with_slots(1, 0, 0);
        assert!(h.load_pkt(0).is_ok());
        assert_eq!(
            h.load_pkt(1),
            Err(VmError::BadStateSlot {
                scope: StateScope::Packet,
                slot: 1
            })
        );
    }

    #[test]
    fn read_only_slots_reject_writes() {
        let mut h = VecHost::with_slots(2, 0, 0);
        h.read_only.push((StateScope::Packet, 0));
        assert!(h.store_pkt(1, 5).is_ok());
        assert_eq!(
            h.store_pkt(0, 5),
            Err(VmError::ReadOnlyViolation {
                scope: StateScope::Packet,
                slot: 0
            })
        );
    }

    #[test]
    fn array_bounds() {
        let mut h = VecHost::default();
        h.arrays.push(vec![10, 20, 30]);
        assert_eq!(h.arr_load(0, 2).unwrap(), 30);
        assert!(h.arr_load(0, 3).is_err());
        assert!(h.arr_load(0, -1).is_err());
        assert!(h.arr_load(1, 0).is_err());
        assert_eq!(h.arr_len(0).unwrap(), 3);
    }

    #[test]
    fn rand_is_deterministic_under_seed() {
        let mut a = VecHost::default();
        let mut b = VecHost::default();
        a.seed(7);
        b.seed(7);
        let xs: Vec<i64> = (0..4).map(|_| a.rand64()).collect();
        let ys: Vec<i64> = (0..4).map(|_| b.rand64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x >= 0));
    }

    #[test]
    fn bad_queue_and_table_rejected() {
        let mut h = VecHost::default();
        assert_eq!(
            h.effect(Effect::SetQueue {
                queue: -1,
                charge: 0
            }),
            Err(VmError::BadQueue(-1))
        );
        assert_eq!(
            h.effect(Effect::GotoTable { table: 300 }),
            Err(VmError::BadTable(300))
        );
    }
}
