//! Resource budgets and usage accounting.
//!
//! §5.4 of the paper: "the (operand) stack and heap space of the interpreter
//! are in the order of 64 and 256 bytes respectively" for the case-study
//! programs. §6: the enclave "can, in principle, limit the amount of
//! resources (memory and computational cycles) used by an action function",
//! but the authors "chose not to restrict the complexity of the computation"
//! — the administrator decides. We expose all three budgets; the instruction
//! budget (`fuel`) defaults to unlimited to match the paper's stance, while
//! stack and heap default to generous multiples of the paper's footprint.

/// Resource limits for one action-function execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum operand-stack depth, in 8-byte slots.
    pub max_stack: usize,
    /// Maximum total locals across all live frames, in 8-byte slots. This is
    /// the interpreter's "heap" in the paper's terminology: all
    /// function-local state lives here.
    pub max_heap_slots: usize,
    /// Maximum call-frame depth (the paper's programs are small; recursion
    /// is expected to be compiled to loops when it is tail recursion).
    pub max_call_depth: usize,
    /// Optional instruction budget. `None` (the default) reproduces the
    /// paper's choice of not capping data-plane computation.
    pub fuel: Option<u64>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            // 64 slots = 512 B; the paper's programs used ~8 slots (64 B).
            max_stack: 64,
            // 256 slots = 2 KiB; the paper's programs used ~32 slots (256 B).
            max_heap_slots: 256,
            max_call_depth: 16,
            fuel: None,
        }
    }
}

impl Limits {
    /// The paper's reported footprint: 64-byte operand stack, 256-byte heap
    /// (8 and 32 slots). Useful for demonstrating that the case-study
    /// programs really fit (§5.4) and in tests.
    pub fn paper_footprint() -> Self {
        Limits {
            max_stack: 8,
            max_heap_slots: 32,
            max_call_depth: 8,
            fuel: None,
        }
    }

    /// A hardened profile for untrusted tenant programs: small memory plus a
    /// bounded instruction budget.
    pub fn strict() -> Self {
        Limits {
            max_stack: 32,
            max_heap_slots: 128,
            max_call_depth: 8,
            fuel: Some(100_000),
        }
    }
}

/// High-water marks observed during execution; reset per run.
///
/// The `fig12` harness reads these to reproduce the paper's §5.4 footprint
/// numbers for our ports of the case-study programs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Deepest operand stack reached, in slots.
    pub peak_stack: usize,
    /// Most locals live at once across all frames, in slots.
    pub peak_heap_slots: usize,
    /// Deepest call nesting reached.
    pub peak_call_depth: usize,
    /// Instructions executed.
    pub steps: u64,
}

impl Usage {
    /// Stack high-water mark in bytes (8-byte slots).
    pub fn peak_stack_bytes(&self) -> usize {
        self.peak_stack * 8
    }

    /// Heap high-water mark in bytes (8-byte slots).
    pub fn peak_heap_bytes(&self) -> usize {
        self.peak_heap_slots * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let l = Limits::default();
        assert!(l.max_stack >= 8);
        assert!(l.max_heap_slots >= 32);
        assert!(l.fuel.is_none());
    }

    #[test]
    fn default_budgets_are_pinned() {
        // The fused interpreter must stay inside the same budgets as the
        // plain one — superinstructions shrink stack traffic, they may not
        // buy headroom by quietly growing these. Changing either number is
        // a deliberate, reviewed decision, not a side effect.
        let l = Limits::default();
        assert_eq!(l.max_stack, 64, "operand-stack budget changed");
        assert_eq!(l.max_heap_slots, 256, "heap budget changed");
        assert_eq!(l.max_call_depth, 16, "call-depth budget changed");
        assert_eq!(l.fuel, None, "default fuel changed");
        let strict = Limits::strict();
        assert_eq!(
            (
                strict.max_stack,
                strict.max_heap_slots,
                strict.max_call_depth
            ),
            (32, 128, 8)
        );
        assert_eq!(strict.fuel, Some(100_000));
    }

    #[test]
    fn paper_footprint_matches_section_5_4() {
        let l = Limits::paper_footprint();
        assert_eq!(l.max_stack * 8, 64);
        assert_eq!(l.max_heap_slots * 8, 256);
    }

    #[test]
    fn usage_bytes() {
        let u = Usage {
            peak_stack: 5,
            peak_heap_slots: 10,
            peak_call_depth: 2,
            steps: 100,
        };
        assert_eq!(u.peak_stack_bytes(), 40);
        assert_eq!(u.peak_heap_bytes(), 80);
    }
}
