//! Bytecode instruction set.
//!
//! The paper models its interpreter on a subset of the JVM: "basic load and
//! store, arithmetic, branches, and conditionals", plus "a limited set of
//! basic functions, such as picking random numbers and accessing a
//! high-frequency clock" implemented as opcodes. We mirror that set, with
//! three scoped state spaces (packet / message / global) instead of the
//! JVM's object model — the scopes correspond to the three parameters of
//! every action function (`packet`, `msg`, `_global`) and to the state
//! lifetimes of §3.4.4.

use std::fmt;

/// Comparison selector carried by the fused compare-and-branch ops.
///
/// Kept out of the opcode space so one `CmpBr`/`PushCmpBr` kind covers all
/// six relations — the interpreter pays one dispatch either way and the
/// opcode histogram stays readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    /// Evaluate `a ⟨cmp⟩ b`.
    #[inline(always)]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }

    /// The relation that holds exactly when `self` does not.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// Mnemonic suffix used by `Display` and the disassembler.
    pub fn name(self) -> &'static str {
        match self {
            Cmp::Eq => "eq",
            Cmp::Ne => "ne",
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        }
    }

    /// Wire byte for the codec (dense, `0..6`).
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            Cmp::Eq => 0,
            Cmp::Ne => 1,
            Cmp::Lt => 2,
            Cmp::Le => 3,
            Cmp::Gt => 4,
            Cmp::Ge => 5,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<Cmp> {
        Some(match b {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::Lt,
            3 => Cmp::Le,
            4 => Cmp::Gt,
            5 => Cmp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single VM instruction.
///
/// Jump targets are absolute instruction indices. Slot operands index into
/// the flattened field layout computed by the `eden-lang` compiler from the
/// state schema; array ids index the global array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    // --- constants & operand-stack shuffling ---------------------------
    /// Push an immediate integer.
    Push(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top stack values.
    Swap,

    // --- locals (per-frame registers) ----------------------------------
    /// Push local `slot` of the current frame.
    LoadLocal(u8),
    /// Pop into local `slot` of the current frame.
    StoreLocal(u8),

    // --- scoped state ---------------------------------------------------
    /// Push packet field `slot` (resolved via the schema's HeaderMap).
    LoadPkt(u8),
    /// Pop into packet field `slot`.
    StorePkt(u8),
    /// Push per-message state field `slot`.
    LoadMsg(u8),
    /// Pop into per-message state field `slot`.
    StoreMsg(u8),
    /// Push global state field `slot`.
    LoadGlob(u8),
    /// Pop into global state field `slot`.
    StoreGlob(u8),

    // --- global arrays ---------------------------------------------------
    /// Pop index, push `array[index]` of global array `id`.
    ArrLoad(u8),
    /// Pop value then index, store into global array `id`.
    ArrStore(u8),
    /// Push the element count of global array `id`.
    ArrLen(u8),

    // --- arithmetic / logic (operate on i64, wrap like release Rust) ----
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero is a trapped [`VmError::DivideByZero`](crate::VmError).
    Div,
    /// Signed remainder; rem by zero traps like [`Op::Div`].
    Rem,
    Neg,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,

    // --- comparisons (push 1 or 0) ---------------------------------------
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,

    // --- control flow -----------------------------------------------------
    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Pop; jump if non-zero.
    JmpIf(u32),
    /// Pop; jump if zero.
    JmpIfNot(u32),
    /// Call function `id` from the program's function table. Arguments are
    /// popped from the operand stack into the callee's first locals
    /// (argument 0 is popped last, so callers push arguments left to right).
    Call(u16),
    /// Return from the current function; the callee's top of stack (its
    /// result) is pushed onto the caller's stack.
    Ret,
    /// Stop execution; the packet proceeds with whatever state/header
    /// mutations have been applied.
    Halt,

    // --- builtins ("basic functions ... implemented as op-codes") --------
    /// Push a uniformly random non-negative i64 from the host.
    Rand,
    /// Pop `n`, push a uniform value in `[0, n)`; traps if `n <= 0`.
    RandRange,
    /// Push the host's high-frequency clock, in nanoseconds.
    Now,
    /// Pop two values, push a 63-bit mix hash of them.
    Hash,

    // --- packet disposition side effects ---------------------------------
    /// Drop the packet and stop execution.
    Drop,
    /// Pop `charge` then `queue`: direct the packet to rate-limited queue
    /// `queue`, charging it `charge` bytes (Pulsar-style; §2.1.2).
    SetQueue,
    /// Forward the packet to the controller and stop (the OpenFlow-style
    /// punt path).
    ToController,
    /// Pop `table`: continue matching in enclave table `table` after this
    /// function finishes.
    GotoTable,

    // --- superinstructions (codec v2) -------------------------------------
    // Fused forms the IR peephole pass emits so the hot interpreter loop
    // dispatches once where the naive stream would dispatch two or three
    // times — the operand never round-trips through the stack.
    /// Add an immediate to the top of stack in place (`Push v; Add`).
    AddImm(i64),
    /// Multiply the top of stack by an immediate in place (`Push v; Mul`).
    MulImm(i64),
    /// Push `pkt[slot] + v` (`LoadPkt s; Push v; Add`).
    LoadPktAddImm(u8, i64),
    /// Push `pkt[slot] * v` (`LoadPkt s; Push v; Mul`).
    LoadPktMulImm(u8, i64),
    /// `local[slot] += v` without touching the stack
    /// (`LoadLocal s; Push v; Add; StoreLocal s`).
    IncrLocal(u8, i64),
    /// `msg[slot] += v` without touching the stack.
    IncrMsg(u8, i64),
    /// `glob[slot] += v` without touching the stack.
    IncrGlob(u8, i64),
    /// Pop `b` then `a`; jump if `a ⟨cmp⟩ b` (`⟨cmp⟩; JmpIf t`).
    CmpBr(Cmp, u32),
    /// Pop `a`; jump if `a ⟨cmp⟩ v` (`Push v; ⟨cmp⟩; JmpIf t`).
    PushCmpBr(Cmp, i64, u32),
}

/// Mnemonics indexed by [`Op::kind_index`], in declaration order.
const KIND_NAMES: [&str; Op::KIND_COUNT] = [
    "push",
    "dup",
    "pop",
    "swap",
    "lload",
    "lstore",
    "pload",
    "pstore",
    "mload",
    "mstore",
    "gload",
    "gstore",
    "aload",
    "astore",
    "alen",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "and",
    "or",
    "xor",
    "not",
    "shl",
    "shr",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "jmp",
    "jmpif",
    "jmpifnot",
    "call",
    "ret",
    "halt",
    "rand",
    "randrange",
    "now",
    "hash",
    "drop",
    "setqueue",
    "tocontroller",
    "gototable",
    "addimm",
    "mulimm",
    "ploadadd",
    "ploadmul",
    "lincr",
    "mincr",
    "gincr",
    "cmpbr",
    "pushcmpbr",
];

impl Op {
    /// Number of opcode kinds — the size of a per-opcode histogram.
    pub const KIND_COUNT: usize = 56;

    /// Dense index of this op's kind (operands ignored), in declaration
    /// order; always `< KIND_COUNT`. Used by the interpreter's optional
    /// per-opcode profiling histogram.
    pub fn kind_index(&self) -> usize {
        use Op::*;
        match self {
            Push(_) => 0,
            Dup => 1,
            Pop => 2,
            Swap => 3,
            LoadLocal(_) => 4,
            StoreLocal(_) => 5,
            LoadPkt(_) => 6,
            StorePkt(_) => 7,
            LoadMsg(_) => 8,
            StoreMsg(_) => 9,
            LoadGlob(_) => 10,
            StoreGlob(_) => 11,
            ArrLoad(_) => 12,
            ArrStore(_) => 13,
            ArrLen(_) => 14,
            Add => 15,
            Sub => 16,
            Mul => 17,
            Div => 18,
            Rem => 19,
            Neg => 20,
            And => 21,
            Or => 22,
            Xor => 23,
            Not => 24,
            Shl => 25,
            Shr => 26,
            Eq => 27,
            Ne => 28,
            Lt => 29,
            Le => 30,
            Gt => 31,
            Ge => 32,
            Jmp(_) => 33,
            JmpIf(_) => 34,
            JmpIfNot(_) => 35,
            Call(_) => 36,
            Ret => 37,
            Halt => 38,
            Rand => 39,
            RandRange => 40,
            Now => 41,
            Hash => 42,
            Drop => 43,
            SetQueue => 44,
            ToController => 45,
            GotoTable => 46,
            AddImm(_) => 47,
            MulImm(_) => 48,
            LoadPktAddImm(..) => 49,
            LoadPktMulImm(..) => 50,
            IncrLocal(..) => 51,
            IncrMsg(..) => 52,
            IncrGlob(..) => 53,
            CmpBr(..) => 54,
            PushCmpBr(..) => 55,
        }
    }

    /// Mnemonic for a kind index (panics if `index >= KIND_COUNT`).
    pub fn kind_name(index: usize) -> &'static str {
        KIND_NAMES[index]
    }

    /// Net change this op applies to the operand stack depth, used by the
    /// verifier. `Call` is handled separately (depends on arity).
    pub(crate) fn stack_delta(&self) -> i32 {
        use Op::*;
        match self {
            Push(_) | Dup | LoadLocal(_) | LoadPkt(_) | LoadMsg(_) | LoadGlob(_) | ArrLen(_)
            | Rand | Now | LoadPktAddImm(..) | LoadPktMulImm(..) => 1,
            Pop | StoreLocal(_) | StorePkt(_) | StoreMsg(_) | StoreGlob(_) | Add | Sub | Mul
            | Div | Rem | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge | JmpIf(_)
            | JmpIfNot(_) | Hash | GotoTable | PushCmpBr(..) => -1,
            ArrStore(_) | SetQueue | CmpBr(..) => -2,
            Swap | Neg | Not | ArrLoad(_) | Jmp(_) | Halt | Drop | ToController | RandRange
            | AddImm(_) | MulImm(_) | IncrLocal(..) | IncrMsg(..) | IncrGlob(..) => 0,
            Call(_) | Ret => 0, // handled by the verifier explicitly
        }
    }

    /// Minimum operand-stack depth required before executing this op.
    pub(crate) fn stack_need(&self) -> i32 {
        use Op::*;
        match self {
            Push(_) | LoadLocal(_) | LoadPkt(_) | LoadMsg(_) | LoadGlob(_) | ArrLen(_) | Rand
            | Now | Jmp(_) | Halt | ToController | Drop | LoadPktAddImm(..) | LoadPktMulImm(..)
            | IncrLocal(..) | IncrMsg(..) | IncrGlob(..) => 0,
            Dup | Pop | StoreLocal(_) | StorePkt(_) | StoreMsg(_) | StoreGlob(_) | ArrLoad(_)
            | Neg | Not | JmpIf(_) | JmpIfNot(_) | RandRange | GotoTable | AddImm(_)
            | MulImm(_) | PushCmpBr(..) => 1,
            Swap | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le
            | Gt | Ge | Hash | SetQueue | CmpBr(..) => 2,
            ArrStore(_) => 2,
            Call(_) | Ret => 0, // handled by the verifier explicitly
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self {
            Push(v) => write!(f, "push {v}"),
            Dup => write!(f, "dup"),
            Pop => write!(f, "pop"),
            Swap => write!(f, "swap"),
            LoadLocal(s) => write!(f, "lload {s}"),
            StoreLocal(s) => write!(f, "lstore {s}"),
            LoadPkt(s) => write!(f, "pload {s}"),
            StorePkt(s) => write!(f, "pstore {s}"),
            LoadMsg(s) => write!(f, "mload {s}"),
            StoreMsg(s) => write!(f, "mstore {s}"),
            LoadGlob(s) => write!(f, "gload {s}"),
            StoreGlob(s) => write!(f, "gstore {s}"),
            ArrLoad(a) => write!(f, "aload {a}"),
            ArrStore(a) => write!(f, "astore {a}"),
            ArrLen(a) => write!(f, "alen {a}"),
            Add => write!(f, "add"),
            Sub => write!(f, "sub"),
            Mul => write!(f, "mul"),
            Div => write!(f, "div"),
            Rem => write!(f, "rem"),
            Neg => write!(f, "neg"),
            And => write!(f, "and"),
            Or => write!(f, "or"),
            Xor => write!(f, "xor"),
            Not => write!(f, "not"),
            Shl => write!(f, "shl"),
            Shr => write!(f, "shr"),
            Eq => write!(f, "eq"),
            Ne => write!(f, "ne"),
            Lt => write!(f, "lt"),
            Le => write!(f, "le"),
            Gt => write!(f, "gt"),
            Ge => write!(f, "ge"),
            Jmp(t) => write!(f, "jmp {t}"),
            JmpIf(t) => write!(f, "jmpif {t}"),
            JmpIfNot(t) => write!(f, "jmpifnot {t}"),
            Call(id) => write!(f, "call {id}"),
            Ret => write!(f, "ret"),
            Halt => write!(f, "halt"),
            Rand => write!(f, "rand"),
            RandRange => write!(f, "randrange"),
            Now => write!(f, "now"),
            Hash => write!(f, "hash"),
            Drop => write!(f, "drop"),
            SetQueue => write!(f, "setqueue"),
            ToController => write!(f, "tocontroller"),
            GotoTable => write!(f, "gototable"),
            AddImm(v) => write!(f, "addimm {v}"),
            MulImm(v) => write!(f, "mulimm {v}"),
            LoadPktAddImm(s, v) => write!(f, "ploadadd {s} {v}"),
            LoadPktMulImm(s, v) => write!(f, "ploadmul {s} {v}"),
            IncrLocal(s, v) => write!(f, "lincr {s} {v}"),
            IncrMsg(s, v) => write!(f, "mincr {s} {v}"),
            IncrGlob(s, v) => write!(f, "gincr {s} {v}"),
            CmpBr(c, t) => write!(f, "cmpbr {c} {t}"),
            PushCmpBr(c, v, t) => write!(f, "pushcmpbr {c} {v} {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lossless_enough_for_disasm() {
        assert_eq!(Op::Push(-3).to_string(), "push -3");
        assert_eq!(Op::JmpIfNot(7).to_string(), "jmpifnot 7");
        assert_eq!(Op::ArrLen(2).to_string(), "alen 2");
    }

    #[test]
    fn kind_index_is_dense_and_named() {
        let ops = [
            Op::Push(0),
            Op::Dup,
            Op::Pop,
            Op::Swap,
            Op::LoadLocal(0),
            Op::StoreLocal(0),
            Op::LoadPkt(0),
            Op::StorePkt(0),
            Op::LoadMsg(0),
            Op::StoreMsg(0),
            Op::LoadGlob(0),
            Op::StoreGlob(0),
            Op::ArrLoad(0),
            Op::ArrStore(0),
            Op::ArrLen(0),
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Shl,
            Op::Shr,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Jmp(0),
            Op::JmpIf(0),
            Op::JmpIfNot(0),
            Op::Call(0),
            Op::Ret,
            Op::Halt,
            Op::Rand,
            Op::RandRange,
            Op::Now,
            Op::Hash,
            Op::Drop,
            Op::SetQueue,
            Op::ToController,
            Op::GotoTable,
            Op::AddImm(0),
            Op::MulImm(0),
            Op::LoadPktAddImm(0, 0),
            Op::LoadPktMulImm(0, 0),
            Op::IncrLocal(0, 0),
            Op::IncrMsg(0, 0),
            Op::IncrGlob(0, 0),
            Op::CmpBr(Cmp::Eq, 0),
            Op::PushCmpBr(Cmp::Eq, 0, 0),
        ];
        assert_eq!(ops.len(), Op::KIND_COUNT);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.kind_index(), i, "kind_index out of order for {op}");
            // the mnemonic is the first token of the Display form
            let display = op.to_string();
            let mnemonic = display.split(' ').next().unwrap();
            assert_eq!(Op::kind_name(i), mnemonic);
        }
    }

    #[test]
    fn stack_deltas_match_needs() {
        // every op must be executable when the stack holds exactly
        // `stack_need` values, and may not underflow.
        for op in [
            Op::Add,
            Op::Dup,
            Op::SetQueue,
            Op::ArrStore(0),
            Op::Hash,
            Op::AddImm(1),
            Op::CmpBr(Cmp::Lt, 0),
            Op::PushCmpBr(Cmp::Ge, 1, 0),
        ] {
            assert!(op.stack_need() >= -op.stack_delta());
        }
    }

    #[test]
    fn fused_op_semantics_are_declared_consistently() {
        // each fused op's (need, delta) must equal the sum of the sequence
        // it replaces, so the verifier sees identical dataflow either way.
        let fusions: [(Op, &[Op]); 9] = [
            (Op::AddImm(3), &[Op::Push(3), Op::Add]),
            (Op::MulImm(3), &[Op::Push(3), Op::Mul]),
            (
                Op::LoadPktAddImm(0, 3),
                &[Op::LoadPkt(0), Op::Push(3), Op::Add],
            ),
            (
                Op::LoadPktMulImm(0, 3),
                &[Op::LoadPkt(0), Op::Push(3), Op::Mul],
            ),
            (
                Op::IncrLocal(0, 1),
                &[Op::LoadLocal(0), Op::Push(1), Op::Add, Op::StoreLocal(0)],
            ),
            (
                Op::IncrMsg(0, 1),
                &[Op::LoadMsg(0), Op::Push(1), Op::Add, Op::StoreMsg(0)],
            ),
            (
                Op::IncrGlob(0, 1),
                &[Op::LoadGlob(0), Op::Push(1), Op::Add, Op::StoreGlob(0)],
            ),
            (Op::CmpBr(Cmp::Lt, 9), &[Op::Lt, Op::JmpIf(9)]),
            (
                Op::PushCmpBr(Cmp::Lt, 3, 9),
                &[Op::Push(3), Op::Lt, Op::JmpIf(9)],
            ),
        ];
        for (fused, seq) in fusions {
            let delta: i32 = seq.iter().map(|o| o.stack_delta()).sum();
            assert_eq!(fused.stack_delta(), delta, "delta mismatch for {fused}");
            let mut depth = 0i32;
            let mut need = 0i32;
            for o in seq {
                need = need.max(o.stack_need() - depth);
                depth += o.stack_delta();
            }
            assert_eq!(fused.stack_need(), need, "need mismatch for {fused}");
        }
    }

    #[test]
    fn cmp_negate_is_an_involution_and_inverts_eval() {
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5), (i64::MIN, i64::MAX)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c} at ({a},{b})");
            }
        }
    }
}
