//! Bytecode instruction set.
//!
//! The paper models its interpreter on a subset of the JVM: "basic load and
//! store, arithmetic, branches, and conditionals", plus "a limited set of
//! basic functions, such as picking random numbers and accessing a
//! high-frequency clock" implemented as opcodes. We mirror that set, with
//! three scoped state spaces (packet / message / global) instead of the
//! JVM's object model — the scopes correspond to the three parameters of
//! every action function (`packet`, `msg`, `_global`) and to the state
//! lifetimes of §3.4.4.

use std::fmt;

/// A single VM instruction.
///
/// Jump targets are absolute instruction indices. Slot operands index into
/// the flattened field layout computed by the `eden-lang` compiler from the
/// state schema; array ids index the global array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    // --- constants & operand-stack shuffling ---------------------------
    /// Push an immediate integer.
    Push(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top stack values.
    Swap,

    // --- locals (per-frame registers) ----------------------------------
    /// Push local `slot` of the current frame.
    LoadLocal(u8),
    /// Pop into local `slot` of the current frame.
    StoreLocal(u8),

    // --- scoped state ---------------------------------------------------
    /// Push packet field `slot` (resolved via the schema's HeaderMap).
    LoadPkt(u8),
    /// Pop into packet field `slot`.
    StorePkt(u8),
    /// Push per-message state field `slot`.
    LoadMsg(u8),
    /// Pop into per-message state field `slot`.
    StoreMsg(u8),
    /// Push global state field `slot`.
    LoadGlob(u8),
    /// Pop into global state field `slot`.
    StoreGlob(u8),

    // --- global arrays ---------------------------------------------------
    /// Pop index, push `array[index]` of global array `id`.
    ArrLoad(u8),
    /// Pop value then index, store into global array `id`.
    ArrStore(u8),
    /// Push the element count of global array `id`.
    ArrLen(u8),

    // --- arithmetic / logic (operate on i64, wrap like release Rust) ----
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero is a trapped [`VmError::DivideByZero`](crate::VmError).
    Div,
    /// Signed remainder; rem by zero traps like [`Op::Div`].
    Rem,
    Neg,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,

    // --- comparisons (push 1 or 0) ---------------------------------------
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,

    // --- control flow -----------------------------------------------------
    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Pop; jump if non-zero.
    JmpIf(u32),
    /// Pop; jump if zero.
    JmpIfNot(u32),
    /// Call function `id` from the program's function table. Arguments are
    /// popped from the operand stack into the callee's first locals
    /// (argument 0 is popped last, so callers push arguments left to right).
    Call(u16),
    /// Return from the current function; the callee's top of stack (its
    /// result) is pushed onto the caller's stack.
    Ret,
    /// Stop execution; the packet proceeds with whatever state/header
    /// mutations have been applied.
    Halt,

    // --- builtins ("basic functions ... implemented as op-codes") --------
    /// Push a uniformly random non-negative i64 from the host.
    Rand,
    /// Pop `n`, push a uniform value in `[0, n)`; traps if `n <= 0`.
    RandRange,
    /// Push the host's high-frequency clock, in nanoseconds.
    Now,
    /// Pop two values, push a 63-bit mix hash of them.
    Hash,

    // --- packet disposition side effects ---------------------------------
    /// Drop the packet and stop execution.
    Drop,
    /// Pop `charge` then `queue`: direct the packet to rate-limited queue
    /// `queue`, charging it `charge` bytes (Pulsar-style; §2.1.2).
    SetQueue,
    /// Forward the packet to the controller and stop (the OpenFlow-style
    /// punt path).
    ToController,
    /// Pop `table`: continue matching in enclave table `table` after this
    /// function finishes.
    GotoTable,
}

/// Mnemonics indexed by [`Op::kind_index`], in declaration order.
const KIND_NAMES: [&str; Op::KIND_COUNT] = [
    "push",
    "dup",
    "pop",
    "swap",
    "lload",
    "lstore",
    "pload",
    "pstore",
    "mload",
    "mstore",
    "gload",
    "gstore",
    "aload",
    "astore",
    "alen",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "and",
    "or",
    "xor",
    "not",
    "shl",
    "shr",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "jmp",
    "jmpif",
    "jmpifnot",
    "call",
    "ret",
    "halt",
    "rand",
    "randrange",
    "now",
    "hash",
    "drop",
    "setqueue",
    "tocontroller",
    "gototable",
];

impl Op {
    /// Number of opcode kinds — the size of a per-opcode histogram.
    pub const KIND_COUNT: usize = 47;

    /// Dense index of this op's kind (operands ignored), in declaration
    /// order; always `< KIND_COUNT`. Used by the interpreter's optional
    /// per-opcode profiling histogram.
    pub fn kind_index(&self) -> usize {
        use Op::*;
        match self {
            Push(_) => 0,
            Dup => 1,
            Pop => 2,
            Swap => 3,
            LoadLocal(_) => 4,
            StoreLocal(_) => 5,
            LoadPkt(_) => 6,
            StorePkt(_) => 7,
            LoadMsg(_) => 8,
            StoreMsg(_) => 9,
            LoadGlob(_) => 10,
            StoreGlob(_) => 11,
            ArrLoad(_) => 12,
            ArrStore(_) => 13,
            ArrLen(_) => 14,
            Add => 15,
            Sub => 16,
            Mul => 17,
            Div => 18,
            Rem => 19,
            Neg => 20,
            And => 21,
            Or => 22,
            Xor => 23,
            Not => 24,
            Shl => 25,
            Shr => 26,
            Eq => 27,
            Ne => 28,
            Lt => 29,
            Le => 30,
            Gt => 31,
            Ge => 32,
            Jmp(_) => 33,
            JmpIf(_) => 34,
            JmpIfNot(_) => 35,
            Call(_) => 36,
            Ret => 37,
            Halt => 38,
            Rand => 39,
            RandRange => 40,
            Now => 41,
            Hash => 42,
            Drop => 43,
            SetQueue => 44,
            ToController => 45,
            GotoTable => 46,
        }
    }

    /// Mnemonic for a kind index (panics if `index >= KIND_COUNT`).
    pub fn kind_name(index: usize) -> &'static str {
        KIND_NAMES[index]
    }

    /// Net change this op applies to the operand stack depth, used by the
    /// verifier. `Call` is handled separately (depends on arity).
    pub(crate) fn stack_delta(&self) -> i32 {
        use Op::*;
        match self {
            Push(_) | Dup | LoadLocal(_) | LoadPkt(_) | LoadMsg(_) | LoadGlob(_) | ArrLen(_)
            | Rand | Now => 1,
            Pop | StoreLocal(_) | StorePkt(_) | StoreMsg(_) | StoreGlob(_) | Add | Sub | Mul
            | Div | Rem | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge | JmpIf(_)
            | JmpIfNot(_) | Hash | GotoTable => -1,
            ArrStore(_) | SetQueue => -2,
            Swap | Neg | Not | ArrLoad(_) | Jmp(_) | Halt | Drop | ToController | RandRange => 0,
            Call(_) | Ret => 0, // handled by the verifier explicitly
        }
    }

    /// Minimum operand-stack depth required before executing this op.
    pub(crate) fn stack_need(&self) -> i32 {
        use Op::*;
        match self {
            Push(_) | LoadLocal(_) | LoadPkt(_) | LoadMsg(_) | LoadGlob(_) | ArrLen(_) | Rand
            | Now | Jmp(_) | Halt | ToController | Drop => 0,
            Dup | Pop | StoreLocal(_) | StorePkt(_) | StoreMsg(_) | StoreGlob(_) | ArrLoad(_)
            | Neg | Not | JmpIf(_) | JmpIfNot(_) | RandRange | GotoTable => 1,
            Swap | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le
            | Gt | Ge | Hash | SetQueue => 2,
            ArrStore(_) => 2,
            Call(_) | Ret => 0, // handled by the verifier explicitly
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self {
            Push(v) => write!(f, "push {v}"),
            Dup => write!(f, "dup"),
            Pop => write!(f, "pop"),
            Swap => write!(f, "swap"),
            LoadLocal(s) => write!(f, "lload {s}"),
            StoreLocal(s) => write!(f, "lstore {s}"),
            LoadPkt(s) => write!(f, "pload {s}"),
            StorePkt(s) => write!(f, "pstore {s}"),
            LoadMsg(s) => write!(f, "mload {s}"),
            StoreMsg(s) => write!(f, "mstore {s}"),
            LoadGlob(s) => write!(f, "gload {s}"),
            StoreGlob(s) => write!(f, "gstore {s}"),
            ArrLoad(a) => write!(f, "aload {a}"),
            ArrStore(a) => write!(f, "astore {a}"),
            ArrLen(a) => write!(f, "alen {a}"),
            Add => write!(f, "add"),
            Sub => write!(f, "sub"),
            Mul => write!(f, "mul"),
            Div => write!(f, "div"),
            Rem => write!(f, "rem"),
            Neg => write!(f, "neg"),
            And => write!(f, "and"),
            Or => write!(f, "or"),
            Xor => write!(f, "xor"),
            Not => write!(f, "not"),
            Shl => write!(f, "shl"),
            Shr => write!(f, "shr"),
            Eq => write!(f, "eq"),
            Ne => write!(f, "ne"),
            Lt => write!(f, "lt"),
            Le => write!(f, "le"),
            Gt => write!(f, "gt"),
            Ge => write!(f, "ge"),
            Jmp(t) => write!(f, "jmp {t}"),
            JmpIf(t) => write!(f, "jmpif {t}"),
            JmpIfNot(t) => write!(f, "jmpifnot {t}"),
            Call(id) => write!(f, "call {id}"),
            Ret => write!(f, "ret"),
            Halt => write!(f, "halt"),
            Rand => write!(f, "rand"),
            RandRange => write!(f, "randrange"),
            Now => write!(f, "now"),
            Hash => write!(f, "hash"),
            Drop => write!(f, "drop"),
            SetQueue => write!(f, "setqueue"),
            ToController => write!(f, "tocontroller"),
            GotoTable => write!(f, "gototable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lossless_enough_for_disasm() {
        assert_eq!(Op::Push(-3).to_string(), "push -3");
        assert_eq!(Op::JmpIfNot(7).to_string(), "jmpifnot 7");
        assert_eq!(Op::ArrLen(2).to_string(), "alen 2");
    }

    #[test]
    fn kind_index_is_dense_and_named() {
        let ops = [
            Op::Push(0),
            Op::Dup,
            Op::Pop,
            Op::Swap,
            Op::LoadLocal(0),
            Op::StoreLocal(0),
            Op::LoadPkt(0),
            Op::StorePkt(0),
            Op::LoadMsg(0),
            Op::StoreMsg(0),
            Op::LoadGlob(0),
            Op::StoreGlob(0),
            Op::ArrLoad(0),
            Op::ArrStore(0),
            Op::ArrLen(0),
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Shl,
            Op::Shr,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Jmp(0),
            Op::JmpIf(0),
            Op::JmpIfNot(0),
            Op::Call(0),
            Op::Ret,
            Op::Halt,
            Op::Rand,
            Op::RandRange,
            Op::Now,
            Op::Hash,
            Op::Drop,
            Op::SetQueue,
            Op::ToController,
            Op::GotoTable,
        ];
        assert_eq!(ops.len(), Op::KIND_COUNT);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.kind_index(), i, "kind_index out of order for {op}");
            // the mnemonic is the first token of the Display form
            let display = op.to_string();
            let mnemonic = display.split(' ').next().unwrap();
            assert_eq!(Op::kind_name(i), mnemonic);
        }
    }

    #[test]
    fn stack_deltas_match_needs() {
        // every op must be executable when the stack holds exactly
        // `stack_need` values, and may not underflow.
        for op in [Op::Add, Op::Dup, Op::SetQueue, Op::ArrStore(0), Op::Hash] {
            assert!(op.stack_need() >= -op.stack_delta());
        }
    }
}
