//! Static bytecode verification.
//!
//! Eden relies on "correct execution of the interpreter" rather than
//! verifying every action function (§3.4.3), but a cheap static pass at
//! program-load time removes whole classes of per-instruction checks from
//! the hot loop: all jump targets are in range, the operand stack depth is
//! consistent at every program point (no underflow can occur at runtime),
//! local slots are within the declared frame size, and every `Call` targets
//! a real function-table entry. This mirrors what BPF-style in-kernel
//! interpreters do and what the paper's filter-language ancestors [41, 43]
//! pioneered.

use std::collections::VecDeque;
use std::fmt;

use crate::op::Op;
use crate::program::Program;

/// Maximum instruction count a program may have. Well below the u32 jump
/// range, so every op index (and `target + 1`) fits a `u32`, and small
/// enough that the cap is actually reachable by tests and fuzzing — a
/// shipped program at the limit is ~10 MB on the wire, far beyond anything
/// the paper's case studies need.
pub const MAX_PROGRAM_OPS: usize = 1 << 20;

/// Why a program failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A jump targets an instruction index outside the program.
    JumpOutOfRange { at: usize, target: u32 },
    /// Execution can fall off the end of the instruction stream.
    FallsOffEnd { entry: u32 },
    /// Stack depth at a join point disagrees between predecessors.
    InconsistentStack { at: usize, a: i32, b: i32 },
    /// An op would pop from an empty (or too-shallow) stack.
    Underflow { at: usize, need: i32, have: i32 },
    /// A local slot index is >= the frame's declared locals.
    LocalOutOfRange { at: usize, slot: u8, frame: u8 },
    /// `Call` references a function id not in the table.
    UnknownFunction { at: usize, id: u16 },
    /// A function's entry index is outside the program.
    BadFunctionEntry { id: usize, entry: u32 },
    /// A function declares fewer locals than its arity.
    ArityExceedsLocals { id: usize },
    /// `Ret` appears in top-level code (top level must end with `Halt`,
    /// `Drop`, or `ToController`).
    RetAtTopLevel { at: usize },
    /// Program too large for u32 jump targets.
    TooLarge(usize),
    /// Program has no instructions.
    Empty,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyError::*;
        match self {
            JumpOutOfRange { at, target } => {
                write!(f, "op {at}: jump target {target} out of range")
            }
            FallsOffEnd { entry } => {
                write!(f, "control flow from entry {entry} can fall off the end")
            }
            InconsistentStack { at, a, b } => {
                write!(f, "op {at}: inconsistent stack depth at join ({a} vs {b})")
            }
            Underflow { at, need, have } => {
                write!(f, "op {at}: needs {need} operands, stack has {have}")
            }
            LocalOutOfRange { at, slot, frame } => {
                write!(f, "op {at}: local {slot} out of range (frame has {frame})")
            }
            UnknownFunction { at, id } => write!(f, "op {at}: unknown function {id}"),
            BadFunctionEntry { id, entry } => {
                write!(f, "function {id}: entry {entry} out of range")
            }
            ArityExceedsLocals { id } => write!(f, "function {id}: arity exceeds declared locals"),
            RetAtTopLevel { at } => write!(f, "op {at}: ret in top-level code"),
            TooLarge(n) => write!(f, "program of {n} ops exceeds the maximum size"),
            Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify `program`; called automatically by [`Program::new`].
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    let ops = program.ops();
    if ops.is_empty() {
        return Err(VerifyError::Empty);
    }
    if ops.len() > MAX_PROGRAM_OPS {
        return Err(VerifyError::TooLarge(ops.len()));
    }
    for (id, func) in program.funcs().iter().enumerate() {
        if func.entry as usize >= ops.len() {
            return Err(VerifyError::BadFunctionEntry {
                id,
                entry: func.entry,
            });
        }
        if func.arity > func.n_locals {
            return Err(VerifyError::ArityExceedsLocals { id });
        }
    }

    // Walk each entry region independently: the top level (entry 0, ends in
    // Halt/Drop/ToController) and each function (ends in Ret or the
    // terminators).
    check_region(program, 0, program.entry_locals(), true)?;
    for func in program.funcs() {
        check_region(program, func.entry, func.n_locals, false)?;
    }
    Ok(())
}

/// Dataflow over stack depth starting from one entry point.
fn check_region(
    program: &Program,
    entry: u32,
    n_locals: u8,
    top_level: bool,
) -> Result<(), VerifyError> {
    let ops = program.ops();
    // depth[i] = operand-stack depth *before* executing op i; -1 = unseen.
    let mut depth = vec![-1i32; ops.len()];
    let mut work = VecDeque::new();
    depth[entry as usize] = 0;
    work.push_back(entry as usize);

    while let Some(at) = work.pop_front() {
        let d = depth[at];
        let op = ops[at];

        // locals bound check (fused IncrLocal reads and writes its slot)
        if let Op::LoadLocal(s) | Op::StoreLocal(s) | Op::IncrLocal(s, _) = op {
            if s >= n_locals {
                return Err(VerifyError::LocalOutOfRange {
                    at,
                    slot: s,
                    frame: n_locals,
                });
            }
        }

        let (need, delta) = match op {
            Op::Call(id) => {
                let func = program
                    .funcs()
                    .get(id as usize)
                    .ok_or(VerifyError::UnknownFunction { at, id })?;
                (func.arity as i32, 1 - func.arity as i32)
            }
            // Ret consumes the callee's return value from the callee stack;
            // within this region it needs one operand and ends the path.
            Op::Ret => {
                if top_level {
                    return Err(VerifyError::RetAtTopLevel { at });
                }
                (1, 0)
            }
            other => (other.stack_need(), other.stack_delta()),
        };

        if d < need {
            return Err(VerifyError::Underflow { at, need, have: d });
        }
        let after = d + delta;

        let mut push_edge = |target: usize, depth_in: i32| -> Result<(), VerifyError> {
            if target >= ops.len() {
                return Err(VerifyError::FallsOffEnd { entry });
            }
            if depth[target] == -1 {
                depth[target] = depth_in;
                work.push_back(target);
            } else if depth[target] != depth_in {
                return Err(VerifyError::InconsistentStack {
                    at: target,
                    a: depth[target],
                    b: depth_in,
                });
            }
            Ok(())
        };

        match op {
            Op::Jmp(t) => {
                if t as usize >= ops.len() {
                    return Err(VerifyError::JumpOutOfRange { at, target: t });
                }
                push_edge(t as usize, after)?;
            }
            Op::JmpIf(t) | Op::JmpIfNot(t) | Op::CmpBr(_, t) | Op::PushCmpBr(_, _, t) => {
                if t as usize >= ops.len() {
                    return Err(VerifyError::JumpOutOfRange { at, target: t });
                }
                push_edge(t as usize, after)?;
                push_edge(at + 1, after)?;
            }
            Op::Halt | Op::Drop | Op::ToController | Op::GotoTable | Op::Ret => {
                // terminators: no successors within the region
            }
            _ => {
                push_edge(at + 1, after)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FuncInfo;

    fn prog(ops: Vec<Op>) -> Result<Program, VerifyError> {
        Program::new("t", ops, vec![], 4)
    }

    #[test]
    fn underflow_is_caught() {
        let e = prog(vec![Op::Add, Op::Halt]).unwrap_err();
        assert!(matches!(e, VerifyError::Underflow { at: 0, .. }));
    }

    #[test]
    fn falls_off_end_is_caught() {
        let e = prog(vec![Op::Push(1), Op::Pop]).unwrap_err();
        assert!(matches!(e, VerifyError::FallsOffEnd { .. }));
    }

    #[test]
    fn inconsistent_join_is_caught() {
        // branch: one arm pushes an extra value before the join
        let e = prog(vec![
            Op::Push(1),
            Op::JmpIf(4),
            Op::Push(2), // depth 1 at join
            Op::Jmp(4),
            Op::Halt, // reached with depth 0 and 1
        ])
        .unwrap_err();
        assert!(matches!(e, VerifyError::InconsistentStack { .. }));
    }

    #[test]
    fn local_bounds_checked() {
        let e = prog(vec![Op::LoadLocal(9), Op::Pop, Op::Halt]).unwrap_err();
        assert!(matches!(e, VerifyError::LocalOutOfRange { slot: 9, .. }));
    }

    #[test]
    fn ret_at_top_level_rejected() {
        let e = prog(vec![Op::Push(0), Op::Ret]).unwrap_err();
        assert!(matches!(e, VerifyError::RetAtTopLevel { at: 1 }));
    }

    #[test]
    fn call_arity_checked() {
        // function 0 takes 2 args; caller pushes only 1
        let e = Program::new(
            "t",
            vec![
                Op::Push(1),
                Op::Call(0),
                Op::Pop,
                Op::Halt,
                // func 0 at 4:
                Op::Push(0),
                Op::Ret,
            ],
            vec![FuncInfo {
                entry: 4,
                arity: 2,
                n_locals: 2,
            }],
            0,
        )
        .unwrap_err();
        assert!(matches!(e, VerifyError::Underflow { at: 1, .. }));
    }

    #[test]
    fn valid_function_call_accepted() {
        let p = Program::new(
            "t",
            vec![
                Op::Push(3),
                Op::Push(4),
                Op::Call(0),
                Op::Pop,
                Op::Halt,
                // func 0 at 5: add its two args
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::Add,
                Op::Ret,
            ],
            vec![FuncInfo {
                entry: 5,
                arity: 2,
                n_locals: 2,
            }],
            0,
        );
        assert!(p.is_ok());
    }

    #[test]
    fn unknown_function_rejected() {
        let e = Program::new("t", vec![Op::Call(7), Op::Pop, Op::Halt], vec![], 0).unwrap_err();
        assert!(matches!(e, VerifyError::UnknownFunction { id: 7, .. }));
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let e = prog(vec![Op::Jmp(99), Op::Halt]).unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JumpOutOfRange { at: 0, target: 99 }
        ));
        let e = prog(vec![Op::Push(1), Op::JmpIf(1000), Op::Halt]).unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JumpOutOfRange {
                at: 1,
                target: 1000
            }
        ));
        let e = prog(vec![Op::Push(1), Op::JmpIfNot(7), Op::Halt]).unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JumpOutOfRange { at: 1, target: 7 }
        ));
    }

    #[test]
    fn bad_function_entry_rejected() {
        let e = Program::new(
            "t",
            vec![Op::Halt],
            vec![FuncInfo {
                entry: 5,
                arity: 0,
                n_locals: 0,
            }],
            0,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            VerifyError::BadFunctionEntry { id: 0, entry: 5 }
        ));
    }

    #[test]
    fn arity_exceeds_locals_rejected() {
        let e = Program::new(
            "t",
            vec![Op::Halt, Op::Push(0), Op::Ret],
            vec![FuncInfo {
                entry: 1,
                arity: 3,
                n_locals: 2,
            }],
            0,
        )
        .unwrap_err();
        assert!(matches!(e, VerifyError::ArityExceedsLocals { id: 0 }));
    }

    #[test]
    fn empty_program_rejected() {
        let e = prog(vec![]).unwrap_err();
        assert!(matches!(e, VerifyError::Empty));
    }

    #[test]
    fn too_large_program_rejected() {
        // one over the cap: all Halt, so it would otherwise verify
        let e = prog(vec![Op::Halt; MAX_PROGRAM_OPS + 1]).unwrap_err();
        assert!(matches!(e, VerifyError::TooLarge(n) if n == MAX_PROGRAM_OPS + 1));
        // at the cap: accepted
        assert!(prog(vec![Op::Halt; MAX_PROGRAM_OPS]).is_ok());
    }

    #[test]
    fn fused_ops_verify_like_their_expansions() {
        use crate::op::Cmp;
        // counting loop written entirely with superinstructions
        let p = prog(vec![
            Op::Push(0),
            Op::StoreLocal(0),
            Op::LoadLocal(0), // 2: head
            Op::PushCmpBr(Cmp::Ge, 10, 6),
            Op::IncrLocal(0, 1),
            Op::Jmp(2),
            Op::IncrGlob(0, 1), // 6
            Op::IncrMsg(1, -1),
            Op::LoadPktAddImm(0, 5),
            Op::LoadPktMulImm(1, 3),
            Op::CmpBr(Cmp::Lt, 12),
            Op::Halt,
            Op::AddImm(1), // 12: underflow here must be caught
            Op::Halt,
        ]);
        // AddImm at 12 is reached with depth 0 but needs 1
        assert!(matches!(
            p.unwrap_err(),
            VerifyError::Underflow { at: 12, .. }
        ));

        let ok = prog(vec![
            Op::Push(0),
            Op::StoreLocal(0),
            Op::LoadLocal(0), // 2: head
            Op::PushCmpBr(Cmp::Ge, 10, 6),
            Op::IncrLocal(0, 1),
            Op::Jmp(2),
            Op::LoadPktAddImm(0, 5), // 6
            Op::LoadPktMulImm(1, 3),
            Op::CmpBr(Cmp::Lt, 2),
            Op::Halt,
        ]);
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn fused_branch_targets_and_incr_slot_checked() {
        use crate::op::Cmp;
        let e = prog(vec![Op::Push(1), Op::PushCmpBr(Cmp::Eq, 1, 99), Op::Halt]).unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JumpOutOfRange { at: 1, target: 99 }
        ));
        let e = prog(vec![
            Op::Push(1),
            Op::Push(2),
            Op::CmpBr(Cmp::Ne, 77),
            Op::Halt,
        ])
        .unwrap_err();
        assert!(matches!(
            e,
            VerifyError::JumpOutOfRange { at: 2, target: 77 }
        ));
        let e = prog(vec![Op::IncrLocal(9, 1), Op::Halt]).unwrap_err();
        assert!(matches!(e, VerifyError::LocalOutOfRange { slot: 9, .. }));
        // compare-branch arms that rejoin with different depths are caught
        let e = prog(vec![
            Op::Push(1),
            Op::PushCmpBr(Cmp::Gt, 0, 3),
            Op::Push(7), // fallthrough arm pushes
            Op::Halt,    // 3: join with depth 0 (taken) vs 1 (fallthrough)
        ])
        .unwrap_err();
        assert!(matches!(e, VerifyError::InconsistentStack { .. }));
    }

    #[test]
    fn loops_verify() {
        // while (x != 0) x -= 1  with x in local 0
        let p = Program::new(
            "loop",
            vec![
                Op::Push(10),
                Op::StoreLocal(0),
                Op::LoadLocal(0), // 2: loop head
                Op::JmpIfNot(8),
                Op::LoadLocal(0),
                Op::Push(1),
                Op::Sub,
                Op::StoreLocal(0),
                Op::Halt, // 8 — wait, jump back missing
            ],
            vec![],
            1,
        );
        // note: intentionally a straight-line variant; real loop below
        assert!(p.is_ok());

        let p2 = Program::new(
            "loop2",
            vec![
                Op::Push(10),
                Op::StoreLocal(0),
                Op::LoadLocal(0), // 2: head
                Op::JmpIfNot(9),
                Op::LoadLocal(0),
                Op::Push(1),
                Op::Sub,
                Op::StoreLocal(0),
                Op::Jmp(2),
                Op::Halt, // 9
            ],
            vec![],
            1,
        );
        assert!(p2.is_ok());
    }
}
