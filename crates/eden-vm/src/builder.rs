//! Fluent bytecode assembler with labels and fixups.
//!
//! The `eden-lang` compiler emits through this builder; it is also handy for
//! hand-writing programs in tests and benchmarks. Labels decouple emission
//! order from jump-target resolution: create with [`new_label`], reference
//! from jumps before or after binding, bind exactly once with [`bind`], and
//! [`build`] patches every reference and runs the verifier.
//!
//! [`new_label`]: ProgramBuilder::new_label
//! [`bind`]: ProgramBuilder::bind
//! [`build`]: ProgramBuilder::build

use crate::op::{Cmp, Op};
use crate::program::{FuncInfo, Program};
use crate::verify::VerifyError;

/// A forward- or backward-referenced jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental program assembler.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    ops: Vec<Op>,
    funcs: Vec<FuncInfo>,
    entry_locals: u8,
    /// label id -> bound instruction index
    labels: Vec<Option<u32>>,
    /// (instruction index, label id) pairs to patch at build time
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Start an empty program named `"anonymous"`.
    pub fn new() -> Self {
        ProgramBuilder {
            name: "anonymous".into(),
            ..Default::default()
        }
    }

    /// Set the program name used in diagnostics and disassembly.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declare how many locals the top-level body needs.
    pub fn with_entry_locals(mut self, n: u8) -> Self {
        self.entry_locals = n;
        self
    }

    /// Current instruction index (where the next op will land).
    pub fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Create an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound — that is a compiler bug, not a
    /// user-program error.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice (compiler bug)"
        );
        self.labels[label.0] = Some(self.here());
        self
    }

    /// Begin a function at the current position; returns its id for
    /// [`Op::Call`]. Emit the body right after, ending in [`Op::Ret`].
    pub fn begin_func(&mut self, arity: u8, n_locals: u8) -> u16 {
        self.funcs.push(FuncInfo {
            entry: self.here(),
            arity,
            n_locals,
        });
        (self.funcs.len() - 1) as u16
    }

    /// Append a raw op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    fn jump(&mut self, label: Label, make: impl FnOnce(u32) -> Op) -> &mut Self {
        self.fixups.push((self.ops.len(), label.0));
        self.ops.push(make(u32::MAX)); // patched in build()
        self
    }

    /// Resolve labels, verify, and produce the program.
    pub fn build(mut self) -> Result<Program, BuildError> {
        for &(at, label) in &self.fixups {
            let target = self.labels[label].ok_or(BuildError::UnboundLabel(label))?;
            self.ops[at] = match self.ops[at] {
                Op::Jmp(_) => Op::Jmp(target),
                Op::JmpIf(_) => Op::JmpIf(target),
                Op::JmpIfNot(_) => Op::JmpIfNot(target),
                Op::CmpBr(c, _) => Op::CmpBr(c, target),
                Op::PushCmpBr(c, v, _) => Op::PushCmpBr(c, v, target),
                other => unreachable!("fixup on non-jump op {other}"),
            };
        }
        Program::new(self.name, self.ops, self.funcs, self.entry_locals).map_err(BuildError::Verify)
    }

    // --- one helper per op, so emission code reads like assembly ---------

    /// `push imm`
    pub fn push(&mut self, v: i64) -> &mut Self {
        self.op(Op::Push(v))
    }
    /// `dup`
    pub fn dup(&mut self) -> &mut Self {
        self.op(Op::Dup)
    }
    /// `pop`
    pub fn pop(&mut self) -> &mut Self {
        self.op(Op::Pop)
    }
    /// `swap`
    pub fn swap(&mut self) -> &mut Self {
        self.op(Op::Swap)
    }
    /// `lload slot`
    pub fn load_local(&mut self, s: u8) -> &mut Self {
        self.op(Op::LoadLocal(s))
    }
    /// `lstore slot`
    pub fn store_local(&mut self, s: u8) -> &mut Self {
        self.op(Op::StoreLocal(s))
    }
    /// `pload slot`
    pub fn load_pkt(&mut self, s: u8) -> &mut Self {
        self.op(Op::LoadPkt(s))
    }
    /// `pstore slot`
    pub fn store_pkt(&mut self, s: u8) -> &mut Self {
        self.op(Op::StorePkt(s))
    }
    /// `mload slot`
    pub fn load_msg(&mut self, s: u8) -> &mut Self {
        self.op(Op::LoadMsg(s))
    }
    /// `mstore slot`
    pub fn store_msg(&mut self, s: u8) -> &mut Self {
        self.op(Op::StoreMsg(s))
    }
    /// `gload slot`
    pub fn load_glob(&mut self, s: u8) -> &mut Self {
        self.op(Op::LoadGlob(s))
    }
    /// `gstore slot`
    pub fn store_glob(&mut self, s: u8) -> &mut Self {
        self.op(Op::StoreGlob(s))
    }
    /// `aload id`
    pub fn arr_load(&mut self, a: u8) -> &mut Self {
        self.op(Op::ArrLoad(a))
    }
    /// `astore id`
    pub fn arr_store(&mut self, a: u8) -> &mut Self {
        self.op(Op::ArrStore(a))
    }
    /// `alen id`
    pub fn arr_len(&mut self, a: u8) -> &mut Self {
        self.op(Op::ArrLen(a))
    }
    /// `add`
    pub fn add(&mut self) -> &mut Self {
        self.op(Op::Add)
    }
    /// `sub`
    pub fn sub(&mut self) -> &mut Self {
        self.op(Op::Sub)
    }
    /// `mul`
    pub fn mul(&mut self) -> &mut Self {
        self.op(Op::Mul)
    }
    /// `div`
    pub fn div(&mut self) -> &mut Self {
        self.op(Op::Div)
    }
    /// `rem`
    pub fn rem(&mut self) -> &mut Self {
        self.op(Op::Rem)
    }
    /// `neg`
    pub fn neg(&mut self) -> &mut Self {
        self.op(Op::Neg)
    }
    /// `not`
    pub fn not(&mut self) -> &mut Self {
        self.op(Op::Not)
    }
    /// `eq`
    pub fn eq(&mut self) -> &mut Self {
        self.op(Op::Eq)
    }
    /// `ne`
    pub fn ne(&mut self) -> &mut Self {
        self.op(Op::Ne)
    }
    /// `lt`
    pub fn lt(&mut self) -> &mut Self {
        self.op(Op::Lt)
    }
    /// `le`
    pub fn le(&mut self) -> &mut Self {
        self.op(Op::Le)
    }
    /// `gt`
    pub fn gt(&mut self) -> &mut Self {
        self.op(Op::Gt)
    }
    /// `ge`
    pub fn ge(&mut self) -> &mut Self {
        self.op(Op::Ge)
    }
    /// `jmp label`
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.jump(l, Op::Jmp)
    }
    /// `jmpif label`
    pub fn jmp_if(&mut self, l: Label) -> &mut Self {
        self.jump(l, Op::JmpIf)
    }
    /// `jmpifnot label`
    pub fn jmp_if_not(&mut self, l: Label) -> &mut Self {
        self.jump(l, Op::JmpIfNot)
    }
    /// `call id`
    pub fn call(&mut self, id: u16) -> &mut Self {
        self.op(Op::Call(id))
    }
    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.op(Op::Ret)
    }
    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.op(Op::Halt)
    }
    /// `rand`
    pub fn rand(&mut self) -> &mut Self {
        self.op(Op::Rand)
    }
    /// `randrange`
    pub fn rand_range(&mut self) -> &mut Self {
        self.op(Op::RandRange)
    }
    /// `now`
    pub fn now(&mut self) -> &mut Self {
        self.op(Op::Now)
    }
    /// `hash`
    pub fn hash(&mut self) -> &mut Self {
        self.op(Op::Hash)
    }
    /// `drop`
    pub fn drop_packet(&mut self) -> &mut Self {
        self.op(Op::Drop)
    }
    /// `setqueue`
    pub fn set_queue(&mut self) -> &mut Self {
        self.op(Op::SetQueue)
    }
    /// `tocontroller`
    pub fn to_controller(&mut self) -> &mut Self {
        self.op(Op::ToController)
    }
    /// `gototable`
    pub fn goto_table(&mut self) -> &mut Self {
        self.op(Op::GotoTable)
    }
    /// `addimm imm`
    pub fn add_imm(&mut self, v: i64) -> &mut Self {
        self.op(Op::AddImm(v))
    }
    /// `mulimm imm`
    pub fn mul_imm(&mut self, v: i64) -> &mut Self {
        self.op(Op::MulImm(v))
    }
    /// `ploadadd slot imm`
    pub fn load_pkt_add_imm(&mut self, s: u8, v: i64) -> &mut Self {
        self.op(Op::LoadPktAddImm(s, v))
    }
    /// `ploadmul slot imm`
    pub fn load_pkt_mul_imm(&mut self, s: u8, v: i64) -> &mut Self {
        self.op(Op::LoadPktMulImm(s, v))
    }
    /// `lincr slot imm`
    pub fn incr_local(&mut self, s: u8, v: i64) -> &mut Self {
        self.op(Op::IncrLocal(s, v))
    }
    /// `mincr slot imm`
    pub fn incr_msg(&mut self, s: u8, v: i64) -> &mut Self {
        self.op(Op::IncrMsg(s, v))
    }
    /// `gincr slot imm`
    pub fn incr_glob(&mut self, s: u8, v: i64) -> &mut Self {
        self.op(Op::IncrGlob(s, v))
    }
    /// `cmpbr cmp label`
    pub fn cmp_br(&mut self, c: Cmp, l: Label) -> &mut Self {
        self.jump(l, |t| Op::CmpBr(c, t))
    }
    /// `pushcmpbr cmp imm label`
    pub fn push_cmp_br(&mut self, c: Cmp, v: i64, l: Label) -> &mut Self {
        self.jump(l, |t| Op::PushCmpBr(c, v, t))
    }
}

/// Errors from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced by a jump but never bound.
    UnboundLabel(usize),
    /// The assembled program failed verification.
    Verify(VerifyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l} referenced but never bound"),
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interpreter, Limits, VecHost};

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new().named("labels");
        let end = b.new_label();
        b.push(0).jmp_if(end); // forward ref
        b.push(5).store_pkt(0);
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        let mut h = VecHost::with_slots(1, 0, 0);
        Interpreter::new(Limits::default()).run(&p, &mut h).unwrap();
        assert_eq!(h.packet[0], 5);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l).halt();
        assert_eq!(b.build().unwrap_err(), BuildError::UnboundLabel(0));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.push(1).pop();
        b.bind(l);
    }

    #[test]
    fn functions_via_builder() {
        let mut b = ProgramBuilder::new().named("sq");
        // reserve: top level first, then the function body
        b.push(9);
        let square = 0u16; // will be func id 0
        b.call(square).store_pkt(0).halt();
        let id = b.begin_func(1, 1);
        assert_eq!(id, 0);
        b.load_local(0).load_local(0).mul().ret();
        let p = b.build().unwrap();
        let mut h = VecHost::with_slots(1, 0, 0);
        Interpreter::new(Limits::default()).run(&p, &mut h).unwrap();
        assert_eq!(h.packet[0], 81);
    }
}
