//! Bytecode wire format: how the controller ships compiled action
//! functions to enclaves.
//!
//! The paper's controller compiles on its side and injects *bytecode* into
//! enclaves ("avoids the complexities of dynamically loading code in the OS
//! or the NIC", §3.4.3). This module is that wire format: a compact,
//! versioned, self-describing encoding. Decoding **re-runs the verifier**
//! (via [`Program::new`]), so an enclave never executes a program a
//! corrupted or malicious update could smuggle past the checks — the
//! trust stays in the interpreter and verifier, exactly as §3.4.3 argues.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   u32   0x4E454445 ("EDEN")
//! version u16   2 (1 still decodes; see below)
//! nlocals u8    entry locals
//! nfuncs  u16   function-table entries
//! nops    u32   instruction count
//! name    u16-prefixed UTF-8
//! funcs   nfuncs × { entry u32, arity u8, n_locals u8 }
//! ops     nops × { opcode u8, operand varies }
//! ```
//!
//! Version history: v1 is the original opcode set; v2 adds the fused
//! superinstructions (opcode bytes `0x60..` / `0x70..`). Decoding accepts
//! both, but a blob that declares v1 while using a v2 opcode is rejected —
//! old enclaves would have refused it, so new ones must too.

use crate::op::Op;
use crate::program::{FuncInfo, Program};
use crate::verify::VerifyError;

/// Wire-format magic: "EDEN".
pub const MAGIC: u32 = 0x4E45_4445;
/// Current format version (encoding always emits this).
pub const VERSION: u16 = 2;
/// Oldest version `decode` still accepts.
pub const MIN_VERSION: u16 = 1;

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Missing or wrong magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// Ran out of bytes mid-structure.
    Truncated,
    /// Unknown opcode byte, or an opcode newer than the declared version.
    BadOpcode(u8),
    /// Comparison selector byte outside the defined `Cmp` range.
    BadCmp(u8),
    /// Program name is not UTF-8.
    BadName,
    /// Decoded program failed verification.
    Verify(VerifyError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an Eden bytecode blob"),
            CodecError::BadVersion(v) => write!(f, "unsupported bytecode version {v}"),
            CodecError::Truncated => write!(f, "truncated bytecode"),
            CodecError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            CodecError::BadCmp(b) => write!(f, "unknown comparison selector {b:#04x}"),
            CodecError::BadName => write!(f, "program name is not valid UTF-8"),
            CodecError::Verify(e) => write!(f, "shipped program failed verification: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

// opcode byte assignments (stable across versions within VERSION 1)
const OP_PUSH: u8 = 0x01;
const OP_DUP: u8 = 0x02;
const OP_POP: u8 = 0x03;
const OP_SWAP: u8 = 0x04;
const OP_LLOAD: u8 = 0x05;
const OP_LSTORE: u8 = 0x06;
const OP_PLOAD: u8 = 0x07;
const OP_PSTORE: u8 = 0x08;
const OP_MLOAD: u8 = 0x09;
const OP_MSTORE: u8 = 0x0A;
const OP_GLOAD: u8 = 0x0B;
const OP_GSTORE: u8 = 0x0C;
const OP_ALOAD: u8 = 0x0D;
const OP_ASTORE: u8 = 0x0E;
const OP_ALEN: u8 = 0x0F;
const OP_ADD: u8 = 0x10;
const OP_SUB: u8 = 0x11;
const OP_MUL: u8 = 0x12;
const OP_DIV: u8 = 0x13;
const OP_REM: u8 = 0x14;
const OP_NEG: u8 = 0x15;
const OP_AND: u8 = 0x16;
const OP_OR: u8 = 0x17;
const OP_XOR: u8 = 0x18;
const OP_NOT: u8 = 0x19;
const OP_SHL: u8 = 0x1A;
const OP_SHR: u8 = 0x1B;
const OP_EQ: u8 = 0x20;
const OP_NE: u8 = 0x21;
const OP_LT: u8 = 0x22;
const OP_LE: u8 = 0x23;
const OP_GT: u8 = 0x24;
const OP_GE: u8 = 0x25;
const OP_JMP: u8 = 0x30;
const OP_JMPIF: u8 = 0x31;
const OP_JMPIFNOT: u8 = 0x32;
const OP_CALL: u8 = 0x33;
const OP_RET: u8 = 0x34;
const OP_HALT: u8 = 0x35;
const OP_RAND: u8 = 0x40;
const OP_RANDRANGE: u8 = 0x41;
const OP_NOW: u8 = 0x42;
const OP_HASH: u8 = 0x43;
const OP_DROP: u8 = 0x50;
const OP_SETQUEUE: u8 = 0x51;
const OP_TOCONTROLLER: u8 = 0x52;
const OP_GOTOTABLE: u8 = 0x53;
// v2 superinstructions — everything at or above OP_V2_BASE needs version >= 2
const OP_V2_BASE: u8 = 0x60;
const OP_ADDIMM: u8 = 0x60;
const OP_MULIMM: u8 = 0x61;
const OP_PLOADADD: u8 = 0x62;
const OP_PLOADMUL: u8 = 0x63;
const OP_LINCR: u8 = 0x64;
const OP_MINCR: u8 = 0x65;
const OP_GINCR: u8 = 0x66;
const OP_CMPBR: u8 = 0x70;
const OP_PUSHCMPBR: u8 = 0x71;

/// Serialize `program` into the wire format.
pub fn encode(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.wire_size());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(program.entry_locals());
    out.extend_from_slice(&(program.funcs().len() as u16).to_le_bytes());
    out.extend_from_slice(&(program.ops().len() as u32).to_le_bytes());
    let name = program.name().as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    for f in program.funcs() {
        out.extend_from_slice(&f.entry.to_le_bytes());
        out.push(f.arity);
        out.push(f.n_locals);
    }
    for &op in program.ops() {
        encode_op(op, &mut out);
    }
    out
}

fn encode_op(op: Op, out: &mut Vec<u8>) {
    use Op::*;
    match op {
        Push(v) => {
            out.push(OP_PUSH);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Dup => out.push(OP_DUP),
        Pop => out.push(OP_POP),
        Swap => out.push(OP_SWAP),
        LoadLocal(s) => {
            out.push(OP_LLOAD);
            out.push(s);
        }
        StoreLocal(s) => {
            out.push(OP_LSTORE);
            out.push(s);
        }
        LoadPkt(s) => {
            out.push(OP_PLOAD);
            out.push(s);
        }
        StorePkt(s) => {
            out.push(OP_PSTORE);
            out.push(s);
        }
        LoadMsg(s) => {
            out.push(OP_MLOAD);
            out.push(s);
        }
        StoreMsg(s) => {
            out.push(OP_MSTORE);
            out.push(s);
        }
        LoadGlob(s) => {
            out.push(OP_GLOAD);
            out.push(s);
        }
        StoreGlob(s) => {
            out.push(OP_GSTORE);
            out.push(s);
        }
        ArrLoad(a) => {
            out.push(OP_ALOAD);
            out.push(a);
        }
        ArrStore(a) => {
            out.push(OP_ASTORE);
            out.push(a);
        }
        ArrLen(a) => {
            out.push(OP_ALEN);
            out.push(a);
        }
        Add => out.push(OP_ADD),
        Sub => out.push(OP_SUB),
        Mul => out.push(OP_MUL),
        Div => out.push(OP_DIV),
        Rem => out.push(OP_REM),
        Neg => out.push(OP_NEG),
        And => out.push(OP_AND),
        Or => out.push(OP_OR),
        Xor => out.push(OP_XOR),
        Not => out.push(OP_NOT),
        Shl => out.push(OP_SHL),
        Shr => out.push(OP_SHR),
        Eq => out.push(OP_EQ),
        Ne => out.push(OP_NE),
        Lt => out.push(OP_LT),
        Le => out.push(OP_LE),
        Gt => out.push(OP_GT),
        Ge => out.push(OP_GE),
        Jmp(t) => {
            out.push(OP_JMP);
            out.extend_from_slice(&t.to_le_bytes());
        }
        JmpIf(t) => {
            out.push(OP_JMPIF);
            out.extend_from_slice(&t.to_le_bytes());
        }
        JmpIfNot(t) => {
            out.push(OP_JMPIFNOT);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Call(id) => {
            out.push(OP_CALL);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Ret => out.push(OP_RET),
        Halt => out.push(OP_HALT),
        Rand => out.push(OP_RAND),
        RandRange => out.push(OP_RANDRANGE),
        Now => out.push(OP_NOW),
        Hash => out.push(OP_HASH),
        Drop => out.push(OP_DROP),
        SetQueue => out.push(OP_SETQUEUE),
        ToController => out.push(OP_TOCONTROLLER),
        GotoTable => out.push(OP_GOTOTABLE),
        AddImm(v) => {
            out.push(OP_ADDIMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        MulImm(v) => {
            out.push(OP_MULIMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        LoadPktAddImm(s, v) => {
            out.push(OP_PLOADADD);
            out.push(s);
            out.extend_from_slice(&v.to_le_bytes());
        }
        LoadPktMulImm(s, v) => {
            out.push(OP_PLOADMUL);
            out.push(s);
            out.extend_from_slice(&v.to_le_bytes());
        }
        IncrLocal(s, v) => {
            out.push(OP_LINCR);
            out.push(s);
            out.extend_from_slice(&v.to_le_bytes());
        }
        IncrMsg(s, v) => {
            out.push(OP_MINCR);
            out.push(s);
            out.extend_from_slice(&v.to_le_bytes());
        }
        IncrGlob(s, v) => {
            out.push(OP_GINCR);
            out.push(s);
            out.extend_from_slice(&v.to_le_bytes());
        }
        CmpBr(c, t) => {
            out.push(OP_CMPBR);
            out.push(c.to_byte());
            out.extend_from_slice(&t.to_le_bytes());
        }
        PushCmpBr(c, v, t) => {
            out.push(OP_PUSHCMPBR);
            out.push(c.to_byte());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.at + n > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn cmp(&mut self) -> Result<crate::op::Cmp, CodecError> {
        let b = self.u8()?;
        crate::op::Cmp::from_byte(b).ok_or(CodecError::BadCmp(b))
    }
}

/// Deserialize and **verify** a program shipped by a controller.
pub fn decode(data: &[u8]) -> Result<Program, CodecError> {
    let mut r = Reader { data, at: 0 };
    if r.u32()? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::BadVersion(version));
    }
    let entry_locals = r.u8()?;
    let nfuncs = r.u16()? as usize;
    let nops = r.u32()? as usize;
    let name_len = r.u16()? as usize;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| CodecError::BadName)?
        .to_string();

    let mut funcs = Vec::with_capacity(nfuncs.min(1024));
    for _ in 0..nfuncs {
        funcs.push(FuncInfo {
            entry: r.u32()?,
            arity: r.u8()?,
            n_locals: r.u8()?,
        });
    }

    let mut ops = Vec::with_capacity(nops.min(1 << 16));
    for _ in 0..nops {
        let b = r.u8()?;
        if b >= OP_V2_BASE && version < 2 {
            return Err(CodecError::BadOpcode(b));
        }
        let op = match b {
            OP_PUSH => Op::Push(r.i64()?),
            OP_DUP => Op::Dup,
            OP_POP => Op::Pop,
            OP_SWAP => Op::Swap,
            OP_LLOAD => Op::LoadLocal(r.u8()?),
            OP_LSTORE => Op::StoreLocal(r.u8()?),
            OP_PLOAD => Op::LoadPkt(r.u8()?),
            OP_PSTORE => Op::StorePkt(r.u8()?),
            OP_MLOAD => Op::LoadMsg(r.u8()?),
            OP_MSTORE => Op::StoreMsg(r.u8()?),
            OP_GLOAD => Op::LoadGlob(r.u8()?),
            OP_GSTORE => Op::StoreGlob(r.u8()?),
            OP_ALOAD => Op::ArrLoad(r.u8()?),
            OP_ASTORE => Op::ArrStore(r.u8()?),
            OP_ALEN => Op::ArrLen(r.u8()?),
            OP_ADD => Op::Add,
            OP_SUB => Op::Sub,
            OP_MUL => Op::Mul,
            OP_DIV => Op::Div,
            OP_REM => Op::Rem,
            OP_NEG => Op::Neg,
            OP_AND => Op::And,
            OP_OR => Op::Or,
            OP_XOR => Op::Xor,
            OP_NOT => Op::Not,
            OP_SHL => Op::Shl,
            OP_SHR => Op::Shr,
            OP_EQ => Op::Eq,
            OP_NE => Op::Ne,
            OP_LT => Op::Lt,
            OP_LE => Op::Le,
            OP_GT => Op::Gt,
            OP_GE => Op::Ge,
            OP_JMP => Op::Jmp(r.u32()?),
            OP_JMPIF => Op::JmpIf(r.u32()?),
            OP_JMPIFNOT => Op::JmpIfNot(r.u32()?),
            OP_CALL => Op::Call(r.u16()?),
            OP_RET => Op::Ret,
            OP_HALT => Op::Halt,
            OP_RAND => Op::Rand,
            OP_RANDRANGE => Op::RandRange,
            OP_NOW => Op::Now,
            OP_HASH => Op::Hash,
            OP_DROP => Op::Drop,
            OP_SETQUEUE => Op::SetQueue,
            OP_TOCONTROLLER => Op::ToController,
            OP_GOTOTABLE => Op::GotoTable,
            OP_ADDIMM => Op::AddImm(r.i64()?),
            OP_MULIMM => Op::MulImm(r.i64()?),
            OP_PLOADADD => Op::LoadPktAddImm(r.u8()?, r.i64()?),
            OP_PLOADMUL => Op::LoadPktMulImm(r.u8()?, r.i64()?),
            OP_LINCR => Op::IncrLocal(r.u8()?, r.i64()?),
            OP_MINCR => Op::IncrMsg(r.u8()?, r.i64()?),
            OP_GINCR => Op::IncrGlob(r.u8()?, r.i64()?),
            OP_CMPBR => {
                let c = r.cmp()?;
                Op::CmpBr(c, r.u32()?)
            }
            OP_PUSHCMPBR => {
                let c = r.cmp()?;
                let v = r.i64()?;
                Op::PushCmpBr(c, v, r.u32()?)
            }
            other => return Err(CodecError::BadOpcode(other)),
        };
        ops.push(op);
    }

    Program::new(name, ops, funcs, entry_locals).map_err(CodecError::Verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::{Interpreter, Limits, VecHost};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new().named("ship-me").with_entry_locals(2);
        let head = b.new_label();
        let done = b.new_label();
        b.push(5).store_local(0);
        b.push(0).store_local(1);
        b.bind(head);
        b.load_local(0).jmp_if_not(done);
        b.load_local(1).load_local(0).add().store_local(1);
        b.load_local(0).push(1).sub().store_local(0);
        b.jmp(head);
        b.bind(done);
        b.load_local(1).store_pkt(0).halt();
        b.build().expect("valid")
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let p = sample();
        let bytes = encode(&p);
        let q = decode(&bytes).expect("decodes");
        assert_eq!(q, p);

        let mut h = VecHost::with_slots(1, 0, 0);
        Interpreter::new(Limits::default()).run(&q, &mut h).unwrap();
        assert_eq!(h.packet[0], 15); // 5+4+3+2+1
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xFF;
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&sample());
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(99)));
        let mut bytes = encode(&sample());
        bytes[4] = 0;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(0)));
    }

    fn fused_sample() -> Program {
        use crate::op::Cmp;
        let mut b = ProgramBuilder::new().named("fused").with_entry_locals(2);
        let head = b.new_label();
        let done = b.new_label();
        b.push(0).store_local(0);
        b.bind(head);
        b.load_local(0).push_cmp_br(Cmp::Ge, 4, done);
        b.incr_local(0, 1);
        b.load_pkt_add_imm(0, 10)
            .load_pkt_mul_imm(0, 2)
            .cmp_br(Cmp::Lt, head);
        b.incr_msg(0, 3).incr_glob(0, 5);
        b.jmp(head);
        b.bind(done);
        b.load_local(0).add_imm(100).mul_imm(2).store_pkt(1).halt();
        b.build().expect("valid fused program")
    }

    #[test]
    fn v2_ops_round_trip() {
        let p = fused_sample();
        let bytes = encode(&p);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        let q = decode(&bytes).expect("decodes");
        assert_eq!(q, p);
    }

    #[test]
    fn v1_blob_may_not_smuggle_v2_opcodes() {
        // rewrite the declared version down to 1: the v2 opcode bytes in
        // the stream must now be rejected, exactly as an old enclave would
        let mut bytes = encode(&fused_sample());
        bytes[4] = 1;
        bytes[5] = 0;
        match decode(&bytes) {
            Err(CodecError::BadOpcode(b)) => assert!(b >= OP_V2_BASE),
            other => panic!("expected BadOpcode, got {other:?}"),
        }
    }

    #[test]
    fn bad_cmp_byte_rejected() {
        let p = fused_sample();
        let bytes = encode(&p);
        // corrupt the selector byte after the first OP_CMPBR-family opcode
        let mut corrupted = bytes.clone();
        let at = corrupted
            .iter()
            .position(|&b| b == OP_PUSHCMPBR || b == OP_CMPBR)
            .expect("fused sample contains a compare-branch");
        corrupted[at + 1] = 0xEE;
        assert_eq!(decode(&corrupted), Err(CodecError::BadCmp(0xEE)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_jump_targets_fail_verification_not_execution() {
        let p = sample();
        let bytes = encode(&p);
        // find the Jmp(head) and corrupt its target to something huge
        let mut corrupted = bytes.clone();
        let mut found = false;
        for i in 0..corrupted.len() - 4 {
            if corrupted[i] == OP_JMP {
                corrupted[i + 1..i + 5].copy_from_slice(&9999u32.to_le_bytes());
                found = true;
                break;
            }
        }
        assert!(found);
        match decode(&corrupted) {
            Err(CodecError::Verify(_)) => {}
            other => panic!("expected verification failure, got {other:?}"),
        }
    }

    #[test]
    fn garbage_never_panics() {
        let mut rng_state = 0x12345u64;
        for len in 0..256 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rng_state >> 33) as u8
                })
                .collect();
            let _ = decode(&bytes); // may error, must not panic
        }
    }
}
