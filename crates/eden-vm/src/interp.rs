//! The interpreter proper: a classic dispatch loop over verified bytecode.
//!
//! An [`Interpreter`] is a reusable execution context — the enclave keeps
//! one per worker and runs every action function through it, so the operand
//! stack and locals arena are allocated once and reused across millions of
//! packets. This is the component whose overhead Figure 12 of the paper
//! quantifies; `eden-bench`'s `micro` and `fig12_overheads` benches measure
//! this exact code.

use crate::error::VmError;
use crate::host::{Effect, Host};
use crate::limits::{Limits, Usage};
use crate::op::Op;
use crate::program::Program;

/// The deterministic two-input mixer behind the DSL's `hash (a, b)`
/// builtin (`Op::Hash`): a splitmix64 finalizer over the xored pair,
/// masked non-negative. Exposed so exact native forms of catalogue
/// functions (rendezvous hashing, flow steering) reproduce bytecode
/// hashing bit-for-bit.
pub fn hash2(a: i64, b: i64) -> i64 {
    let (a, b) = (a as u64, b as u64);
    let mut z = a ^ b.rotate_left(32) ^ 0x9E3779B97F4A7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((z ^ (z >> 31)) & (i64::MAX as u64)) as i64
}

/// How an action function finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to `Halt`; the packet proceeds normally.
    Done,
    /// The function dropped the packet.
    Dropped,
    /// The function punted the packet to the controller.
    SentToController,
    /// The function redirected matching to another enclave table.
    GotoTable(u8),
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    ret_pc: u32,
    locals_base: u32,
}

/// Cheap always-on counters accumulated across [`Interpreter::run`] calls.
///
/// These are the interpreter's contribution to a telemetry
/// `StatsSnapshot`; the enclave copies them out on a stats pull. Cleared
/// by [`Interpreter::reset_counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Completed `run` calls (including trapped ones).
    pub invocations: u64,
    /// `run` calls that ended in a trap.
    pub traps: u64,
    /// Instructions executed, across all runs.
    pub steps: u64,
    /// Wall-clock nanoseconds spent inside `run`, across all runs.
    pub elapsed_ns: u64,
}

impl VmCounters {
    /// Fold another interpreter's counters into this one (pool rollup).
    pub fn merge(&mut self, other: VmCounters) {
        self.invocations += other.invocations;
        self.traps += other.traps;
        self.steps += other.steps;
        self.elapsed_ns += other.elapsed_ns;
    }
}

/// One in this many [`Interpreter::run`] calls is wall-clock timed for
/// the `elapsed_ns` counter; the measured cost is scaled by the interval.
/// Two clock reads cost more than interpreting a short action function,
/// so per-invocation timing would dominate what it measures.
const TIMING_SAMPLE: u64 = 64;

/// Reusable execution context (operand stack + locals arena + call stack).
#[derive(Debug)]
pub struct Interpreter {
    limits: Limits,
    stack: Vec<i64>,
    locals: Vec<i64>,
    frames: Vec<Frame>,
    usage: Usage,
    counters: VmCounters,
    /// Per-opcode execution histogram, allocated only while profiling is
    /// enabled so the disabled cost is a single well-predicted branch.
    profile: Option<Box<[u64; Op::KIND_COUNT]>>,
    /// Log2 histogram of sampled per-invocation wall-clock costs (fed by
    /// the same 1-in-`TIMING_SAMPLE` clock reads as `elapsed_ns`, so it
    /// adds no hot-path cost of its own).
    latency: eden_telemetry::LogHistogram,
    /// Where the most recent trap happened: `(pc, opcode kind index)` of
    /// the instruction whose execution faulted. Written only on the trap
    /// exit path, so the dispatch loop never touches it.
    last_trap: Option<(u32, usize)>,
}

/// Where a trap happened, for the flight recorder: the program counter
/// and the opcode (kind index + mnemonic) whose execution faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapSite {
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// [`Op::kind_index`] of the faulting instruction.
    pub op_kind: usize,
}

impl TrapSite {
    /// Mnemonic of the faulting opcode.
    pub fn op_name(&self) -> &'static str {
        Op::kind_name(self.op_kind)
    }
}

impl Interpreter {
    /// Create an interpreter with the given resource limits.
    pub fn new(limits: Limits) -> Self {
        Interpreter {
            limits,
            stack: Vec::with_capacity(limits.max_stack),
            locals: Vec::with_capacity(limits.max_heap_slots),
            frames: Vec::with_capacity(limits.max_call_depth),
            usage: Usage::default(),
            counters: VmCounters::default(),
            profile: None,
            latency: eden_telemetry::LogHistogram::new(),
            last_trap: None,
        }
    }

    /// Resource limits this interpreter enforces.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// High-water marks from the most recent [`run`](Self::run).
    pub fn usage(&self) -> Usage {
        self.usage
    }

    /// Counters accumulated over all [`run`](Self::run) calls since
    /// creation or the last [`reset_counters`](Self::reset_counters).
    pub fn counters(&self) -> VmCounters {
        self.counters
    }

    /// Clear the accumulated counters (and the opcode histogram, if
    /// profiling is enabled).
    pub fn reset_counters(&mut self) {
        self.counters = VmCounters::default();
        self.latency.reset();
        if let Some(hist) = self.profile.as_deref_mut() {
            hist.fill(0);
        }
    }

    /// Sampled per-invocation wall-clock histogram (1-in-`TIMING_SAMPLE`
    /// runs contribute a sample; the bucket shape is representative, the
    /// count is not a run count).
    pub fn latency_histogram(&self) -> &eden_telemetry::LogHistogram {
        &self.latency
    }

    /// Where the most recent trap happened, if any [`run`](Self::run) has
    /// trapped since creation. Survives subsequent successful runs so a
    /// fault handler a few frames up can still attribute the trap.
    pub fn last_trap(&self) -> Option<TrapSite> {
        self.last_trap.map(|(pc, op_kind)| TrapSite { pc, op_kind })
    }

    /// Enable or disable the per-opcode histogram. Enabling allocates the
    /// histogram (zeroed); disabling drops it. Off by default — when off,
    /// the dispatch loop pays one predictable branch per instruction.
    pub fn set_opcode_profiling(&mut self, enabled: bool) {
        if enabled {
            if self.profile.is_none() {
                self.profile = Some(Box::new([0; Op::KIND_COUNT]));
            }
        } else {
            self.profile = None;
        }
    }

    /// The opcode histogram, if profiling is enabled: counts indexed by
    /// [`Op::kind_index`] (use [`Op::kind_name`] for mnemonics).
    pub fn opcode_histogram(&self) -> Option<&[u64; Op::KIND_COUNT]> {
        self.profile.as_deref()
    }

    /// Execute `program` against `host`. Returns the packet disposition, or
    /// the trap that terminated the program.
    ///
    /// The program must have been verified (guaranteed by
    /// [`Program::new`]), so operand-stack underflow and wild jumps cannot
    /// occur; the checks that remain at runtime are the dynamic ones:
    /// limits, division by zero, array bounds, unknown state slots.
    pub fn run(&mut self, program: &Program, host: &mut dyn Host) -> Result<Outcome, VmError> {
        // Wall-clock accounting is sampled: reading the clock twice per
        // invocation costs more than interpreting a short action function,
        // so one run in TIMING_SAMPLE is timed and scaled up. Action
        // functions are uniform per program, so the estimate converges
        // fast; `elapsed_ns` stays monotone either way.
        let sampled = self.counters.invocations % TIMING_SAMPLE == 0;
        let started = if sampled {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let result = if self.profile.is_some() {
            self.run_inner::<true>(program, host)
        } else {
            self.run_inner::<false>(program, host)
        };
        self.counters.invocations += 1;
        self.counters.traps += result.is_err() as u64;
        self.counters.steps += self.usage.steps;
        if let Some(t) = started {
            let dt = t.elapsed().as_nanos() as u64;
            self.counters.elapsed_ns += dt * TIMING_SAMPLE;
            self.latency.record(dt);
        }
        result
    }

    fn run_inner<const PROFILE: bool>(
        &mut self,
        program: &Program,
        host: &mut dyn Host,
    ) -> Result<Outcome, VmError> {
        self.stack.clear();
        self.locals.clear();
        self.frames.clear();
        self.usage = Usage::default();

        let entry_locals = program.entry_locals() as usize;
        if entry_locals > self.limits.max_heap_slots {
            return Err(VmError::HeapOverflow);
        }
        self.locals.resize(entry_locals, 0);
        self.usage.peak_heap_slots = entry_locals;

        // Hot-loop state lives in locals so it can stay in registers; the
        // `usage` write-back happens once, after the dispatch loop exits
        // (on traps too — the closure funnels every return through here).
        let max_stack = self.limits.max_stack;
        let fuel_limit = self.limits.fuel.unwrap_or(u64::MAX);
        let mut steps: u64 = 0;
        let mut peak_stack: usize = 0;

        // `pc` lives outside the dispatch closure so the trap exit path
        // below can attribute a fault to the instruction that raised it.
        let mut pc: usize = 0;
        let result = (|| -> Result<Outcome, VmError> {
            let ops = program.ops();
            let mut locals_base: usize = 0;

            macro_rules! push {
                ($v:expr) => {{
                    if self.stack.len() >= max_stack {
                        return Err(VmError::StackOverflow);
                    }
                    self.stack.push($v);
                    if self.stack.len() > peak_stack {
                        peak_stack = self.stack.len();
                    }
                }};
            }
            // Pop is infallible on verified programs; the error path is kept for
            // defence in depth (a Host could not cause it, but a future op bug
            // should trap, not panic).
            macro_rules! pop {
                () => {
                    match self.stack.pop() {
                        Some(v) => v,
                        None => return Err(VmError::StackUnderflow),
                    }
                };
            }
            macro_rules! binop {
                ($f:expr) => {{
                    let b = pop!();
                    let a = pop!();
                    let r = $f(a, b);
                    push!(r);
                }};
            }

            loop {
                if steps >= fuel_limit {
                    return Err(VmError::OutOfFuel);
                }
                steps += 1;

                let op = match ops.get(pc) {
                    Some(op) => *op,
                    None => return Err(VmError::BadJump(pc as u32)),
                };
                pc += 1;

                if PROFILE {
                    if let Some(hist) = self.profile.as_deref_mut() {
                        hist[op.kind_index()] += 1;
                    }
                }

                match op {
                    Op::Push(v) => push!(v),
                    Op::Dup => {
                        let v = *self.stack.last().ok_or(VmError::StackUnderflow)?;
                        push!(v);
                    }
                    Op::Pop => {
                        pop!();
                    }
                    Op::Swap => {
                        let n = self.stack.len();
                        if n < 2 {
                            return Err(VmError::StackUnderflow);
                        }
                        self.stack.swap(n - 1, n - 2);
                    }

                    Op::LoadLocal(s) => {
                        let idx = locals_base + s as usize;
                        let v = *self.locals.get(idx).ok_or(VmError::BadLocal(s))?;
                        push!(v);
                    }
                    Op::StoreLocal(s) => {
                        let v = pop!();
                        let idx = locals_base + s as usize;
                        *self.locals.get_mut(idx).ok_or(VmError::BadLocal(s))? = v;
                    }

                    Op::LoadPkt(s) => push!(host.load_pkt(s)?),
                    Op::StorePkt(s) => {
                        let v = pop!();
                        host.store_pkt(s, v)?;
                    }
                    Op::LoadMsg(s) => push!(host.load_msg(s)?),
                    Op::StoreMsg(s) => {
                        let v = pop!();
                        host.store_msg(s, v)?;
                    }
                    Op::LoadGlob(s) => push!(host.load_glob(s)?),
                    Op::StoreGlob(s) => {
                        let v = pop!();
                        host.store_glob(s, v)?;
                    }

                    Op::ArrLoad(a) => {
                        let idx = pop!();
                        push!(host.arr_load(a, idx)?);
                    }
                    Op::ArrStore(a) => {
                        let v = pop!();
                        let idx = pop!();
                        host.arr_store(a, idx, v)?;
                    }
                    Op::ArrLen(a) => push!(host.arr_len(a)?),

                    Op::Add => binop!(|a: i64, b: i64| a.wrapping_add(b)),
                    Op::Sub => binop!(|a: i64, b: i64| a.wrapping_sub(b)),
                    Op::Mul => binop!(|a: i64, b: i64| a.wrapping_mul(b)),
                    Op::Div => {
                        let b = pop!();
                        let a = pop!();
                        if b == 0 {
                            return Err(VmError::DivideByZero);
                        }
                        push!(a.wrapping_div(b));
                    }
                    Op::Rem => {
                        let b = pop!();
                        let a = pop!();
                        if b == 0 {
                            return Err(VmError::DivideByZero);
                        }
                        push!(a.wrapping_rem(b));
                    }
                    Op::Neg => {
                        let a = pop!();
                        push!(a.wrapping_neg());
                    }
                    Op::And => binop!(|a: i64, b: i64| a & b),
                    Op::Or => binop!(|a: i64, b: i64| a | b),
                    Op::Xor => binop!(|a: i64, b: i64| a ^ b),
                    Op::Not => {
                        let a = pop!();
                        push!(if a == 0 { 1 } else { 0 });
                    }
                    Op::Shl => binop!(|a: i64, b: i64| a.wrapping_shl(b as u32 & 63)),
                    Op::Shr => binop!(|a: i64, b: i64| a.wrapping_shr(b as u32 & 63)),

                    Op::Eq => binop!(|a, b| (a == b) as i64),
                    Op::Ne => binop!(|a, b| (a != b) as i64),
                    Op::Lt => binop!(|a, b| (a < b) as i64),
                    Op::Le => binop!(|a, b| (a <= b) as i64),
                    Op::Gt => binop!(|a, b| (a > b) as i64),
                    Op::Ge => binop!(|a, b| (a >= b) as i64),

                    Op::Jmp(t) => pc = t as usize,
                    Op::JmpIf(t) => {
                        if pop!() != 0 {
                            pc = t as usize;
                        }
                    }
                    Op::JmpIfNot(t) => {
                        if pop!() == 0 {
                            pc = t as usize;
                        }
                    }

                    Op::Call(id) => {
                        let func = *program
                            .funcs()
                            .get(id as usize)
                            .ok_or(VmError::BadFunction(id))?;
                        if self.frames.len() >= self.limits.max_call_depth {
                            return Err(VmError::CallDepthExceeded);
                        }
                        let new_base = self.locals.len();
                        if new_base + func.n_locals as usize > self.limits.max_heap_slots {
                            return Err(VmError::HeapOverflow);
                        }
                        self.locals.resize(new_base + func.n_locals as usize, 0);
                        if self.locals.len() > self.usage.peak_heap_slots {
                            self.usage.peak_heap_slots = self.locals.len();
                        }
                        // pop args right-to-left into locals 0..arity
                        for i in (0..func.arity).rev() {
                            let v = pop!();
                            self.locals[new_base + i as usize] = v;
                        }
                        self.frames.push(Frame {
                            ret_pc: pc as u32,
                            locals_base: locals_base as u32,
                        });
                        if self.frames.len() > self.usage.peak_call_depth {
                            self.usage.peak_call_depth = self.frames.len();
                        }
                        locals_base = new_base;
                        pc = func.entry as usize;
                    }
                    Op::Ret => {
                        let frame = self.frames.pop().ok_or(VmError::ReturnFromTopLevel)?;
                        // callee's locals are freed; its result stays on the stack
                        self.locals.truncate(locals_base);
                        locals_base = frame.locals_base as usize;
                        pc = frame.ret_pc as usize;
                    }
                    Op::Halt => return Ok(Outcome::Done),

                    Op::Rand => push!(host.rand64()),
                    Op::RandRange => {
                        let n = pop!();
                        if n <= 0 {
                            return Err(VmError::BadRandRange(n));
                        }
                        // Rejection-free modulo is fine here: hosts provide 63
                        // uniform bits and bounds are tiny (path counts, queue
                        // counts), so bias is negligible for the paper's uses.
                        push!(host.rand64() % n);
                    }
                    Op::Now => push!(host.now_ns()),
                    Op::Hash => {
                        let b = pop!();
                        let a = pop!();
                        push!(hash2(a, b));
                    }

                    Op::Drop => {
                        host.effect(Effect::Drop)?;
                        return Ok(Outcome::Dropped);
                    }
                    Op::SetQueue => {
                        let charge = pop!();
                        let queue = pop!();
                        host.effect(Effect::SetQueue { queue, charge })?;
                    }
                    Op::ToController => {
                        host.effect(Effect::ToController)?;
                        return Ok(Outcome::SentToController);
                    }
                    Op::GotoTable => {
                        let table = pop!();
                        host.effect(Effect::GotoTable { table })?;
                        if !(0..=u8::MAX as i64).contains(&table) {
                            return Err(VmError::BadTable(table));
                        }
                        return Ok(Outcome::GotoTable(table as u8));
                    }

                    // Superinstructions: one dispatch, no intermediate stack
                    // traffic — the fused operand lives in the op itself.
                    Op::AddImm(v) => {
                        let t = self.stack.last_mut().ok_or(VmError::StackUnderflow)?;
                        *t = t.wrapping_add(v);
                    }
                    Op::MulImm(v) => {
                        let t = self.stack.last_mut().ok_or(VmError::StackUnderflow)?;
                        *t = t.wrapping_mul(v);
                    }
                    Op::LoadPktAddImm(s, v) => push!(host.load_pkt(s)?.wrapping_add(v)),
                    Op::LoadPktMulImm(s, v) => push!(host.load_pkt(s)?.wrapping_mul(v)),
                    Op::IncrLocal(s, v) => {
                        let idx = locals_base + s as usize;
                        let p = self.locals.get_mut(idx).ok_or(VmError::BadLocal(s))?;
                        *p = p.wrapping_add(v);
                    }
                    Op::IncrMsg(s, v) => {
                        let cur = host.load_msg(s)?;
                        host.store_msg(s, cur.wrapping_add(v))?;
                    }
                    Op::IncrGlob(s, v) => {
                        let cur = host.load_glob(s)?;
                        host.store_glob(s, cur.wrapping_add(v))?;
                    }
                    Op::CmpBr(c, t) => {
                        let b = pop!();
                        let a = pop!();
                        if c.eval(a, b) {
                            pc = t as usize;
                        }
                    }
                    Op::PushCmpBr(c, v, t) => {
                        let a = pop!();
                        if c.eval(a, v) {
                            pc = t as usize;
                        }
                    }
                }
            }
        })();

        self.usage.steps = steps;
        self.usage.peak_stack = peak_stack;
        if result.is_err() {
            // `pc` was already advanced past the faulting instruction for
            // execution traps; fuel/entry faults fall back to the last
            // instruction dispatched (or none, if the program never ran).
            self.last_trap = pc
                .checked_sub(1)
                .and_then(|at| program.ops().get(at).map(|op| (at as u32, op.kind_index())));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::host::VecHost;
    use crate::program::FuncInfo;

    fn run(ops: Vec<Op>, host: &mut VecHost) -> Result<Outcome, VmError> {
        let p = Program::new("t", ops, vec![], 8).unwrap();
        Interpreter::new(Limits::default()).run(&p, host)
    }

    #[test]
    fn arithmetic() {
        let mut h = VecHost::with_slots(1, 0, 0);
        run(
            vec![
                Op::Push(6),
                Op::Push(7),
                Op::Mul,
                Op::Push(2),
                Op::Add,
                Op::StorePkt(0),
                Op::Halt,
            ],
            &mut h,
        )
        .unwrap();
        assert_eq!(h.packet[0], 44);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut h = VecHost::default();
        let e = run(
            vec![Op::Push(1), Op::Push(0), Op::Div, Op::Pop, Op::Halt],
            &mut h,
        );
        assert_eq!(e, Err(VmError::DivideByZero));
    }

    #[test]
    fn trap_site_names_faulting_opcode() {
        let trap = Program::new(
            "z",
            vec![Op::Push(1), Op::Push(0), Op::Div, Op::Pop, Op::Halt],
            vec![],
            0,
        )
        .unwrap();
        let ok = Program::new("t", vec![Op::Push(1), Op::Pop, Op::Halt], vec![], 0).unwrap();
        let mut interp = Interpreter::new(Limits::default());
        let mut h = VecHost::default();
        assert_eq!(interp.last_trap(), None);
        assert_eq!(interp.run(&trap, &mut h), Err(VmError::DivideByZero));
        let site = interp.last_trap().expect("trap recorded");
        assert_eq!(site.pc, 2);
        assert_eq!(site.op_name(), "div");
        // survives subsequent successful runs (flight recorder reads it late)
        interp.run(&ok, &mut h).unwrap();
        assert_eq!(interp.last_trap(), Some(site));
        // invocation 0 is always timed, so the latency histogram has samples
        assert!(!interp.latency_histogram().is_empty());
    }

    #[test]
    fn counters_accumulate_across_runs() {
        let p = Program::new("t", vec![Op::Push(1), Op::Pop, Op::Halt], vec![], 0).unwrap();
        let trap = Program::new(
            "z",
            vec![Op::Push(1), Op::Push(0), Op::Div, Op::Pop, Op::Halt],
            vec![],
            0,
        )
        .unwrap();
        let mut h = VecHost::default();
        let mut i = Interpreter::new(Limits::default());
        assert_eq!(i.counters(), VmCounters::default());

        i.run(&p, &mut h).unwrap();
        i.run(&p, &mut h).unwrap();
        assert!(i.run(&trap, &mut h).is_err());

        let c = i.counters();
        assert_eq!(c.invocations, 3);
        assert_eq!(c.traps, 1);
        assert_eq!(c.steps, 3 + 3 + 3); // both programs execute 3 ops
                                        // wall-clock cost is monotone; exact value is host-dependent
        let elapsed_after_three = c.elapsed_ns;
        i.run(&p, &mut h).unwrap();
        assert!(i.counters().elapsed_ns >= elapsed_after_three);

        i.reset_counters();
        assert_eq!(i.counters(), VmCounters::default());
    }

    #[test]
    fn opcode_profiling_is_opt_in() {
        let p = Program::new(
            "t",
            vec![Op::Push(2), Op::Push(3), Op::Add, Op::Pop, Op::Halt],
            vec![],
            0,
        )
        .unwrap();
        let mut h = VecHost::default();
        let mut i = Interpreter::new(Limits::default());
        i.run(&p, &mut h).unwrap();
        assert!(i.opcode_histogram().is_none());

        i.set_opcode_profiling(true);
        i.run(&p, &mut h).unwrap();
        i.run(&p, &mut h).unwrap();
        let hist = i.opcode_histogram().unwrap();
        assert_eq!(hist[Op::Push(0).kind_index()], 4);
        assert_eq!(hist[Op::Add.kind_index()], 2);
        assert_eq!(hist[Op::Halt.kind_index()], 2);
        assert_eq!(hist[Op::Mul.kind_index()], 0);

        i.reset_counters();
        assert!(i.opcode_histogram().unwrap().iter().all(|&n| n == 0));
        i.set_opcode_profiling(false);
        assert!(i.opcode_histogram().is_none());
    }

    #[test]
    fn loop_sums_with_builder() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.push(1).store_local(0); // i = 1
        b.push(0).store_local(1); // acc = 0
        b.bind(head);
        b.load_local(0).push(10).le().jmp_if_not(done);
        b.load_local(1).load_local(0).add().store_local(1);
        b.load_local(0).push(1).add().store_local(0);
        b.jmp(head);
        b.bind(done);
        b.load_local(1).store_pkt(0).halt();
        let p = b.with_entry_locals(2).build().unwrap();

        let mut h = VecHost::with_slots(1, 0, 0);
        let mut i = Interpreter::new(Limits::default());
        assert_eq!(i.run(&p, &mut h).unwrap(), Outcome::Done);
        assert_eq!(h.packet[0], 55);
        assert!(i.usage().steps > 50);
    }

    #[test]
    fn function_call_and_return() {
        // top: push 20, push 22, call add2, store pkt0
        let p = Program::new(
            "t",
            vec![
                Op::Push(20),
                Op::Push(22),
                Op::Call(0),
                Op::StorePkt(0),
                Op::Halt,
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::Add,
                Op::Ret,
            ],
            vec![FuncInfo {
                entry: 5,
                arity: 2,
                n_locals: 2,
            }],
            0,
        )
        .unwrap();
        let mut h = VecHost::with_slots(1, 0, 0);
        let mut i = Interpreter::new(Limits::default());
        i.run(&p, &mut h).unwrap();
        assert_eq!(h.packet[0], 42);
        assert_eq!(i.usage().peak_call_depth, 1);
    }

    #[test]
    fn deep_recursion_hits_call_depth() {
        // f() = f()  — infinite recursion
        let p = Program::new(
            "t",
            vec![
                Op::Call(0),
                Op::Pop,
                Op::Halt,
                Op::Call(0), // 3: f calls f
                Op::Ret,
            ],
            vec![FuncInfo {
                entry: 3,
                arity: 0,
                n_locals: 0,
            }],
            0,
        )
        .unwrap();
        let mut h = VecHost::default();
        let e = Interpreter::new(Limits::default()).run(&p, &mut h);
        assert_eq!(e, Err(VmError::CallDepthExceeded));
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let p = Program::new("t", vec![Op::Jmp(0)], vec![], 0).unwrap();
        let mut h = VecHost::default();
        let limits = Limits {
            fuel: Some(1000),
            ..Limits::default()
        };
        let e = Interpreter::new(limits).run(&p, &mut h);
        assert_eq!(e, Err(VmError::OutOfFuel));
    }

    #[test]
    fn drop_and_controller_outcomes() {
        let mut h = VecHost::default();
        assert_eq!(run(vec![Op::Drop], &mut h).unwrap(), Outcome::Dropped);
        assert_eq!(h.effects, vec![Effect::Drop]);

        let mut h = VecHost::default();
        assert_eq!(
            run(vec![Op::ToController], &mut h).unwrap(),
            Outcome::SentToController
        );
    }

    #[test]
    fn set_queue_records_charge() {
        let mut h = VecHost::default();
        assert_eq!(
            run(
                vec![Op::Push(3), Op::Push(65536), Op::SetQueue, Op::Halt],
                &mut h
            )
            .unwrap(),
            Outcome::Done
        );
        assert_eq!(
            h.effects,
            vec![Effect::SetQueue {
                queue: 3,
                charge: 65536
            }]
        );
    }

    #[test]
    fn goto_table_outcome() {
        let mut h = VecHost::default();
        assert_eq!(
            run(vec![Op::Push(2), Op::GotoTable], &mut h).unwrap(),
            Outcome::GotoTable(2)
        );
    }

    #[test]
    fn usage_tracks_stack_high_water() {
        let mut h = VecHost::default();
        let p = Program::new(
            "t",
            vec![
                Op::Push(1),
                Op::Push(2),
                Op::Push(3),
                Op::Add,
                Op::Add,
                Op::Pop,
                Op::Halt,
            ],
            vec![],
            0,
        )
        .unwrap();
        let mut i = Interpreter::new(Limits::default());
        i.run(&p, &mut h).unwrap();
        assert_eq!(i.usage().peak_stack, 3);
    }

    #[test]
    fn rand_range_bounds() {
        let mut h = VecHost::default();
        h.seed(42);
        let p = Program::new(
            "t",
            vec![Op::Push(10), Op::RandRange, Op::StorePkt(0), Op::Halt],
            vec![],
            0,
        )
        .unwrap();
        let mut i = Interpreter::new(Limits::default());
        let mut h2 = VecHost::with_slots(1, 0, 0);
        h2.seed(42);
        for _ in 0..100 {
            i.run(&p, &mut h2).unwrap();
            assert!((0..10).contains(&h2.packet[0]));
        }
        // non-positive bound traps
        let p = Program::new(
            "t",
            vec![Op::Push(0), Op::RandRange, Op::Pop, Op::Halt],
            vec![],
            0,
        )
        .unwrap();
        assert_eq!(i.run(&p, &mut h2), Err(VmError::BadRandRange(0)));
    }

    #[test]
    fn stack_overflow_enforced() {
        // The verifier statically rejects loops that grow the stack, so at
        // runtime an overflow means the program's (verified, finite) peak
        // depth exceeds this interpreter's configured budget.
        let limits = Limits {
            max_stack: 4,
            ..Limits::default()
        };
        let mut b = ProgramBuilder::new();
        for i in 0..6 {
            b.push(i);
        }
        for _ in 0..6 {
            b.pop();
        }
        b.halt();
        let p = b.build().unwrap();
        let mut h = VecHost::default();
        let e = Interpreter::new(limits).run(&p, &mut h);
        assert_eq!(e, Err(VmError::StackOverflow));
    }

    #[test]
    fn fused_ops_match_their_expansions() {
        use crate::op::Cmp;
        // fused: sum 1..=10 using IncrLocal / PushCmpBr / AddImm
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        let done = b.new_label();
        b.push(0).store_local(0); // i = 0
        b.push(0).store_local(1); // acc = 0
        b.bind(head);
        b.load_local(0).push_cmp_br(Cmp::Ge, 10, done);
        b.incr_local(0, 1);
        b.load_local(1).load_local(0).add().store_local(1);
        b.jmp(head);
        b.bind(done);
        b.load_local(1).add_imm(100).mul_imm(2).store_pkt(0).halt();
        let p = b.with_entry_locals(2).build().unwrap();

        let mut h = VecHost::with_slots(1, 0, 0);
        let mut i = Interpreter::new(Limits::default());
        assert_eq!(i.run(&p, &mut h).unwrap(), Outcome::Done);
        assert_eq!(h.packet[0], (55 + 100) * 2);

        // fused state/packet forms against a hand-computed result
        let mut b = ProgramBuilder::new();
        b.incr_msg(0, 7).incr_glob(1, -2);
        b.load_pkt_add_imm(0, 5).store_msg(1);
        b.load_pkt_mul_imm(0, 3).store_glob(0);
        let two = b.new_label();
        let out = b.new_label();
        b.load_pkt(0).load_pkt(1).cmp_br(Cmp::Gt, two);
        b.push(111).store_pkt(2).jmp(out);
        b.bind(two);
        b.push(222).store_pkt(2);
        b.bind(out);
        b.halt();
        let p = b.build().unwrap();

        let mut h = VecHost::with_slots(3, 2, 2);
        h.packet[0] = 10;
        h.packet[1] = 4;
        Interpreter::new(Limits::default()).run(&p, &mut h).unwrap();
        assert_eq!(h.msg[0], 7);
        assert_eq!(h.global[1], -2);
        assert_eq!(h.msg[1], 15);
        assert_eq!(h.global[0], 30);
        assert_eq!(h.packet[2], 222); // 10 > 4

        // wrapping semantics match the unfused ops
        let mut b = ProgramBuilder::new();
        b.push(i64::MAX).add_imm(1).store_pkt(0);
        b.push(i64::MAX).mul_imm(2).store_pkt(1);
        b.halt();
        let p = b.build().unwrap();
        let mut h = VecHost::with_slots(2, 0, 0);
        Interpreter::new(Limits::default()).run(&p, &mut h).unwrap();
        assert_eq!(h.packet[0], i64::MAX.wrapping_add(1));
        assert_eq!(h.packet[1], i64::MAX.wrapping_mul(2));
    }

    #[test]
    fn verifier_rejects_stack_growing_loops() {
        let mut b = ProgramBuilder::new();
        let head = b.new_label();
        b.bind(head);
        b.push(1).jmp(head);
        assert!(b.build().is_err());
    }
}
