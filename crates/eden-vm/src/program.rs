//! Compiled action-function programs.

use crate::op::Op;
use crate::verify::{self, VerifyError};

/// Entry in a program's function table, targeted by [`Op::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncInfo {
    /// Instruction index of the function's first op.
    pub entry: u32,
    /// Number of arguments, popped from the caller's operand stack into the
    /// callee's locals `0..arity`.
    pub arity: u8,
    /// Total locals the function needs (including its arguments).
    pub n_locals: u8,
}

/// A verified, immutable bytecode program.
///
/// Programs are produced either by the `eden-lang` compiler (the normal
/// path: controller compiles DSL source, ships bytecode to enclaves) or by
/// [`ProgramBuilder`](crate::ProgramBuilder) directly. Construction runs the
/// verifier, so an [`Interpreter`](crate::Interpreter) can dispatch without
/// per-instruction bounds anxiety — any residual trap (division by zero,
/// array index, limits) is a clean [`VmError`](crate::VmError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
    funcs: Vec<FuncInfo>,
    /// Locals needed by the top-level body.
    entry_locals: u8,
    /// Optional human-readable name (shows up in disassembly and enclave
    /// table dumps).
    name: String,
}

impl Program {
    /// Assemble and verify a program.
    pub fn new(
        name: impl Into<String>,
        ops: Vec<Op>,
        funcs: Vec<FuncInfo>,
        entry_locals: u8,
    ) -> Result<Self, VerifyError> {
        let p = Program {
            ops,
            funcs,
            entry_locals,
            name: name.into(),
        };
        verify::verify(&p)?;
        Ok(p)
    }

    /// The instruction stream.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The function table.
    pub fn funcs(&self) -> &[FuncInfo] {
        &self.funcs
    }

    /// Locals required by the top-level body.
    pub fn entry_locals(&self) -> u8 {
        self.entry_locals
    }

    /// Program name, for diagnostics.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serialized size in bytes if shipped as fixed 10-byte instructions
    /// (opcode + 8-byte immediate + scope tag). Used by benches to report
    /// controller→enclave update sizes.
    pub fn wire_size(&self) -> usize {
        self.ops.len() * 10 + self.funcs.len() * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_jump_targets() {
        let err = Program::new("bad", vec![Op::Jmp(99)], vec![], 0);
        assert!(err.is_err());
    }

    #[test]
    fn accepts_trivial_program() {
        let p = Program::new("ok", vec![Op::Push(1), Op::Pop, Op::Halt], vec![], 0).unwrap();
        assert_eq!(p.ops().len(), 3);
        assert_eq!(p.name(), "ok");
        assert!(p.wire_size() > 0);
    }
}
