//! Human-readable program dumps.
//!
//! Used by the controller's debug surface and the `quickstart` example to
//! show what actually ships to an enclave after compilation.

use std::fmt::Write as _;

use crate::program::Program;

/// Render `program` as one instruction per line, annotating function entry
/// points. The output is stable and suitable for golden tests.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; program '{}' — {} ops, {} function(s), {} entry locals",
        program.name(),
        program.ops().len(),
        program.funcs().len(),
        program.entry_locals()
    );
    for (pc, op) in program.ops().iter().enumerate() {
        for (id, func) in program.funcs().iter().enumerate() {
            if func.entry as usize == pc {
                let _ = writeln!(
                    out,
                    "; fn {id} (arity {}, locals {}):",
                    func.arity, func.n_locals
                );
            }
        }
        let _ = writeln!(out, "{pc:4}: {op}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn disassembly_is_stable() {
        let mut b = ProgramBuilder::new().named("demo");
        b.push(1).push(2).add().store_pkt(0).halt();
        let p = b.build().unwrap();
        let text = disassemble(&p);
        assert!(text.contains("; program 'demo'"));
        assert!(text.contains("   0: push 1"));
        assert!(text.contains("   2: add"));
        assert!(text.contains("   4: halt"));
    }

    #[test]
    fn function_entries_annotated() {
        let mut b = ProgramBuilder::new().named("f");
        b.push(1).call(0).pop().halt();
        b.begin_func(1, 1);
        b.load_local(0).ret();
        let p = b.build().unwrap();
        assert!(disassemble(&p).contains("; fn 0 (arity 1, locals 1):"));
    }
}
