//! Human-readable program dumps.
//!
//! Used by the controller's debug surface and the `quickstart` example to
//! show what actually ships to an enclave after compilation. Jump targets
//! are resolved to `L<n>` labels (numbered in target order) and the dump
//! ends with a static opcode histogram, so a reviewer can see at a glance
//! how much of a compiled function the fused superinstructions cover.

use std::fmt::Write as _;

use crate::op::Op;
use crate::program::Program;

fn jump_target(op: &Op) -> Option<u32> {
    match op {
        Op::Jmp(t) | Op::JmpIf(t) | Op::JmpIfNot(t) | Op::CmpBr(_, t) | Op::PushCmpBr(_, _, t) => {
            Some(*t)
        }
        _ => None,
    }
}

/// Render `program` as one instruction per line, annotating function entry
/// points, branch-target labels, and a closing static opcode histogram.
/// The output is stable and suitable for golden tests.
pub fn disassemble(program: &Program) -> String {
    let ops = program.ops();
    // label ids in ascending target order, so reading the listing top to
    // bottom meets L0, L1, ... in address order
    let mut targets: Vec<u32> = ops.iter().filter_map(jump_target).collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |t: u32| targets.binary_search(&t).map(|i| i as u32);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "; program '{}' — {} ops, {} function(s), {} entry locals",
        program.name(),
        program.ops().len(),
        program.funcs().len(),
        program.entry_locals()
    );
    for (pc, op) in ops.iter().enumerate() {
        for (id, func) in program.funcs().iter().enumerate() {
            if func.entry as usize == pc {
                let _ = writeln!(
                    out,
                    "; fn {id} (arity {}, locals {}):",
                    func.arity, func.n_locals
                );
            }
        }
        if let Ok(l) = label_of(pc as u32) {
            let _ = writeln!(out, "L{l}:");
        }
        match jump_target(op).map(label_of) {
            Some(Ok(l)) => {
                let _ = writeln!(out, "{pc:4}: {op}  ; -> L{l}");
            }
            _ => {
                let _ = writeln!(out, "{pc:4}: {op}");
            }
        }
    }
    // a label can point one past the last op only in unverified programs,
    // but keep the dump total either way
    for (l, t) in targets.iter().enumerate() {
        if *t as usize >= ops.len() {
            let _ = writeln!(out, "L{l}: ; (target {t} out of range)");
        }
    }
    let _ = writeln!(out, ";");
    let _ = writeln!(out, "; opcode histogram ({} ops):", ops.len());
    for (name, count) in opcode_histogram(program) {
        let _ = writeln!(out, ";   {name:<12} x{count}");
    }
    out
}

/// Static per-kind instruction counts for `program`, sorted by descending
/// count (ties broken by declaration order). Only kinds that occur are
/// returned.
pub fn opcode_histogram(program: &Program) -> Vec<(&'static str, usize)> {
    let mut counts = [0usize; Op::KIND_COUNT];
    for op in program.ops() {
        counts[op.kind_index()] += 1;
    }
    let mut entries: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries
        .into_iter()
        .map(|(i, c)| (Op::kind_name(i), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::Cmp;

    #[test]
    fn disassembly_is_stable() {
        let mut b = ProgramBuilder::new().named("demo");
        b.push(1).push(2).add().store_pkt(0).halt();
        let p = b.build().unwrap();
        let text = disassemble(&p);
        assert!(text.contains("; program 'demo'"));
        assert!(text.contains("   0: push 1"));
        assert!(text.contains("   2: add"));
        assert!(text.contains("   4: halt"));
        assert!(text.contains("; opcode histogram (5 ops):"));
        assert!(text.contains("push         x2"));
    }

    #[test]
    fn function_entries_annotated() {
        let mut b = ProgramBuilder::new().named("f");
        b.push(1).call(0).pop().halt();
        b.begin_func(1, 1);
        b.load_local(0).ret();
        let p = b.build().unwrap();
        assert!(disassemble(&p).contains("; fn 0 (arity 1, locals 1):"));
    }

    #[test]
    fn jump_targets_resolve_to_labels() {
        let mut b = ProgramBuilder::new().named("loopy");
        let head = b.new_label();
        let done = b.new_label();
        b.push(0).store_local(0);
        b.bind(head);
        b.load_local(0).push_cmp_br(Cmp::Ge, 3, done);
        b.incr_local(0, 1);
        b.jmp(head);
        b.bind(done);
        b.halt();
        let p = b.with_entry_locals(1).build().unwrap();
        let text = disassemble(&p);
        // loop head (op 2) is the lower target, exit (op 6) the higher
        assert!(text.contains("L0:\n   2: lload 0"), "listing:\n{text}");
        assert!(text.contains("; -> L1"), "listing:\n{text}");
        assert!(text.contains("jmp 2  ; -> L0"), "listing:\n{text}");
        assert!(text.contains("L1:\n   6: halt"), "listing:\n{text}");
        assert!(text.contains("lincr        x1"), "listing:\n{text}");
    }
}
