//! A pool of interpreters, one per enclave worker lane.
//!
//! The enclave's batched data path (§3.4.4) executes independent message
//! lanes in parallel; each lane needs its own [`Interpreter`] because the
//! execution context (operand stack, locals arena, counters) is reusable
//! mutable state. The pool owns one interpreter per lane — lane 0 doubles
//! as the serial path's interpreter — and rolls the per-lane counters and
//! opcode histograms up into one telemetry view, so a stats pull cannot
//! tell (and does not care) which lane ran an invocation.

use crate::interp::{Interpreter, VmCounters};
use crate::limits::Limits;
use crate::op::Op;

impl Interpreter {
    /// Batch-at-a-time execution seam: run `each(self, i)` for every
    /// index in `0..count`. Today this is a plain loop, but it is the
    /// single point where a whole lane-batch enters the VM — a future
    /// JIT (or superinstruction specializer) can translate once per
    /// batch here instead of once per packet.
    pub fn run_batch<F: FnMut(&mut Interpreter, usize)>(&mut self, count: usize, mut each: F) {
        for i in 0..count {
            each(self, i);
        }
    }
}

/// One [`Interpreter`] per worker lane, with merged telemetry.
#[derive(Debug)]
pub struct InterpreterPool {
    lanes: Vec<Interpreter>,
}

impl InterpreterPool {
    /// A pool of `lanes` interpreters (at least one), all with `limits`.
    pub fn new(limits: Limits, lanes: usize) -> InterpreterPool {
        let lanes = lanes.max(1);
        InterpreterPool {
            lanes: (0..lanes).map(|_| Interpreter::new(limits)).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Borrow one lane's interpreter.
    pub fn lane(&self, lane: usize) -> &Interpreter {
        &self.lanes[lane]
    }

    /// Borrow one lane's interpreter mutably.
    pub fn lane_mut(&mut self, lane: usize) -> &mut Interpreter {
        &mut self.lanes[lane]
    }

    /// Borrow all lanes at once (split across scoped worker threads).
    pub fn lanes_mut(&mut self) -> &mut [Interpreter] {
        &mut self.lanes
    }

    /// Run a whole batch on one lane's interpreter — see
    /// [`Interpreter::run_batch`] for why batches enter through a single
    /// call.
    pub fn run_lane_batch<F: FnMut(&mut Interpreter, usize)>(
        &mut self,
        lane: usize,
        count: usize,
        each: F,
    ) {
        self.lanes[lane].run_batch(count, each);
    }

    /// Counters summed over every lane.
    pub fn counters(&self) -> VmCounters {
        let mut total = VmCounters::default();
        for lane in &self.lanes {
            total.merge(lane.counters());
        }
        total
    }

    /// Sampled per-invocation latency histogram merged over every lane.
    pub fn latency_histogram(&self) -> eden_telemetry::LogHistogram {
        let mut total = eden_telemetry::LogHistogram::new();
        for lane in &self.lanes {
            total.merge(lane.latency_histogram());
        }
        total
    }

    /// The most recent trap site across all lanes (None if no lane has
    /// trapped). With multiple trapped lanes, lane order breaks the tie —
    /// good enough for a flight-recorder attribution.
    pub fn last_trap(&self) -> Option<crate::interp::TrapSite> {
        self.lanes.iter().find_map(|l| l.last_trap())
    }

    /// Clear every lane's counters (and histogram, if profiling).
    pub fn reset_counters(&mut self) {
        for lane in &mut self.lanes {
            lane.reset_counters();
        }
    }

    /// Enable or disable opcode profiling on every lane.
    pub fn set_opcode_profiling(&mut self, enabled: bool) {
        for lane in &mut self.lanes {
            lane.set_opcode_profiling(enabled);
        }
    }

    /// The opcode histogram summed over every lane, if profiling is on.
    pub fn opcode_histogram(&self) -> Option<Box<[u64; Op::KIND_COUNT]>> {
        let mut total: Option<Box<[u64; Op::KIND_COUNT]>> = None;
        for lane in &self.lanes {
            if let Some(hist) = lane.opcode_histogram() {
                let acc = total.get_or_insert_with(|| Box::new([0; Op::KIND_COUNT]));
                for (a, &h) in acc.iter_mut().zip(hist.iter()) {
                    *a += h;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::host::VecHost;

    fn tiny_program() -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        b.push(1).push(2).add().store_pkt(0).halt();
        b.build().unwrap()
    }

    #[test]
    fn counters_merge_across_lanes() {
        let prog = tiny_program();
        let mut pool = InterpreterPool::new(Limits::default(), 3);
        for lane in 0..3 {
            let mut host = VecHost::default();
            host.packet = vec![0];
            pool.lane_mut(lane).run(&prog, &mut host).unwrap();
        }
        let merged = pool.counters();
        assert_eq!(merged.invocations, 3);
        assert_eq!(merged.traps, 0);
        assert_eq!(merged.steps, 3 * pool.lane_mut(0).counters().steps);
    }

    #[test]
    fn histograms_merge_across_lanes() {
        let prog = tiny_program();
        let mut pool = InterpreterPool::new(Limits::default(), 2);
        assert!(pool.opcode_histogram().is_none());
        pool.set_opcode_profiling(true);
        for lane in 0..2 {
            let mut host = VecHost::default();
            host.packet = vec![0];
            pool.lane_mut(lane).run(&prog, &mut host).unwrap();
        }
        let hist = pool.opcode_histogram().expect("profiling on");
        // both lanes ran the same 5-op program once each
        assert_eq!(hist.iter().sum::<u64>(), 10);
        pool.set_opcode_profiling(false);
        assert!(pool.opcode_histogram().is_none());
    }

    #[test]
    fn at_least_one_lane() {
        let pool = InterpreterPool::new(Limits::default(), 0);
        assert_eq!(pool.lanes(), 1);
    }
}
