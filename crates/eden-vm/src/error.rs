//! VM trap conditions.
//!
//! The paper's safety story (§3.4.3): "a faulty action function will result
//! in terminating the execution of that program, but will not affect the
//! rest of the system." Every error below terminates the offending program;
//! the enclave then applies its fail-open/fail-closed policy to the packet
//! and keeps forwarding.

use std::fmt;

/// Why an action function was terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Operand stack exceeded [`Limits::max_stack`](crate::Limits).
    StackOverflow,
    /// An op needed more operands than the stack held. Unreachable for
    /// verified programs.
    StackUnderflow,
    /// Locals arena ("heap") exceeded [`Limits::max_heap_slots`](crate::Limits).
    HeapOverflow,
    /// Call depth exceeded [`Limits::max_call_depth`](crate::Limits).
    CallDepthExceeded,
    /// The optional instruction budget ran out.
    OutOfFuel,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// `RandRange` invoked with a non-positive bound.
    BadRandRange(i64),
    /// Jump or fall-through past the end of the program. Unreachable for
    /// verified programs.
    BadJump(u32),
    /// `Call` referenced a function id not in the program's function table.
    BadFunction(u16),
    /// A local slot index was out of range for the current frame.
    BadLocal(u8),
    /// The host rejected a state slot (packet/message/global field id not in
    /// the bound schema).
    BadStateSlot { scope: StateScope, slot: u8 },
    /// A global-array access was out of bounds or referenced an unknown
    /// array.
    BadArrayAccess { array: u8, index: i64 },
    /// The host refused a write (e.g. the schema marks the field read-only;
    /// defence in depth — the compiler rejects these statically too).
    ReadOnlyViolation { scope: StateScope, slot: u8 },
    /// `Ret` executed with no call frame (top level uses `Halt`).
    ReturnFromTopLevel,
    /// An invalid queue id was passed to `SetQueue`.
    BadQueue(i64),
    /// An invalid table id was passed to `GotoTable`.
    BadTable(i64),
}

/// Which of the three state scopes an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateScope {
    /// Packet header fields (HeaderMap-resolved).
    Packet,
    /// Per-message state ("exists for the duration of the message").
    Message,
    /// Per-function global state ("till the function is being used in the
    /// enclave").
    Global,
}

impl fmt::Display for StateScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateScope::Packet => write!(f, "packet"),
            StateScope::Message => write!(f, "message"),
            StateScope::Global => write!(f, "global"),
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VmError::*;
        match self {
            StackOverflow => write!(f, "operand stack overflow"),
            StackUnderflow => write!(f, "operand stack underflow"),
            HeapOverflow => write!(f, "locals/heap overflow"),
            CallDepthExceeded => write!(f, "call depth exceeded"),
            OutOfFuel => write!(f, "instruction budget exhausted"),
            DivideByZero => write!(f, "division by zero"),
            BadRandRange(n) => write!(f, "randrange bound must be positive, got {n}"),
            BadJump(t) => write!(f, "jump target {t} out of range"),
            BadFunction(id) => write!(f, "unknown function id {id}"),
            BadLocal(s) => write!(f, "local slot {s} out of range"),
            BadStateSlot { scope, slot } => write!(f, "unknown {scope} state slot {slot}"),
            BadArrayAccess { array, index } => {
                write!(f, "array {array} access at index {index} out of bounds")
            }
            ReadOnlyViolation { scope, slot } => {
                write!(f, "write to read-only {scope} state slot {slot}")
            }
            ReturnFromTopLevel => write!(f, "ret executed outside any function"),
            BadQueue(q) => write!(f, "invalid rate-limit queue id {q}"),
            BadTable(t) => write!(f, "invalid match-action table id {t}"),
        }
    }
}

impl std::error::Error for VmError {}
