//! # eden-vm — the Eden action-function interpreter
//!
//! Eden (SIGCOMM 2015, §3.4.3) executes data-plane *action functions* through
//! a small stack-based interpreter, "similar in spirit to the Java Virtual
//! Machine": bytecode is produced once by the controller-side compiler and
//! can then be injected into any enclave — OS driver or programmable NIC —
//! without dynamic code loading. This crate is that virtual machine.
//!
//! Deliberate restrictions, straight from the paper:
//!
//! * no objects, no exceptions, no floating point, no JIT;
//! * bounded operand stack and heap (the paper reports ~64 B stack and
//!   ~256 B heap for its case-study programs, see [`Limits`]);
//! * the only environment access is through the [`Host`] trait: packet
//!   header fields, per-message state, per-function global state, random
//!   numbers, a high-frequency clock, and a fixed set of side effects
//!   (drop, queue selection, route/priority updates happen via header and
//!   state writes).
//!
//! The enclave (in `eden-core`) owns the authoritative state; the VM only
//! ever touches it through [`Host`], which is what lets the enclave enforce
//! the paper's copy-in/copy-out consistency and concurrency model.
//!
//! ## Example
//!
//! ```
//! use eden_vm::{ProgramBuilder, Interpreter, VecHost, Limits};
//!
//! // packet.priority <- packet.size + 1   (slot 0 = size, slot 1 = priority)
//! let mut b = ProgramBuilder::new();
//! b.load_pkt(0).push(1).add().store_pkt(1).halt();
//! let program = b.build().unwrap();
//!
//! let mut host = VecHost::default();
//! host.packet = vec![41, 0];
//! let mut interp = Interpreter::new(Limits::default());
//! interp.run(&program, &mut host).unwrap();
//! assert_eq!(host.packet[1], 42);
//! ```

mod builder;
mod codec;
mod disasm;
mod error;
mod host;
mod interp;
mod limits;
mod op;
mod pool;
mod program;
mod verify;

pub use builder::{BuildError, Label, ProgramBuilder};
pub use codec::{
    decode as decode_program, encode as encode_program, CodecError, MIN_VERSION, VERSION,
};
pub use disasm::{disassemble, opcode_histogram};
pub use error::{StateScope, VmError};
pub use host::{Effect, Host, VecHost};
pub use interp::{hash2, Interpreter, Outcome, TrapSite, VmCounters};
pub use limits::{Limits, Usage};
pub use op::{Cmp, Op};
pub use pool::InterpreterPool;
pub use program::{FuncInfo, Program};
pub use verify::{verify, VerifyError, MAX_PROGRAM_OPS};
