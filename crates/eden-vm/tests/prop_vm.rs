//! Property tests for the interpreter and verifier.
//!
//! Two invariants matter for Eden's safety story:
//!
//! 1. **Verifier soundness** — a program accepted by the verifier never
//!    underflows the operand stack, never jumps out of range, and never
//!    touches a local outside its frame at runtime. We generate random
//!    expression trees, compile them naively, and run them: any
//!    `StackUnderflow`/`BadJump`/`BadLocal` is a bug.
//! 2. **Interpreter correctness** — the VM agrees with a direct Rust
//!    reference evaluation of the same expression tree.

use eden_vm::{Interpreter, Limits, Op, Program, VecHost, VmError};
use proptest::prelude::*;

/// A tiny expression language: exactly what action functions do with values.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Pkt(u8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Const),
        (0u8..4).prop_map(Expr::Pkt),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn eval(e: &Expr, pkt: &[i64]) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Pkt(s) => pkt[*s as usize],
        Expr::Add(a, b) => eval(a, pkt).wrapping_add(eval(b, pkt)),
        Expr::Sub(a, b) => eval(a, pkt).wrapping_sub(eval(b, pkt)),
        Expr::Mul(a, b) => eval(a, pkt).wrapping_mul(eval(b, pkt)),
        Expr::Lt(a, b) => (eval(a, pkt) < eval(b, pkt)) as i64,
        Expr::If(c, t, f) => {
            if eval(c, pkt) != 0 {
                eval(t, pkt)
            } else {
                eval(f, pkt)
            }
        }
    }
}

/// Naive stack-code emission with absolute-jump fixups.
fn emit(e: &Expr, ops: &mut Vec<Op>) {
    match e {
        Expr::Const(v) => ops.push(Op::Push(*v)),
        Expr::Pkt(s) => ops.push(Op::LoadPkt(*s)),
        Expr::Add(a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Add);
        }
        Expr::Sub(a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Sub);
        }
        Expr::Mul(a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Mul);
        }
        Expr::Lt(a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Lt);
        }
        Expr::If(c, t, f) => {
            emit(c, ops);
            let br = ops.len();
            ops.push(Op::JmpIfNot(0)); // patched
            emit(t, ops);
            let out = ops.len();
            ops.push(Op::Jmp(0)); // patched
            let else_at = ops.len() as u32;
            emit(f, ops);
            let end = ops.len() as u32;
            ops[br] = Op::JmpIfNot(else_at);
            ops[out] = Op::Jmp(end);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vm_matches_reference_eval(e in arb_expr(), pkt in proptest::collection::vec(-100i64..100, 4)) {
        let mut ops = Vec::new();
        emit(&e, &mut ops);
        ops.push(Op::StoreMsg(0));
        ops.push(Op::Halt);
        let program = Program::new("prop", ops, vec![], 0).expect("verifier must accept emitted code");

        let mut host = VecHost::with_slots(4, 1, 0);
        host.packet.copy_from_slice(&pkt);
        let mut interp = Interpreter::new(Limits {
            max_stack: 256,
            ..Limits::default()
        });
        interp.run(&program, &mut host).expect("verified straight-line code cannot trap");
        prop_assert_eq!(host.msg[0], eval(&e, &pkt));
    }

    #[test]
    fn verified_programs_never_underflow(e in arb_expr()) {
        let mut ops = Vec::new();
        emit(&e, &mut ops);
        ops.push(Op::Pop);
        ops.push(Op::Halt);
        let program = Program::new("prop", ops, vec![], 0).unwrap();
        let mut host = VecHost::with_slots(4, 0, 0);
        let mut interp = Interpreter::new(Limits {
            max_stack: 256,
            ..Limits::default()
        });
        match interp.run(&program, &mut host) {
            Ok(_) => {}
            Err(VmError::StackOverflow) => {} // budget, not soundness
            Err(other) => prop_assert!(false, "unexpected trap: {other}"),
        }
    }

    #[test]
    fn truncated_programs_never_pass_both_verify_and_trap_unsafely(
        e in arb_expr(),
        cut in 1usize..10,
    ) {
        // Chop the tail off a valid program: the verifier must either reject
        // it, or the interpreter must run it without panicking.
        let mut ops = Vec::new();
        emit(&e, &mut ops);
        ops.push(Op::Pop);
        ops.push(Op::Halt);
        let n = ops.len().saturating_sub(cut).max(1);
        ops.truncate(n);
        if let Ok(program) = Program::new("cut", ops, vec![], 0) {
            let mut host = VecHost::with_slots(4, 0, 0);
            let mut interp = Interpreter::new(Limits {
                max_stack: 256,
                fuel: Some(10_000),
                ..Limits::default()
            });
            let _ = interp.run(&program, &mut host); // must not panic
        }
    }

    #[test]
    fn usage_peaks_never_exceed_limits(e in arb_expr(), pkt in proptest::collection::vec(-5i64..5, 4)) {
        let mut ops = Vec::new();
        emit(&e, &mut ops);
        ops.push(Op::Pop);
        ops.push(Op::Halt);
        let program = Program::new("prop", ops, vec![], 4).unwrap();
        let limits = Limits { max_stack: 256, ..Limits::default() };
        let mut host = VecHost::with_slots(4, 0, 0);
        host.packet.copy_from_slice(&pkt);
        let mut interp = Interpreter::new(limits);
        if interp.run(&program, &mut host).is_ok() {
            prop_assert!(interp.usage().peak_stack <= limits.max_stack);
            prop_assert!(interp.usage().peak_heap_slots <= limits.max_heap_slots);
        }
    }
}
