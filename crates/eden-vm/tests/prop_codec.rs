//! Property tests for the bytecode wire codec: round-trips over arbitrary
//! *valid* programs, and arbitrary byte mutations never panic the decoder.

use eden_vm::{decode_program, encode_program, Interpreter, Limits, Op, Program, VecHost};
use proptest::prelude::*;

/// Generate a random straight-line (always-valid) program: balanced pushes
/// and arithmetic, state touches, ending in Halt.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        prop_oneof![
            (-1000i64..1000).prop_map(|v| vec![Op::Push(v), Op::Pop]),
            Just(vec![Op::Push(3), Op::Push(4), Op::Add, Op::Pop]),
            Just(vec![Op::Push(9), Op::Push(2), Op::Mul, Op::StoreMsg(0)]),
            (0u8..4).prop_map(|s| vec![Op::LoadPkt(s), Op::StorePkt(0)]),
            Just(vec![Op::Rand, Op::Pop]),
            Just(vec![Op::Now, Op::StoreGlob(0)]),
            (0u8..2).prop_map(|s| vec![Op::LoadLocal(s), Op::Push(1), Op::Add, Op::StoreLocal(s)]),
        ],
        1..40,
    )
    .prop_map(|chunks| {
        let mut ops: Vec<Op> = chunks.into_iter().flatten().collect();
        ops.push(Op::Halt);
        Program::new("arb", ops, vec![], 2).expect("straight-line chunks are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips(p in arb_program()) {
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&q, &p);

        // and the decoded program executes identically
        let mut h1 = VecHost::with_slots(4, 1, 1);
        let mut h2 = VecHost::with_slots(4, 1, 1);
        h1.seed(7);
        h2.seed(7);
        let mut i1 = Interpreter::new(Limits::default());
        let mut i2 = Interpreter::new(Limits::default());
        let r1 = i1.run(&p, &mut h1);
        let r2 = i2.run(&q, &mut h2);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(h1.packet, h2.packet);
        prop_assert_eq!(h1.msg, h2.msg);
        prop_assert_eq!(h1.global, h2.global);
    }

    #[test]
    fn mutated_blobs_never_panic(p in arb_program(), at in 0usize..2000, xor in 1u8..=255) {
        let mut bytes = encode_program(&p);
        let n = bytes.len();
        bytes[at % n] ^= xor;
        // may decode to a different-but-valid program, or error; never panic
        if let Ok(q) = decode_program(&bytes) {
            // if it decodes, it must still be runnable without panicking
            let mut h = VecHost::with_slots(4, 1, 1);
            let mut interp = Interpreter::new(Limits {
                fuel: Some(100_000),
                ..Limits::default()
            });
            let _ = interp.run(&q, &mut h);
        }
    }

    #[test]
    fn truncated_blobs_never_decode_to_unverified_programs(p in arb_program(), cut in 1usize..100) {
        let bytes = encode_program(&p);
        let n = bytes.len().saturating_sub(cut);
        if let Ok(q) = decode_program(&bytes[..n]) {
            // truncation that still decodes (ops count is in the header, so
            // this should be impossible) must at least be verified
            let mut h = VecHost::with_slots(4, 1, 1);
            let mut interp = Interpreter::new(Limits {
                fuel: Some(100_000),
                ..Limits::default()
            });
            let _ = interp.run(&q, &mut h);
        }
    }
}
