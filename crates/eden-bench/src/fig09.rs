//! Figure 9 — case study 1: flow scheduling (PIAS and SFF vs. baseline).
//!
//! Setup mirrors §5.1: one worker answers requests with response flows
//! drawn from a search-like size distribution at ~70% load on the client's
//! 10 Gbps downlink, while three background sources pump long flows at the
//! same client. Priority thresholds define three classes — small (<10 KB,
//! highest), intermediate (10 KB–1 MB), background. We report the mean and
//! 95th-percentile flow completion time of small and intermediate response
//! flows, for {baseline, PIAS, SFF} × {native, Eden}.
//!
//! The "baseline/Eden" arm reproduces the paper's subtlety: classification
//! and the data-plane function run, "but ignoring the interpreter output
//! before packets are transmitted" — here the function's `Priority` slot is
//! simply not header-mapped, so the same computation happens and nothing
//! reaches the wire.

use eden_apps::apps::reqresp::{BackgroundSender, RequestClient, Worker};
use eden_apps::functions::{self, FunctionBundle};
use eden_apps::workload::{flow_class, FlowClass, FlowSizeDist, PoissonArrivals};
use eden_core::{Controller, Enclave, EnclaveConfig, InstalledFunction, MatchSpec, Stage, TableId};
use eden_lang::{compile, Schema};
use netsim::{LinkSpec, Network, NodeId, SimRng, Switch, SwitchConfig, Time};
use transport::{app_timer_token, Host, Stack, StackConfig};

/// Scheduling schemes of case study 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No prioritization.
    Baseline,
    /// Priority demotion by bytes sent (application-agnostic).
    Pias,
    /// Shortest flow first from application-provided sizes.
    Sff,
}

/// Data-plane execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Hard-coded function in the enclave.
    Native,
    /// Bytecode through the Eden interpreter.
    Eden,
}

/// Experiment knobs (defaults follow the paper's setup, scaled in time).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub seed: u64,
    /// Request-issuing window; the run drains afterwards.
    pub duration: Time,
    /// Target load on the client downlink from responses.
    pub load: f64,
    /// Number of background senders.
    pub background_senders: usize,
    /// Switch buffer per (port, priority class). Defaults to 1 MB — the
    /// paper's Arista 7050 has megabytes of shared buffer, and the baseline
    /// queueing delay the figure shows needs deep buffers to exist.
    pub switch_buffer_bytes: usize,
    /// One-way host latency folded into each access link's propagation
    /// delay. The simulator's stack is otherwise instantaneous; real
    /// kernel/NIC paths on the 2015 testbed cost tens of microseconds per
    /// direction, which is most of a small flow's FCT floor.
    pub host_latency: Time,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 1,
            duration: Time::from_millis(120),
            load: 0.7,
            background_senders: 3,
            switch_buffer_bytes: 1 << 20,
            host_latency: Time::from_micros(25),
        }
    }
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// FCTs of small (<10 KB) responses, microseconds.
    pub small_us: Vec<f64>,
    /// FCTs of intermediate (10 KB–1 MB) responses, microseconds.
    pub intermediate_us: Vec<f64>,
    /// Background bytes the client sank (link saturation check).
    pub background_bytes: u64,
    /// Total exchanges completed.
    pub completions: usize,
}

/// A PIAS/SFF bundle whose `Priority` packet field is *not* header-mapped:
/// same computation, no effect on the wire (the baseline/Eden arm).
fn blind_schema(bundle: &FunctionBundle) -> Schema {
    let mapped = bundle.schema();
    let mut blind = Schema::new();
    for f in mapped.fields() {
        let header = if f.name == "Priority" { None } else { f.header };
        blind = match f.scope {
            eden_lang::Scope::Packet => blind.packet_field(&f.name, f.access, header),
            eden_lang::Scope::Message => blind.msg_field(&f.name, f.access),
            eden_lang::Scope::Global => blind.global_field(&f.name, f.access),
        };
    }
    for a in mapped.arrays() {
        let fields: Vec<&str> = a.fields.iter().map(String::as_str).collect();
        blind = blind.global_array(&a.name, &fields, a.access);
    }
    blind
}

/// Build the scheduling function for one (scheme, engine) arm; `None` for
/// the native baseline (no enclave at all).
fn build_function(scheme: Scheme, engine: Engine) -> Option<InstalledFunction> {
    let bundle = match scheme {
        Scheme::Baseline | Scheme::Pias => functions::pias(),
        Scheme::Sff => functions::sff(),
    };
    match (scheme, engine) {
        (Scheme::Baseline, Engine::Native) => None,
        (Scheme::Baseline, Engine::Eden) => {
            // classification + interpretation run; output unmapped
            let schema = blind_schema(&bundle);
            let compiled = compile(bundle.name, &bundle.source, &schema).expect("compiles");
            Some(InstalledFunction::interpreted("baseline-blind", compiled))
        }
        (_, Engine::Eden) => Some(bundle.interpreted()),
        (_, Engine::Native) => Some(bundle.native()),
    }
}

/// Thresholds for the three flow classes (§5.1): small → 7, intermediate
/// → 5, background → 1.
fn thresholds() -> Vec<i64> {
    Controller::flatten_pairs(&Controller::fixed_thresholds([7, 5, 1]))
}

/// Run one arm of Figure 9.
pub fn run(scheme: Scheme, engine: Engine, cfg: &Config) -> RunResult {
    let mut net = Network::new(cfg.seed);
    let mut controller = Controller::new();
    let all_class = controller.class("app.flows.ALL");

    // --- workload planning ----------------------------------------------
    let dist = FlowSizeDist::web_search();
    let mut planning_rng = SimRng::new(0xE0E0);
    let mean = dist.empirical_mean(&mut planning_rng, 20_000);
    let arrivals = PoissonArrivals::for_load(10e9, cfg.load, mean);

    // --- hosts ------------------------------------------------------------
    let client_app = RequestClient::new(
        2,
        7000,
        arrivals,
        SimRng::new(cfg.seed.wrapping_add(11)),
        64,
        cfg.duration,
    );
    let mut worker_app = Worker::new(7000, dist, SimRng::new(cfg.seed.wrapping_add(22)));
    let mut stage = Stage::new("app", &["msg_type", "msg_size"], &["msg_id", "msg_size"]);
    controller.create_stage_rule(&mut stage, "flows", vec![], "ALL");
    worker_app.stage = stage;

    let client = net.add_node(Host::new(Stack::new(1, StackConfig::default()), client_app));
    let worker = net.add_node(Host::new(Stack::new(2, StackConfig::default()), worker_app));
    let mut senders = vec![worker];
    let mut bg_nodes = Vec::new();
    for i in 0..cfg.background_senders {
        let ip = 3 + i as u32;
        let app = BackgroundSender::new(1, 7001, 1_500_000_000, vec![all_class.0], 1);
        let node = net.add_node(Host::new(Stack::new(ip, StackConfig::default()), app));
        senders.push(node);
        bg_nodes.push(node);
    }

    let sw = net.add_node(Switch::new(SwitchConfig {
        per_queue_bytes: cfg.switch_buffer_bytes,
    }));
    let mut all_hosts = vec![client, worker];
    all_hosts.extend(&bg_nodes);
    let link = LinkSpec {
        propagation: Time::from_micros(1) + cfg.host_latency,
        ..LinkSpec::ten_gbps()
    };
    for (i, &h) in all_hosts.iter().enumerate() {
        let (_, sw_port) = net.connect(h, sw, link);
        net.node_mut::<Switch>(sw)
            .install_route(1 + i as u32, sw_port);
    }

    // --- enclaves on every sender (worker + background) -------------------
    for &node in &senders {
        if let Some(function) = build_function(scheme, engine) {
            let mut enclave = Enclave::new(EnclaveConfig::default());
            let f = enclave.install_function(function);
            enclave.install_rule(TableId(0), MatchSpec::Class(all_class), f);
            enclave.set_array(f, 0, thresholds());
            install_enclave(&mut net, node, enclave);
        }
    }

    // --- go ----------------------------------------------------------------
    net.schedule_timer(worker, Time::ZERO, app_timer_token(0));
    net.schedule_timer(client, Time::from_micros(1), app_timer_token(0));
    for (i, &bg) in bg_nodes.iter().enumerate() {
        net.schedule_timer(
            bg,
            Time::from_micros(100 + 7 * i as u64),
            app_timer_token(0),
        );
    }
    // generous drain so late small flows complete
    net.run_until(cfg.duration + Time::from_millis(30));

    // --- collect -------------------------------------------------------------
    let mut small_us = Vec::new();
    let mut intermediate_us = Vec::new();
    let (completions, background_bytes) = {
        let host: &Host<RequestClient> = net.node(client);
        for c in &host.app.completions {
            let us = c.fct.as_nanos() as f64 / 1_000.0;
            match flow_class(u64::from(c.size)) {
                FlowClass::Small => small_us.push(us),
                FlowClass::Intermediate => intermediate_us.push(us),
                FlowClass::Background => {}
            }
        }
        (host.app.completions.len(), host.app.background_bytes)
    };
    RunResult {
        small_us,
        intermediate_us,
        background_bytes,
        completions,
    }
}

/// Sender hosts come in two concrete types (worker, background sender), so
/// enclave installation dispatches on the node's app type.
fn install_enclave(net: &mut Network, node: NodeId, enclave: Enclave) {
    if let Some(h) = net.try_node_mut::<Host<Worker>>(node) {
        h.stack.set_hook(enclave);
    } else if let Some(h) = net.try_node_mut::<Host<BackgroundSender>>(node) {
        h.stack.set_hook(enclave);
    } else {
        panic!("unknown sender node type");
    }
}
