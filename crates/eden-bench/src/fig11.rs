//! Figure 11 — case study 3: Pulsar's size-aware rate control.
//!
//! Two tenants issue 64 KB IOs against a storage server behind a 1 Gbps
//! link: one tenant READs, the other WRITEs. READ requests are tiny on the
//! forward path, so without policing they flood the server's shared IO
//! queue and the WRITE tenant's throughput collapses (the paper measures a
//! ~72% drop). Pulsar's enclave function charges each READ request its
//! *operation* size at the client's rate limiter, equalizing the tenants.

use eden_apps::apps::storage::{StorageServer, TenantClient};
use eden_apps::functions::{self, MSG_TYPE_READ, MSG_TYPE_WRITE};
use eden_apps::stages::storage_stage;
use eden_core::{Controller, Enclave, EnclaveConfig, MatchSpec, TableId};
use netsim::{LinkSpec, Network, Switch, SwitchConfig, Time};
use transport::{app_timer_token, Host, Stack, StackConfig, TcpConfig};

/// The three bars of Figure 11 (isolated runs measure one tenant alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Only the READ tenant runs.
    ReadIsolated,
    /// Only the WRITE tenant runs.
    WriteIsolated,
    /// Both run, no rate control.
    Simultaneous,
    /// Both run; READ requests rate-limited by operation size.
    RateControlled,
}

/// Experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub seed: u64,
    /// Measurement window (after warmup, before stop).
    pub warmup: Time,
    pub until: Time,
    /// IO size (the paper's 64 KB).
    pub io_size: u32,
    /// Outstanding IOs per tenant: READ floods, WRITE is modest.
    pub read_window: usize,
    pub write_window: usize,
    /// RAM-disk service bandwidth.
    pub disk_bps: u64,
    /// Rate granted to the READ tenant's limiter in the controlled mode.
    pub read_limit_bps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 1,
            warmup: Time::from_millis(100),
            until: Time::from_millis(500),
            io_size: 64 * 1024,
            read_window: 24,
            write_window: 8,
            disk_bps: 1_000_000_000,
            read_limit_bps: 500_000_000,
        }
    }
}

/// Throughputs over the measurement window, in MB/s.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    pub read_mbps: f64,
    pub write_mbps: f64,
    /// Diagnostics: total ops each tenant completed (whole run).
    pub read_ops_total: usize,
    pub write_ops_total: usize,
    /// Server-side counters.
    pub server_ops: u64,
    pub server_peak_queue: usize,
}

/// Run one bar of Figure 11.
pub fn run(mode: Mode, cfg: &Config) -> RunResult {
    let mut net = Network::new(cfg.seed);
    let mut controller = Controller::new();

    let run_read = !matches!(mode, Mode::WriteIsolated);
    let run_write = !matches!(mode, Mode::ReadIsolated);

    // --- hosts ------------------------------------------------------------
    let (read_stage, classes) = storage_stage(&mut controller);
    let (write_stage, _) = storage_stage(&mut controller);

    // Client stacks use a production-like min RTO (Windows/Linux use
    // 200-300 ms): a token-bucket limiter below TCP adds per-packet
    // delays that a 2 ms datacenter RTO misreads as loss, and each
    // spurious go-back-N retransmission would be charged by the limiter
    // again.
    let client_cfg = StackConfig {
        tcp: TcpConfig {
            min_rto: Time::from_millis(50),
            ..Default::default()
        },
        ..Default::default()
    };
    let server = net.add_node(Host::new(
        Stack::new(3, StackConfig::default()),
        StorageServer::new(7100, cfg.disk_bps),
    ));
    let read_client = net.add_node(Host::new(
        Stack::new(1, client_cfg),
        TenantClient::new(
            3,
            7100,
            0,
            MSG_TYPE_READ,
            cfg.io_size,
            cfg.read_window,
            read_stage,
            cfg.until,
        ),
    ));
    let write_client = net.add_node(Host::new(
        Stack::new(2, client_cfg),
        TenantClient::new(
            3,
            7100,
            1,
            MSG_TYPE_WRITE,
            cfg.io_size,
            cfg.write_window,
            write_stage,
            cfg.until,
        ),
    ));

    let sw = net.add_node(Switch::new(SwitchConfig::default()));
    let (_, p_read) = net.connect(read_client, sw, LinkSpec::ten_gbps());
    let (_, p_write) = net.connect(write_client, sw, LinkSpec::ten_gbps());
    let (_, p_server) = net.connect(server, sw, LinkSpec::one_gbps());
    {
        let s = net.node_mut::<Switch>(sw);
        s.install_route(1, p_read);
        s.install_route(2, p_write);
        s.install_route(3, p_server);
    }

    // --- Pulsar enclave on the READ tenant's host -------------------------
    if matches!(mode, Mode::RateControlled) {
        let host = net.node_mut::<Host<TenantClient>>(read_client);
        // tenant 0's rate-limited queue, sized to pass one 64KB charge
        let queue = host
            .stack
            .add_limiter(cfg.read_limit_bps, u64::from(cfg.io_size));
        let bundle = functions::pulsar();
        let mut enclave = Enclave::new(EnclaveConfig::default());
        let f = enclave.install_function(bundle.interpreted());
        enclave.install_rule(TableId(0), MatchSpec::Class(classes.io), f);
        enclave.set_array(f, 0, vec![queue as i64]);
        host.stack.set_hook(enclave);
    }

    // --- run ----------------------------------------------------------------
    net.schedule_timer(server, Time::ZERO, app_timer_token(0));
    if run_read {
        net.schedule_timer(read_client, Time::from_micros(10), app_timer_token(0));
    }
    if run_write {
        net.schedule_timer(write_client, Time::from_micros(20), app_timer_token(0));
    }
    net.run_until(cfg.until + Time::from_millis(20));

    // --- measure over [warmup, until) -------------------------------------
    let window_s = (cfg.until - cfg.warmup).as_secs_f64();
    let read_bytes = net
        .node::<Host<TenantClient>>(read_client)
        .app
        .bytes_completed_between(cfg.warmup, cfg.until);
    let write_bytes = net
        .node::<Host<TenantClient>>(write_client)
        .app
        .bytes_completed_between(cfg.warmup, cfg.until);
    let read_ops_total = net
        .node::<Host<TenantClient>>(read_client)
        .app
        .completions
        .len();
    let write_ops_total = net
        .node::<Host<TenantClient>>(write_client)
        .app
        .completions
        .len();
    let srv = &net.node::<Host<StorageServer>>(server).app;
    RunResult {
        read_mbps: if run_read {
            read_bytes as f64 / 1e6 / window_s
        } else {
            0.0
        },
        write_mbps: if run_write {
            write_bytes as f64 / 1e6 / window_s
        } else {
            0.0
        },
        read_ops_total,
        write_ops_total,
        server_ops: srv.ops_serviced,
        server_peak_queue: srv.peak_queue,
    }
}
