//! Table rendering shared by the bench targets: aligned columns and
//! paper-vs-measured rows, so `cargo bench` output reads like the paper's
//! figures.

use std::fmt::Write as _;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}ms", v / 1000.0)
    } else {
        format!("{v:.0}us")
    }
}

/// Format bits/second as Mb/s or Gb/s.
pub fn bps(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} Gb/s", v / 1e9)
    } else {
        format!("{:.0} Mb/s", v / 1e6)
    }
}

/// Format a mean ± half-CI pair.
pub fn pm(mean: f64, ci: f64, unit: &str) -> String {
    format!("{mean:.1}±{ci:.1}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["scheme", "value"]);
        t.row(&["baseline".into(), "363".into()]);
        t.row(&["pias".into(), "274".into()]);
        let s = t.render();
        assert!(s.contains("| scheme   | value |"));
        assert!(s.contains("| baseline | 363   |"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(us(363.4), "363us");
        assert_eq!(us(1600.0), "1.60ms");
        assert_eq!(bps(7.8e9), "7.80 Gb/s");
        assert_eq!(bps(250e6), "250 Mb/s");
    }
}
