//! Table rendering shared by the bench targets: aligned columns and
//! paper-vs-measured rows, so `cargo bench` output reads like the paper's
//! figures — plus machine-readable `BENCH_<figure>.json` emission so runs
//! can be diffed and plotted without scraping stdout.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

use eden_telemetry::Json;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Write `value` as `BENCH_<figure>.json` under `EDEN_BENCH_DIR`
/// (default: the current directory) and return the path. Bench targets
/// call this after printing their human-readable tables so every run
/// leaves a machine-readable artifact behind.
pub fn emit_json(figure: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = std::env::var("EDEN_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir).join(format!("BENCH_{figure}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(value.render().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Format microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}ms", v / 1000.0)
    } else {
        format!("{v:.0}us")
    }
}

/// Format bits/second as Mb/s or Gb/s.
pub fn bps(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} Gb/s", v / 1e9)
    } else {
        format!("{:.0} Mb/s", v / 1e6)
    }
}

/// Format a mean ± half-CI pair.
pub fn pm(mean: f64, ci: f64, unit: &str) -> String {
    format!("{mean:.1}±{ci:.1}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["scheme", "value"]);
        t.row(&["baseline".into(), "363".into()]);
        t.row(&["pias".into(), "274".into()]);
        let s = t.render();
        assert!(s.contains("| scheme   | value |"));
        assert!(s.contains("| baseline | 363   |"));
    }

    #[test]
    fn emit_json_writes_bench_artifact() {
        let dir = std::env::temp_dir().join("eden-bench-emit-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("EDEN_BENCH_DIR", &dir);
        let value = Json::obj(vec![("answer", 42u64.into())]);
        let path = emit_json("figtest", &value).unwrap();
        std::env::remove_var("EDEN_BENCH_DIR");
        assert!(path.ends_with("BENCH_figtest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"answer\":42}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(us(363.4), "363us");
        assert_eq!(us(1600.0), "1.60ms");
        assert_eq!(bps(7.8e9), "7.80 Gb/s");
        assert_eq!(bps(250e6), "250 Mb/s");
    }
}
