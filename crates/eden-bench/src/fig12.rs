//! Figure 12 — CPU overheads of the Eden components, plus the §5.4
//! interpreter footprint.
//!
//! The paper runs 12 long TCP flows at 10 Gbps under the SFF policy and
//! reports the extra CPU each Eden component costs over the vanilla stack:
//! the metadata **API**, the **enclave** (classification + match-action +
//! state management), and the **interpreter** on top of a native function.
//!
//! Virtual time cannot measure CPU, so this module times the *real* code on
//! the real machine: per-packet wall-clock cost of
//!
//! 1. `baseline`   — vanilla per-packet stack work (segment build + wire
//!    encode, the dominant per-packet cost we model);
//! 2. `+ API`      — baseline plus stage classification & metadata attach;
//! 3. `+ enclave`  — plus the match-action walk running the *native* SFF
//!    function (state management without interpretation);
//! 4. `+ interp`   — same but the SFF function interpreted from bytecode.
//!
//! Components are reported the way the paper plots them: each layer's
//! *increment* as a percentage of vanilla per-packet stack cost, for the
//! average and the 95th percentile across batches. One substitution is
//! unavoidable: the paper's denominator is the CPU of a full Windows
//! kernel TCP stack at 10 Gbps, which a simulator cannot run. We therefore
//! measure every Eden layer's *absolute* per-packet cost on this machine
//! and report it against a documented reference stack cost of 2.5 µs per
//! packet (a conservative per-packet CPU figure for a 2015-era kernel TCP
//! stack; override with `EDEN_STACK_NS`). The raw nanoseconds are printed
//! alongside so the ratio can be re-derived for any denominator.

use std::time::Instant;

use eden_apps::functions;
use eden_core::{ClassId, Controller, Enclave, EnclaveConfig, MatchSpec, Stage, TableId};
use eden_telemetry::{Json, ToJson};
use netsim::{wire, EdenMeta, Packet, SimRng, Summary, TcpHeader, Time};

/// Reference per-packet CPU cost of a vanilla kernel TCP stack, ns.
/// Overridable via the `EDEN_STACK_NS` environment variable.
pub fn reference_stack_ns() -> f64 {
    std::env::var("EDEN_STACK_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_500.0)
}

/// Per-component overhead percentages (of the reference stack cost).
#[derive(Debug, Clone, Copy)]
pub struct Overheads {
    pub api_pct: f64,
    pub enclave_pct: f64,
    pub interpreter_pct: f64,
}

/// Figure 12's two bars.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    pub average: Overheads,
    pub p95: Overheads,
    /// Raw per-packet costs (ns) for the four stacked configurations.
    pub baseline_ns: f64,
    pub api_ns: f64,
    pub enclave_ns: f64,
    pub interpreter_ns: f64,
}

impl ToJson for Overheads {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("api_pct", self.api_pct.into()),
            ("enclave_pct", self.enclave_pct.into()),
            ("interpreter_pct", self.interpreter_pct.into()),
        ])
    }
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("reference_stack_ns", reference_stack_ns().into()),
            ("average", self.average.to_json()),
            ("p95", self.p95.to_json()),
            ("baseline_ns", self.baseline_ns.into()),
            ("api_ns", self.api_ns.into()),
            ("enclave_ns", self.enclave_ns.into()),
            ("interpreter_ns", self.interpreter_ns.into()),
        ])
    }
}

/// Per-catalogue-function interpreter cost: the same DSL source compiled
/// without any optimization and with the full IR + superinstruction
/// pipeline, interpreted over identical host state.
#[derive(Debug, Clone)]
pub struct InterpCost {
    pub function: String,
    /// Mean per-packet cost with `CompileOptions { optimize: false,
    /// fuse: false }` — the naive stack-code translation.
    pub unopt_ns_per_packet: f64,
    /// Mean per-packet cost with the default pipeline (IR passes plus
    /// codec-v2 superinstructions).
    pub fused_ns_per_packet: f64,
}

impl InterpCost {
    /// Machine-independent speedup ratio (>1 means the pipeline wins).
    /// This is the number the CI gate checks; the raw wall-clock points
    /// carry `_ns` in their names so the gate can skip them.
    pub fn fused_speedup_rate(&self) -> f64 {
        self.unopt_ns_per_packet / self.fused_ns_per_packet
    }
}

impl ToJson for InterpCost {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("function", self.function.as_str().into()),
            ("unopt_ns_per_packet", self.unopt_ns_per_packet.into()),
            ("fused_ns_per_packet", self.fused_ns_per_packet.into()),
            ("fused_speedup_rate", self.fused_speedup_rate().into()),
        ])
    }
}

/// §5.4 footprint of one case-study program.
#[derive(Debug, Clone, Copy)]
pub struct Footprint {
    pub name: &'static str,
    pub stack_bytes: usize,
    pub heap_bytes: usize,
}

impl ToJson for Footprint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.into()),
            ("stack_bytes", self.stack_bytes.into()),
            ("heap_bytes", self.heap_bytes.into()),
        ])
    }
}

fn make_packet(i: u64, with_meta: bool) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 40000 + (i % 12) as u16, // the paper's 12 flows
            dst_port: 7000,
            seq: (i * 1460) as u32,
            ack: 0,
            flags: netsim::TcpFlags {
                ack: true,
                ..Default::default()
            },
            window: 8192,
        },
        1460,
    );
    if with_meta {
        p.meta = Some(EdenMeta {
            classes: vec![1],
            msg_id: 1 + i % 12,
            msg_size: 5_000_000,
            ..Default::default()
        });
    }
    p
}

/// Vanilla per-packet stack work: build the frame bytes (checksum
/// included) exactly as the NIC path would.
#[inline]
fn baseline_work(p: &Packet) -> u64 {
    let bytes = wire::encode(p);
    u64::from(bytes[20]) // consume so the encode cannot be optimized out
}

fn build_enclave(interpreted: bool) -> Enclave {
    let bundle = functions::sff();
    let mut e = Enclave::new(EnclaveConfig::default());
    let f = e.install_function(if interpreted {
        bundle.interpreted()
    } else {
        bundle.native()
    });
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    e.set_array(f, 0, vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
    e
}

/// Measure per-packet cost of one configuration over `batches`×`per_batch`
/// packets; returns per-batch per-packet nanoseconds.
fn measure<F: FnMut(u64) -> u64>(batches: usize, per_batch: usize, mut work: F) -> Vec<f64> {
    let mut sink = 0u64;
    // warmup
    for i in 0..per_batch as u64 {
        sink = sink.wrapping_add(work(i));
    }
    let mut samples = Vec::with_capacity(batches);
    let mut n = 0u64;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            sink = sink.wrapping_add(work(n));
            n += 1;
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        samples.push(elapsed / per_batch as f64);
    }
    std::hint::black_box(sink);
    samples
}

/// Run the component-cost measurement.
pub fn run(batches: usize, per_batch: usize) -> RunResult {
    // 1. baseline: segment + encode
    let base = measure(batches, per_batch, |i| {
        let p = make_packet(i, false);
        baseline_work(&p)
    });

    // 2. + API: stage classification once per message (12 live messages,
    //    like the 12 flows) + per-packet metadata attach
    let mut controller = Controller::new();
    let mut stage = Stage::new("app", &["msg_type"], &["msg_id", "msg_size"]);
    controller.create_stage_rule(&mut stage, "flows", vec![], "ALL");
    let metas: Vec<EdenMeta> = (0..12)
        .map(|_| stage.classify(&[("msg_type", eden_core::FieldValue::Str("RESP".into()))]))
        .collect();
    let api = measure(batches, per_batch, |i| {
        let mut p = make_packet(i, false);
        let mut meta = metas[(i % 12) as usize].clone();
        meta.msg_size = 5_000_000;
        p.meta = Some(meta);
        baseline_work(&p)
    });

    // 3. + enclave with the native SFF function
    let mut native_enclave = build_enclave(false);
    let mut rng = SimRng::new(7);
    let native = measure(batches, per_batch, |i| {
        let mut p = make_packet(i, true);
        let _ = native_enclave.process(&mut p, &mut rng, Time::from_nanos(i));
        baseline_work(&p)
    });

    // 4. + the interpreter instead of native
    let mut interp_enclave = build_enclave(true);
    let mut rng2 = SimRng::new(7);
    let interp = measure(batches, per_batch, |i| {
        let mut p = make_packet(i, true);
        let _ = interp_enclave.process(&mut p, &mut rng2, Time::from_nanos(i));
        baseline_work(&p)
    });

    let s_base = Summary::new(base);
    let s_api = Summary::new(api);
    let s_native = Summary::new(native);
    let s_interp = Summary::new(interp);

    let reference = reference_stack_ns();
    // each layer's increment over the previous, as % of the vanilla stack
    let inc = |hi: f64, lo: f64| ((hi - lo) / reference * 100.0).max(0.0);
    RunResult {
        average: Overheads {
            api_pct: inc(s_api.mean(), s_base.mean()),
            enclave_pct: inc(s_native.mean(), s_api.mean()),
            interpreter_pct: inc(s_interp.mean(), s_native.mean()),
        },
        p95: Overheads {
            api_pct: inc(s_api.percentile(95.0), s_base.percentile(95.0)),
            enclave_pct: inc(s_native.percentile(95.0), s_api.percentile(95.0)),
            interpreter_pct: inc(s_interp.percentile(95.0), s_native.percentile(95.0)),
        },
        baseline_ns: s_base.mean(),
        api_ns: s_api.mean(),
        enclave_ns: s_native.mean(),
        interpreter_ns: s_interp.mean(),
    }
}

/// A bare `VecHost` with the generic catalogue state the micro benches
/// also use: every schema array populated with one small threshold row,
/// every global set to 1 (so divisors are never zero).
pub fn catalogue_host(bundle: &functions::FunctionBundle) -> eden_vm::VecHost {
    let mut host = eden_vm::VecHost::with_slots(8, 8, 8);
    for _ in bundle.schema().arrays() {
        host.arrays.push(vec![1_000_000, 1, i64::MAX, 0]);
    }
    for g in host.global.iter_mut() {
        *g = 1;
    }
    host
}

/// Interpreter ablation behind the Figure 12 bar: per-packet cost of
/// every catalogue function with the compiler pipeline off vs on. The
/// wall-clock points are machine-dependent; [`InterpCost::fused_speedup_rate`]
/// is the portable number.
pub fn interp_costs(batches: usize, per_batch: usize) -> Vec<InterpCost> {
    use eden_lang::{compile_with_options, CompileOptions};
    use eden_vm::{Interpreter, Limits};

    let modes = [
        CompileOptions {
            optimize: false,
            fuse: false,
        },
        CompileOptions {
            optimize: true,
            fuse: true,
        },
    ];
    let mut out = Vec::new();
    for bundle in functions::catalogue() {
        let schema = bundle.schema();
        let cost_of = |opts: CompileOptions| -> f64 {
            let program = compile_with_options(bundle.name, &bundle.source, &schema, opts)
                .expect("catalogue compiles")
                .program;
            let mut host = catalogue_host(&bundle);
            let mut interp = Interpreter::new(Limits::default());
            let samples = measure(batches, per_batch, |i| {
                host.packet[0] = 1460 * ((i % 64) as i64 + 1);
                match interp.run(&program, &mut host) {
                    Ok(_) => host.packet[1] as u64,
                    Err(e) => panic!("{} trapped on catalogue state: {e:?}", bundle.name),
                }
            });
            Summary::new(samples).mean()
        };
        out.push(InterpCost {
            function: bundle.name.to_string(),
            unopt_ns_per_packet: cost_of(modes[0]),
            fused_ns_per_packet: cost_of(modes[1]),
        });
    }
    out
}

/// One new-bundle cost sanity row: the XFSM-era Table 1 additions must
/// stay in the same cost class as the established bundle doing the most
/// similar work, or the machine lowering has regressed.
#[derive(Debug, Clone)]
pub struct NewBundleCheck {
    pub function: &'static str,
    /// The established bundle it is compared against.
    pub peer: &'static str,
    pub fused_ns_per_packet: f64,
    pub peer_fused_ns_per_packet: f64,
    /// Quality flag the bench gate holds: fused cost ≤ 2× the peer's.
    pub within_2x: bool,
}

impl ToJson for NewBundleCheck {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("function", self.function.into()),
            ("peer", self.peer.into()),
            ("fused_ns_per_packet", self.fused_ns_per_packet.into()),
            (
                "peer_fused_ns_per_packet",
                self.peer_fused_ns_per_packet.into(),
            ),
            ("within_2x", self.within_2x.into()),
        ])
    }
}

/// Pair each Table 1 bundle added with the XFSM layer against the
/// established bundle whose data path is closest in shape, and flag
/// whether its fused interpreter cost stays within 2×.
pub fn new_bundle_checks(costs: &[InterpCost]) -> Vec<NewBundleCheck> {
    // (new bundle, comparable veteran): l4lb's rendezvous walk vs wcmp's
    // weight walk; conga's DRE arg-min walk and ids's full signature-table
    // scan vs pias's threshold-ladder walk (all are per-packet multi-row
    // table walks that cannot early-exit in the generic bench state —
    // unlike sff, whose search terminates at row 0 there); the two
    // flow-state machines vs conntrack and flow-counter respectively
    const PAIRS: [(&str, &str); 5] = [
        ("l4lb", "wcmp"),
        ("conga", "pias"),
        ("ids", "pias"),
        ("stateful-firewall", "conntrack"),
        ("rate-limit", "flow-counter"),
    ];
    let fused = |name: &str| -> f64 {
        costs
            .iter()
            .find(|c| c.function == name)
            .map(|c| c.fused_ns_per_packet)
            .unwrap_or(f64::NAN)
    };
    PAIRS
        .iter()
        .map(|(new, peer)| {
            let (a, b) = (fused(new), fused(peer));
            NewBundleCheck {
                function: new,
                peer,
                fused_ns_per_packet: a,
                peer_fused_ns_per_packet: b,
                within_2x: a.is_finite() && b.is_finite() && a <= 2.0 * b,
            }
        })
        .collect()
}

/// §5.4: interpreter operand-stack/heap footprint of the case-study
/// programs ("in the order of 64 and 256 bytes respectively").
pub fn footprints() -> Vec<Footprint> {
    use eden_vm::{Interpreter, Limits, VecHost};

    let mut out = Vec::new();
    for (bundle, setup) in [
        (functions::pias_fig7(), 1usize),
        (functions::sff(), 2),
        (functions::wcmp(), 3),
        (functions::pulsar(), 4),
    ] {
        let compiled = eden_lang::compile(bundle.name, &bundle.source, &bundle.schema())
            .expect("catalogue compiles");
        let mut host = VecHost::with_slots(8, 8, 8);
        match setup {
            1 | 2 => host
                .arrays
                .push(vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]),
            3 => {
                host.arrays.push(vec![1, 10, 2, 1]);
                host.global[0] = 11;
            }
            _ => host.arrays.push(vec![0, 1, 2, 3, 4, 5, 6, 7]),
        }
        if setup == 1 {
            host.msg[1] = 7; // desired priority ≥ 1 → consult the thresholds
        }
        let mut interp = Interpreter::new(Limits::default());
        let mut peak_stack = 0;
        let mut peak_heap = 0;
        for i in 0..64 {
            host.packet[0] = 1460 * (i + 1);
            interp
                .run(&compiled.program, &mut host)
                .expect("case-study program must not trap");
            peak_stack = peak_stack.max(interp.usage().peak_stack_bytes());
            peak_heap = peak_heap.max(interp.usage().peak_heap_bytes());
        }
        out.push(Footprint {
            name: bundle.name,
            stack_bytes: peak_stack,
            heap_bytes: peak_heap,
        });
    }
    out
}
