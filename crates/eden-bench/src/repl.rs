//! Replication-plane benchmark: how stale are replica views, and what
//! does keeping them fresh cost on the wire, as the fleet grows and the
//! control channel degrades?
//!
//! Each `(host count, control loss)` point installs a fleet-wide merged
//! counter (`replicated(merged)` global), drives data-plane load on every
//! host while the replication loop piggybacks deltas/views on the
//! heartbeat cadence, and reads the controller's own telemetry:
//!
//! * **staleness** — the `repl.staleness` histogram: age of each host's
//!   contribution at ingest time. Bounded by the heartbeat cadence while
//!   connected; loss stretches the tail.
//! * **delta bytes** — the `repl.delta_bytes` histogram: wire cost of the
//!   delta section riding each Pong.
//!
//! After the load window the loss is healed and the point asserts the
//! merged total is *exact* on the hub and on every replica — the
//! lost-increment check from `tests/repl_cluster.rs`, here as a quality
//! flag the bench gate holds (`exact_after_heal` flipping true -> false
//! fails CI).
//!
//! Everything runs in virtual time on the simulated fabric, so every
//! metric is deterministic for a given seed: the gate compares exact
//! numbers, not noisy wall-clock samples.

use eden_core::{Controller, Enclave, EnclaveConfig, EnclaveOp, FuncId, MatchSpec};
use eden_ctrl::{ControllerApp, CtrlConfig, EnclaveAgent, TICK};
use eden_lang::{Access, ReplMode, Schema};
use eden_telemetry::{Json, LatencyStat, ToJson};
use netsim::{LinkId, LinkSpec, Network, NodeId, Packet, Switch, SwitchConfig, Time, UdpHeader};
use transport::{app_timer_token, App, Host, Stack, StackConfig};

struct Idle;
impl App for Idle {}

/// One measured `(hosts, loss)` sweep point, aggregated over seeds.
#[derive(Debug, Clone)]
pub struct Point {
    pub hosts: usize,
    pub loss_permille: u32,
    pub seeds: usize,
    /// Mean replica staleness at ingest across the load window, µs.
    pub staleness_mean_us: f64,
    /// Worst p99 staleness across the seeds, µs.
    pub staleness_p99_us: f64,
    /// Worst median delta-section wire cost across the seeds, bytes.
    pub delta_bytes_p50: f64,
    /// Worst p99 delta-section wire cost across the seeds, bytes.
    pub delta_bytes_p99: f64,
    /// After the loss heals, the hub total and every host's replica view
    /// equal the exact number of increments — in every seed.
    pub exact_after_heal: bool,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hosts", Json::UInt(self.hosts as u64)),
            ("loss_permille", Json::UInt(u64::from(self.loss_permille))),
            ("seeds", Json::UInt(self.seeds as u64)),
            ("staleness_mean_us", Json::Float(self.staleness_mean_us)),
            ("staleness_p99_us", Json::Float(self.staleness_p99_us)),
            ("delta_bytes_p50", Json::Float(self.delta_bytes_p50)),
            ("delta_bytes_p99", Json::Float(self.delta_bytes_p99)),
            ("exact_after_heal", Json::Bool(self.exact_after_heal)),
        ])
    }
}

const CTRL_ADDR: u32 = 1000;
/// Convergence polling granularity.
const SLICE: Time = Time::from_micros(50);
/// Data-plane slices per load window and packets a host processes in one.
const LOAD_SLICES: u64 = 40;
const PKTS_PER_SLICE: u64 = 3;

struct Cluster {
    net: Network,
    ctrl: NodeId,
    ctrl_link: LinkId,
    nodes: Vec<NodeId>,
}

/// The fleet-wide counter: one `replicated(merged)` global, bumped once
/// per packet.
fn counter_ops() -> Vec<EnclaveOp> {
    let controller = Controller::new();
    let schema = Schema::new()
        .global_field("Count", Access::ReadWrite)
        .replicated(ReplMode::MergedSum);
    let source = "fun (packet, msg, _global) -> _global.Count <- _global.Count + 1";
    let func = controller
        .plan_function("fleet_count", source, &schema)
        .expect("compiles");
    vec![
        EnclaveOp::Reset,
        func,
        EnclaveOp::InstallRule {
            table: 0,
            spec: MatchSpec::Any,
            func: 0,
        },
    ]
}

fn build(seed: u64, hosts: usize, loss_permille: u32) -> Cluster {
    let cfg = CtrlConfig::default();
    let mut net = Network::new(seed);
    let sw = net.add_node(Switch::new(SwitchConfig::default()));

    let mut nodes = Vec::new();
    for i in 0..hosts {
        let addr = (i + 1) as u32;
        let mut stack = Stack::new(addr, StackConfig::default());
        stack.set_hook(EnclaveAgent::new_with_addr(
            addr,
            Enclave::new(EnclaveConfig::default()),
        ));
        stack.set_ctrl_port(cfg.ctrl_port);
        let node = net.add_node(Host::new(stack, Idle));
        let (_, sp) = net.connect(node, sw, LinkSpec::ten_gbps());
        net.node_mut::<Switch>(sw).install_route(addr, sp);
        nodes.push(node);
    }

    let addrs: Vec<u32> = (1..=hosts as u32).collect();
    let ctrl = net.add_node(Host::new(
        Stack::new(CTRL_ADDR, StackConfig::default()),
        ControllerApp::new(cfg, &addrs),
    ));
    let (cp, sp) = net.connect(ctrl, sw, LinkSpec::ten_gbps());
    net.node_mut::<Switch>(sw).install_route(CTRL_ADDR, sp);
    let ctrl_link = net.port_link(ctrl, cp).0;
    net.set_link_loss_permille(ctrl_link, loss_permille);
    net.schedule_timer(ctrl, Time::ZERO, app_timer_token(TICK));

    Cluster {
        net,
        ctrl,
        ctrl_link,
        nodes,
    }
}

fn run_until_converged(
    cluster: &mut Cluster,
    mut t: Time,
    deadline: Time,
    done: impl Fn(&ControllerApp) -> bool,
) -> Time {
    let ctrl = cluster.ctrl;
    loop {
        t += SLICE;
        assert!(
            t <= deadline,
            "replication bench failed to converge by {deadline:?}"
        );
        cluster.net.run_until(t);
        if done(&cluster.net.node_mut::<Host<ControllerApp>>(ctrl).app) {
            return t;
        }
    }
}

/// Process `count` packets through host `i`'s enclave at virtual `now`.
fn drive(cluster: &mut Cluster, i: usize, count: u64) {
    let node = cluster.nodes[i];
    let now = cluster.net.now();
    let mut rng = netsim::SimRng::new(now.as_nanos() ^ (i as u64) << 32);
    let enclave = cluster
        .net
        .node_mut::<Host<Idle>>(node)
        .stack
        .hook_mut::<EnclaveAgent>()
        .expect("agent installed")
        .enclave_mut();
    for _ in 0..count {
        let mut p = Packet::udp(1, 2, UdpHeader::default(), 200);
        enclave.process(&mut p, &mut rng, now);
    }
}

fn hist_stat<'a>(stats: &'a [LatencyStat], name: &str) -> Option<&'a LatencyStat> {
    stats.iter().find(|l| l.name == name)
}

/// One full scenario at one seed. Returns
/// `(staleness_mean_us, staleness_p99_us, delta_p50, delta_p99, exact)`.
fn run_once(seed: u64, hosts: usize, loss_permille: u32) -> (f64, f64, f64, f64, bool) {
    let mut cluster = build(seed, hosts, loss_permille);
    let deadline = Time::from_millis(400);

    // Bootstrap, then push the replicated counter to the whole fleet.
    let t = run_until_converged(&mut cluster, Time::ZERO, deadline, |app| app.all_in_sync());
    let ctrl = cluster.ctrl;
    cluster
        .net
        .node_mut::<Host<ControllerApp>>(ctrl)
        .app
        .set_desired(counter_ops())
        .expect("valid ops");
    let mut t = run_until_converged(&mut cluster, t, deadline, |app| app.all_in_sync());

    // Load window: every host counts packets while the replication loop
    // syncs under the configured loss.
    for _ in 0..LOAD_SLICES {
        for i in 0..hosts {
            drive(&mut cluster, i, PKTS_PER_SLICE);
        }
        t += Time::from_micros(500);
        cluster.net.run_until(t);
    }

    let (stale_mean, stale_p99, d50, d99) = {
        let app = &cluster.net.node_mut::<Host<ControllerApp>>(ctrl).app;
        let lat = &app.cluster().ctrl_latencies;
        let stale = hist_stat(lat, "repl.staleness").expect("staleness recorded");
        let bytes = hist_stat(lat, "repl.delta_bytes").expect("delta bytes recorded");
        (
            stale.hist.mean().unwrap_or(0.0) / 1_000.0,
            stale.hist.p99().unwrap_or(0) as f64 / 1_000.0,
            bytes.hist.p50().unwrap_or(0) as f64,
            bytes.hist.p99().unwrap_or(0) as f64,
        )
    };

    // Heal and settle: every increment must land exactly once.
    cluster.net.set_link_loss_permille(cluster.ctrl_link, 0);
    let settle = t + Time::from_millis(50);
    cluster.net.run_until(settle);
    let expected = (hosts as u64 * LOAD_SLICES * PKTS_PER_SLICE) as i64;
    let mut exact = cluster
        .net
        .node_mut::<Host<ControllerApp>>(ctrl)
        .app
        .repl()
        .merged_total(0, 0)
        == expected;
    for i in 0..hosts {
        let node = cluster.nodes[i];
        let effective = cluster
            .net
            .node_mut::<Host<Idle>>(node)
            .stack
            .hook_mut::<EnclaveAgent>()
            .expect("agent installed")
            .enclave_mut()
            .global_effective(FuncId(0), 0);
        exact &= effective == expected;
    }
    (stale_mean, stale_p99, d50, d99, exact)
}

/// Run the scenario at one sweep point across `seeds` and aggregate:
/// staleness means average, tail metrics take the worst seed, and the
/// exactness flag must hold in every seed.
pub fn run(hosts: usize, loss_permille: u32, seeds: &[u64]) -> Point {
    assert!(!seeds.is_empty());
    let mut mean_acc = 0.0;
    let mut p99 = 0.0f64;
    let mut d50 = 0.0f64;
    let mut d99 = 0.0f64;
    let mut exact = true;
    for &seed in seeds {
        let (m, p, b50, b99, e) = run_once(seed, hosts, loss_permille);
        mean_acc += m;
        p99 = p99.max(p);
        d50 = d50.max(b50);
        d99 = d99.max(b99);
        exact &= e;
    }
    Point {
        hosts,
        loss_permille,
        seeds: seeds.len(),
        staleness_mean_us: mean_acc / seeds.len() as f64,
        staleness_p99_us: p99,
        delta_bytes_p50: d50,
        delta_bytes_p99: d99,
        exact_after_heal: exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_point_is_fresh_and_exact() {
        let p = run(2, 0, &[7]);
        assert!(p.exact_after_heal, "increments lost without loss");
        // staleness is bounded by the 1ms heartbeat cadence
        assert!(
            p.staleness_p99_us < 2_000.0,
            "staleness p99 {}us",
            p.staleness_p99_us
        );
        assert!(p.delta_bytes_p50 > 0.0, "no delta traffic recorded");
    }

    #[test]
    fn lossy_point_still_lands_every_increment() {
        let p = run(3, 100, &[11]);
        assert!(p.exact_after_heal, "increments lost under 10% ctrl loss");
        assert!(p.staleness_mean_us > 0.0);
    }
}
