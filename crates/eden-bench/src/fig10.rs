//! Figure 10 — case study 2: per-packet ECMP vs WCMP on programmable-NIC
//! enclaves, over the asymmetric topology of Figure 1.
//!
//! Two hosts are connected through two paths, one 10 Gbps and one 1 Gbps.
//! The sender's enclave source-routes every packet by stamping a VLAN
//! label chosen in a weighted random fashion: equal weights (ECMP) or 10:1
//! (WCMP). The paper's result: ECMP throughput is dominated by the slow
//! path (~2 Gbps); per-packet WCMP reaches ~7.8 Gbps — ~3× better, but
//! below the 11 Gbps min-cut because in-network reordering triggers TCP's
//! dup-ACK machinery. Native and Eden must be statistically identical.

use eden_apps::apps::bulk::{BulkSender, MeteredSink};
use eden_apps::functions;
use eden_core::{Controller, Enclave, EnclaveConfig, MatchSpec, PathSpec, TableId};
use netsim::{LinkSpec, Network, PortId, Switch, SwitchConfig, Time};
use transport::{app_timer_token, Host, Stack, StackConfig, TcpConfig};

pub use crate::fig09::Engine;

/// Load-balancing policies compared in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancer {
    Ecmp,
    Wcmp,
}

/// Experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub seed: u64,
    /// Measurement window start (lets TCP ramp first).
    pub warmup: Time,
    /// Measurement window end.
    pub until: Time,
    /// Parallel long-running flows.
    pub flows: usize,
    /// TCP reordering tolerance. Per-packet spraying over asymmetric paths
    /// reorders constantly; production stacks absorb it (RACK-style),
    /// which is what lets the paper's WCMP approach the min-cut instead of
    /// collapsing on spurious fast retransmits. `Time::ZERO` selects
    /// classic Reno (immediate fast retransmit) for ablations.
    pub reorder_window: Time,
    /// Switch buffer per (port, class): the slow path's queue. Deeper
    /// buffers absorb the spray bursts (fewer drops, more delay).
    pub switch_buffer_bytes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 1,
            warmup: Time::from_millis(50),
            until: Time::from_millis(250),
            flows: 4,
            reorder_window: Time::from_micros(100),
            switch_buffer_bytes: 150_000,
        }
    }
}

/// Run one arm; returns aggregate goodput in bits/second over the window.
pub fn run(balancer: Balancer, engine: Engine, cfg: &Config) -> f64 {
    let mut net = Network::new(cfg.seed);
    let mut controller = Controller::new();
    let lb_class = controller.class("bulk.flows.LB");

    // --- topology: sender — sw0 ={10G, 1G}= sw1 — receiver ----------------
    let stack_cfg = StackConfig {
        tcp: TcpConfig {
            reorder_window: if cfg.reorder_window == Time::ZERO {
                None // classic Reno, for the ablation
            } else {
                Some(cfg.reorder_window)
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let sender_app = BulkSender::new(2, 7000, cfg.flows, 2_000_000_000, vec![lb_class.0]);
    let sender = net.add_node(Host::new(Stack::new(1, stack_cfg), sender_app));
    let receiver = net.add_node(Host::new(Stack::new(2, stack_cfg), MeteredSink::new(7000)));
    let sw_cfg = SwitchConfig {
        per_queue_bytes: cfg.switch_buffer_bytes,
    };
    let sw0 = net.add_node(Switch::new(sw_cfg));
    let sw1 = net.add_node(Switch::new(sw_cfg));

    let (_, sw0_host_port) = net.connect(sender, sw0, LinkSpec::ten_gbps());
    let (sw0_fast, sw1_fast) = net.connect(sw0, sw1, LinkSpec::ten_gbps());
    let (sw0_slow, sw1_slow) = net.connect(sw0, sw1, LinkSpec::one_gbps());
    let (_, sw1_host_port) = net.connect(
        receiver,
        sw1,
        LinkSpec {
            rate_bps: 40_000_000_000,
            propagation: Time::from_micros(1),
            mtu: 1500,
        },
    );

    // labels: 1 = fast path, 2 = slow path (paper §3.5's label routing)
    {
        let s0 = net.node_mut::<Switch>(sw0);
        s0.install_label(1, sw0_fast);
        s0.install_label(2, sw0_slow);
        s0.install_route(2, sw0_fast); // unlabeled (SYNs) take the fast path
        s0.install_route(1, sw0_host_port); // returning ACKs to the sender
    }
    {
        let s1 = net.node_mut::<Switch>(sw1);
        s1.install_route(2, sw1_host_port);
        s1.install_route(1, sw1_fast); // ACKs go back over the fast path
        let _ = sw1_slow;
    }

    // --- sender enclave: (W)CMP over the LB class -------------------------
    let paths = [
        PathSpec {
            label: 1,
            bottleneck_bps: 10_000_000_000,
        },
        PathSpec {
            label: 2,
            bottleneck_bps: 1_000_000_000,
        },
    ];
    let weights = match balancer {
        Balancer::Wcmp => Controller::wcmp_weights(&paths, 100),
        Balancer::Ecmp => Controller::ecmp_weights(&paths),
    };
    let bundle = functions::wcmp();
    let mut enclave = Enclave::new(EnclaveConfig::default());
    let f = enclave.install_function(match engine {
        Engine::Eden => bundle.interpreted(),
        Engine::Native => bundle.native(),
    });
    enclave.install_rule(TableId(0), MatchSpec::Class(lb_class), f);
    let flat: Vec<i64> = weights
        .iter()
        .flat_map(|&(label, w)| [i64::from(label), i64::from(w)])
        .collect();
    let total: i64 = weights.iter().map(|&(_, w)| i64::from(w)).sum();
    enclave.set_array(f, 0, flat);
    enclave.set_global(f, 0, total);
    net.node_mut::<Host<BulkSender>>(sender)
        .stack
        .set_hook(enclave);

    // --- run & meter --------------------------------------------------------
    net.schedule_timer(receiver, Time::ZERO, app_timer_token(0));
    net.schedule_timer(sender, Time::from_micros(10), app_timer_token(0));
    net.run_until(cfg.warmup);
    let b0 = net.node::<Host<MeteredSink>>(receiver).app.bytes;
    net.run_until(cfg.until);
    let b1 = net.node::<Host<MeteredSink>>(receiver).app.bytes;
    if std::env::var("EDEN_FIG10_DEBUG").is_ok() {
        let host = net.node::<Host<BulkSender>>(sender);
        for i in 0..host.stack.conn_count() {
            let st = host.stack.conn_stats(transport::ConnId(i));
            eprintln!(
                "conn {i}: sent {} rexmit {} fast {} rto {} reorder-ok {} cwnd {} inflight {} srtt {}us",
                st.packets_sent,
                st.retransmits,
                st.fast_retransmits,
                st.timeouts,
                st.reorder_events,
                host.stack.conn_cwnd(transport::ConnId(i)),
                host.stack.conn_in_flight(transport::ConnId(i)),
                host.stack.conn_srtt_ns(transport::ConnId(i)) / 1000
            );
        }
    }
    (b1 - b0) as f64 * 8.0 / (cfg.until - cfg.warmup).as_secs_f64()
}

/// `PortId` re-export guard (kept so topology code reads naturally).
#[allow(dead_code)]
fn _unused(_: PortId) {}
