//! Control-plane scale benchmark: root load and convergence of a **flat**
//! controller (every host managed directly) against the **hierarchical**
//! tier ([`eden_ctrl::AggregatorApp`]) at fleet sizes the flat design was
//! never meant for, plus the wire savings of digest-anchored delta
//! updates over full-table ships.
//!
//! Three experiments:
//!
//! * **flat vs hier push** — per `(mode, hosts)` point: virtual time from
//!   `set_desired` to `all_in_sync`, and the root's control-wire load
//!   (messages and KiB in both directions) over that window. Flat root
//!   load grows linearly with hosts; the hierarchy (√n racks of √n hosts)
//!   keeps root messages O(√n) — the headline `hier_root_msg_reduction`
//!   and `hier_sublinear` gate metrics come from the 1024-host points.
//! * **delta vs full ship** — a one-rule change to a 64-rule table,
//!   reconverged with `delta_updates` on and off; the ratio of epoch
//!   config bytes is `delta_reduction_rate` (gated ≥10×).
//! * **virtual sweep** (nightly) — [`run_virtual`] models six-figure
//!   fleets: real root and aggregator nodes over the simulated fabric,
//!   each aggregator fronting thousands of in-process template children,
//!   wire cost tallied arithmetically (see
//!   [`AggregatorApp::with_virtual_children`]).
//!
//! Every metric here is virtual-time/deterministic — identical across
//! machines at a given seed — so the bench gate thresholds are tight.

use eden_core::{ClassId, Controller, Enclave, EnclaveConfig, EnclaveOp, MatchSpec};
use eden_ctrl::{AggConfig, AggregatorApp, ControllerApp, CtrlConfig, EnclaveAgent, TICK};
use eden_lang::{Access, HeaderField, Schema};
use eden_telemetry::{Json, ToJson};
use netsim::{LinkSpec, Network, NodeId, Switch, SwitchConfig, Time, TwoTier};
use transport::{app_timer_token, App, Host, Stack, StackConfig};

struct Idle;
impl App for Idle {}

/// One `(mode, hosts)` sweep point, aggregated over seeds.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// `"flat"` or `"hier"`.
    pub mode: &'static str,
    pub hosts: usize,
    pub seeds: usize,
    /// Mean virtual µs from `set_desired` to `all_in_sync`.
    pub push_mean_us: f64,
    /// Mean control messages through the root (sent + received) during
    /// the push window.
    pub root_msgs_mean: f64,
    /// Mean KiB through the root during the push window.
    pub root_kb_mean: f64,
}

impl ToJson for ScalePoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", Json::Str(self.mode.into())),
            ("hosts", Json::UInt(self.hosts as u64)),
            // no `seeds` field: every gated metric is virtual-time
            // deterministic, and seed count differs between the PR smoke
            // run and the nightly full sweep — an identity mismatch would
            // orphan the baseline's array elements in bench_gate
            ("push_mean_us", Json::Float(self.push_mean_us)),
            ("root_msgs_mean", Json::Float(self.root_msgs_mean)),
            ("root_kb_mean", Json::Float(self.root_kb_mean)),
        ])
    }
}

/// Result of the delta-vs-full-ship experiment.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    pub hosts: usize,
    pub rules: usize,
    pub seeds: usize,
    /// Mean epoch-config KiB the root sent reconverging after a one-rule
    /// change with deltas off (Reset-led full table every time).
    pub full_kb_mean: f64,
    /// Same change with digest-anchored deltas on.
    pub delta_kb_mean: f64,
}

impl DeltaPoint {
    /// Full-ship bytes over delta bytes — the ≥10× headline.
    pub fn reduction(&self) -> f64 {
        self.full_kb_mean / self.delta_kb_mean.max(1e-9)
    }
}

impl ToJson for DeltaPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hosts", Json::UInt(self.hosts as u64)),
            ("rules", Json::UInt(self.rules as u64)),
            ("full_config_kb_mean", Json::Float(self.full_kb_mean)),
            ("delta_config_kb_mean", Json::Float(self.delta_kb_mean)),
            ("delta_reduction_rate", Json::Float(self.reduction())),
        ])
    }
}

const ROOT_ADDR: u32 = 1_000_000;
const AGG_BASE: u32 = 500_000;
const SLICE: Time = Time::from_micros(50);

/// Host sizing for thousand-node fleets: one lane, small mailboxes. The
/// control plane never touches the data path here, so only the footprint
/// matters.
fn lean_enclave() -> EnclaveConfig {
    EnclaveConfig {
        lanes: 1,
        max_punted: 16,
        max_messages_per_function: 64,
        flight_capacity: 16,
        ..EnclaveConfig::default()
    }
}

/// Rack count for `hosts`: √n racks of √n hosts (the root-load sweet
/// spot for a two-level tree).
pub fn rack_count(hosts: usize) -> usize {
    ((hosts as f64).sqrt().round() as usize).max(1)
}

/// Desired state: one priority-stamping function and `rules` match rules.
/// `salt` varies the final rule so successive epochs differ by exactly
/// one rule — the delta experiment's one-line change.
fn desired_ops(core: &Controller, rules: usize, salt: u16) -> Vec<EnclaveOp> {
    let schema =
        Schema::new().packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp));
    let func = core
        .plan_function(
            "set_prio",
            "fun (packet, msg, _global) -> packet.Priority <- 5",
            &schema,
        )
        .expect("compiles");
    let mut ops = vec![EnclaveOp::Reset, func];
    for i in 0..rules {
        let class = if i == rules - 1 {
            1000 + u32::from(salt)
        } else {
            i as u32
        };
        ops.push(EnclaveOp::InstallRule {
            table: 0,
            spec: MatchSpec::Class(ClassId(class)),
            func: 0,
        });
    }
    ops
}

struct Cluster {
    net: Network,
    root: NodeId,
}

fn agent_stack(addr: u32, cfg: &CtrlConfig) -> Stack {
    let mut stack = Stack::new(addr, StackConfig::default());
    stack.set_hook(EnclaveAgent::new(Enclave::new(lean_enclave())));
    stack.set_ctrl_port(cfg.ctrl_port);
    stack
}

/// Flat: every host hangs off one switch, root manages all of them.
fn build_flat(seed: u64, hosts: usize, cfg: CtrlConfig) -> Cluster {
    let mut net = Network::new(seed);
    let sw = net.add_node(Switch::new(SwitchConfig::default()));
    for i in 0..hosts {
        let addr = (i + 1) as u32;
        let node = net.add_node(Host::new(agent_stack(addr, &cfg), Idle));
        let (_, sp) = net.connect(node, sw, LinkSpec::ten_gbps());
        net.node_mut::<Switch>(sw).install_route(addr, sp);
    }
    let addrs: Vec<u32> = (1..=hosts as u32).collect();
    let root = net.add_node(Host::new(
        Stack::new(ROOT_ADDR, StackConfig::default()),
        ControllerApp::new(cfg, &addrs),
    ));
    let (_, sp) = net.connect(root, sw, LinkSpec::ten_gbps());
    net.node_mut::<Switch>(sw).install_route(ROOT_ADDR, sp);
    net.schedule_timer(root, Time::ZERO, app_timer_token(TICK));
    Cluster { net, root }
}

/// Hierarchical: √n racks behind a core switch, one aggregator per rack
/// fronting that rack's hosts, root at the core managing only the
/// aggregators.
fn build_hier(seed: u64, hosts: usize, cfg: CtrlConfig) -> Cluster {
    let racks = rack_count(hosts);
    let mut net = Network::new(seed);
    let topo = TwoTier::build(&mut net, racks, LinkSpec::forty_gbps());

    let mut ctrl = ControllerApp::new(cfg.clone(), &[]);
    let mut next = 1u32;
    for rack in 0..racks {
        // spread the remainder over the first racks
        let share = hosts / racks + usize::from(rack < hosts % racks);
        let children: Vec<u32> = (0..share)
            .map(|_| {
                let addr = next;
                next += 1;
                let node = net.add_node(Host::new(agent_stack(addr, &cfg), Idle));
                topo.attach(&mut net, rack, node, addr, LinkSpec::ten_gbps());
                addr
            })
            .collect();
        let agg_addr = AGG_BASE + rack as u32;
        let agg = net.add_node(Host::new(
            Stack::new(agg_addr, StackConfig::default()),
            AggregatorApp::new(AggConfig { ctrl: cfg.clone() }, &children),
        ));
        topo.attach(&mut net, rack, agg, agg_addr, LinkSpec::ten_gbps());
        net.schedule_timer(agg, Time::ZERO, app_timer_token(TICK));
        ctrl.manage_aggregator(agg_addr, children);
    }

    let root = net.add_node(Host::new(
        Stack::new(ROOT_ADDR, StackConfig::default()),
        ctrl,
    ));
    topo.attach_core(&mut net, root, ROOT_ADDR, LinkSpec::forty_gbps());
    net.schedule_timer(root, Time::ZERO, app_timer_token(TICK));
    Cluster { net, root }
}

/// Virtual hierarchy for six-figure sweeps: real root + aggregator nodes,
/// template children (no per-host simulation state).
fn build_virtual(seed: u64, hosts: usize, cfg: CtrlConfig) -> Cluster {
    let racks = rack_count(hosts);
    let mut net = Network::new(seed);
    let topo = TwoTier::build(&mut net, racks, LinkSpec::forty_gbps());

    let mut ctrl = ControllerApp::new(cfg.clone(), &[]);
    let mut next = 1u32;
    for rack in 0..racks {
        let share = hosts / racks + usize::from(rack < hosts % racks);
        let children: Vec<u32> = (0..share)
            .map(|_| {
                let addr = next;
                next += 1;
                addr
            })
            .collect();
        let agg_addr = AGG_BASE + rack as u32;
        let agg = net.add_node(Host::new(
            Stack::new(agg_addr, StackConfig::default()),
            AggregatorApp::with_virtual_children(
                AggConfig { ctrl: cfg.clone() },
                share,
                lean_enclave(),
            ),
        ));
        topo.attach(&mut net, rack, agg, agg_addr, LinkSpec::ten_gbps());
        net.schedule_timer(agg, Time::ZERO, app_timer_token(TICK));
        ctrl.manage_aggregator(agg_addr, children);
    }

    let root = net.add_node(Host::new(
        Stack::new(ROOT_ADDR, StackConfig::default()),
        ctrl,
    ));
    topo.attach_core(&mut net, root, ROOT_ADDR, LinkSpec::forty_gbps());
    net.schedule_timer(root, Time::ZERO, app_timer_token(TICK));
    Cluster { net, root }
}

fn app(cluster: &mut Cluster) -> &mut ControllerApp {
    let root = cluster.root;
    &mut cluster.net.node_mut::<Host<ControllerApp>>(root).app
}

fn run_until_converged(cluster: &mut Cluster, mut t: Time, deadline: Time) -> Time {
    loop {
        t += SLICE;
        assert!(
            t <= deadline,
            "control plane failed to converge by {deadline:?} \
             ({}/{} hosts in sync)",
            app(cluster).in_sync_hosts(),
            app(cluster).fleet_size(),
        );
        cluster.net.run_until(t);
        if app(cluster).all_in_sync() {
            return t;
        }
    }
}

/// One push at one seed: bootstrap, push a fresh epoch, return
/// `(push_us, root_msgs, root_bytes)` over the push window.
fn run_push(mut cluster: Cluster, rules: usize) -> (f64, u64, u64) {
    let deadline = Time::from_millis(2_000);
    let t = run_until_converged(&mut cluster, Time::ZERO, deadline);

    let ops = {
        let a = app(&mut cluster);
        desired_ops(&a.core, rules, 0)
    };
    let before = app(&mut cluster).wire();
    app(&mut cluster).set_desired(ops).expect("valid ops");
    let push_start = t;
    let t = run_until_converged(&mut cluster, t, deadline);
    let after = app(&mut cluster).wire();

    let msgs = (after.msgs_sent - before.msgs_sent) + (after.msgs_received - before.msgs_received);
    let bytes =
        (after.bytes_sent - before.bytes_sent) + (after.bytes_received - before.bytes_received);
    let push_us = (t - push_start).as_nanos() as f64 / 1_000.0;
    (push_us, msgs, bytes)
}

fn aggregate(mode: &'static str, hosts: usize, samples: &[(f64, u64, u64)]) -> ScalePoint {
    let n = samples.len() as f64;
    ScalePoint {
        mode,
        hosts,
        seeds: samples.len(),
        push_mean_us: samples.iter().map(|s| s.0).sum::<f64>() / n,
        root_msgs_mean: samples.iter().map(|s| s.1 as f64).sum::<f64>() / n,
        root_kb_mean: samples.iter().map(|s| s.2 as f64).sum::<f64>() / n / 1024.0,
    }
}

/// Flat sweep point: root manages every host directly.
pub fn run_flat(hosts: usize, rules: usize, seeds: &[u64]) -> ScalePoint {
    let samples: Vec<_> = seeds
        .iter()
        .map(|&s| run_push(build_flat(s, hosts, CtrlConfig::default()), rules))
        .collect();
    aggregate("flat", hosts, &samples)
}

/// Hierarchical sweep point: root manages √n aggregators.
pub fn run_hier(hosts: usize, rules: usize, seeds: &[u64]) -> ScalePoint {
    let samples: Vec<_> = seeds
        .iter()
        .map(|&s| run_push(build_hier(s, hosts, CtrlConfig::default()), rules))
        .collect();
    aggregate("hier", hosts, &samples)
}

/// Virtual hierarchical sweep point for six-figure fleets (nightly).
pub fn run_virtual(hosts: usize, rules: usize, seeds: &[u64]) -> ScalePoint {
    let samples: Vec<_> = seeds
        .iter()
        .map(|&s| run_push(build_virtual(s, hosts, CtrlConfig::default()), rules))
        .collect();
    aggregate("virtual", hosts, &samples)
}

/// Delta-vs-full experiment: converge a `rules`-sized table, change one
/// rule, and measure the root's epoch-config bytes reconverging — once
/// with `delta_updates` off, once on.
pub fn run_delta(hosts: usize, rules: usize, seeds: &[u64]) -> DeltaPoint {
    let mut full = Vec::new();
    let mut delta = Vec::new();
    for &seed in seeds {
        for enable in [false, true] {
            // Round tracing rides a 19-byte trailer on every config
            // frame; it is orthogonal to the delta-vs-full question and
            // would dilute the ratio, so both arms run untraced.
            let cfg = CtrlConfig {
                delta_updates: enable,
                trace_rounds: false,
                ..CtrlConfig::default()
            };
            let mut cluster = build_flat(seed, hosts, cfg);
            let deadline = Time::from_millis(2_000);
            let t = run_until_converged(&mut cluster, Time::ZERO, deadline);

            // epoch 1: the big table, fully shipped either way
            let ops = {
                let a = app(&mut cluster);
                desired_ops(&a.core, rules, 0)
            };
            app(&mut cluster).set_desired(ops).expect("valid ops");
            let t = run_until_converged(&mut cluster, t, deadline);

            // epoch 2: one rule changes
            let ops = {
                let a = app(&mut cluster);
                desired_ops(&a.core, rules, 1)
            };
            let before = app(&mut cluster).wire().config_bytes_sent;
            app(&mut cluster).set_desired(ops).expect("valid ops");
            run_until_converged(&mut cluster, t, deadline);
            let bytes = app(&mut cluster).wire().config_bytes_sent - before;
            if enable {
                delta.push(bytes as f64);
            } else {
                full.push(bytes as f64);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    DeltaPoint {
        hosts,
        rules,
        seeds: seeds.len(),
        full_kb_mean: mean(&full) / 1024.0,
        delta_kb_mean: mean(&delta) / 1024.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hier_beats_flat_on_root_messages() {
        let flat = run_flat(16, 4, &[3]);
        let hier = run_hier(16, 4, &[3]);
        assert!(
            hier.root_msgs_mean < flat.root_msgs_mean,
            "hier {} vs flat {}",
            hier.root_msgs_mean,
            flat.root_msgs_mean
        );
    }

    #[test]
    fn delta_ships_far_fewer_config_bytes() {
        let p = run_delta(4, 64, &[5]);
        assert!(
            p.reduction() >= 10.0,
            "full {:.2} KiB vs delta {:.2} KiB ({}x)",
            p.full_kb_mean,
            p.delta_kb_mean,
            p.reduction()
        );
    }

    #[test]
    fn virtual_mode_converges() {
        let p = run_virtual(64, 4, &[7]);
        assert_eq!(p.hosts, 64);
        assert!(p.push_mean_us > 0.0);
    }
}
