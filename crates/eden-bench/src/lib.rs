//! # eden-bench — experiment harnesses for every figure and table
//!
//! Each module reproduces one piece of the paper's evaluation (§5) on the
//! simulated testbed and returns structured results; the `benches/`
//! targets run them and print rows next to the paper's numbers, and the
//! workspace integration tests assert the qualitative shape (who wins, by
//! roughly what factor).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig09`] | Figure 9 — FCTs under baseline/PIAS/SFF × native/Eden |
//! | [`fig10`] | Figure 10 — ECMP vs WCMP throughput × native/Eden |
//! | [`fig11`] | Figure 11 — Pulsar READ/WRITE isolation |
//! | [`fig12`] | Figure 12 — CPU overhead of Eden components + §5.4 footprint |
//! | [`report`] | table-rendering helpers shared by the bench targets |
//! | [`ctrl`] | control-plane convergence under loss and partitions |
//! | [`repl`] | replica staleness and delta wire cost vs hosts × loss |

pub mod batch;
pub mod ctrl;
pub mod ctrl_scale;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod repl;
pub mod report;
