//! Control-plane convergence benchmark: how long does it take the
//! [`eden_ctrl`] runtime to drive a whole fleet to a new desired state?
//!
//! Two scenarios per `(host count, control loss)` point, averaged over
//! seeds:
//!
//! * **push** — all hosts reachable; the controller pushes a fresh epoch
//!   and we measure virtual time from `set_desired` until every host
//!   reports the desired `(epoch, digest)` (`all_in_sync`). This is the
//!   cost of a two-phase prepare/commit round plus retries under loss.
//! * **rejoin** — one host is partitioned, misses an epoch, gets marked
//!   Down, and the link heals. We measure from the heal until the fleet
//!   is back in sync: failure detection, heartbeat-driven rediscovery,
//!   and desired-state resync.
//!
//! Loss is applied to the controller's own access link, so it impairs
//! exactly the control channel (both directions) without touching the
//! data plane.

use eden_core::{Controller, Enclave, EnclaveConfig, EnclaveOp, MatchSpec};
use eden_ctrl::{ControllerApp, CtrlConfig, EnclaveAgent, TICK};
use eden_lang::{Access, HeaderField, Schema};
use eden_telemetry::{Json, ToJson};
use netsim::{LinkId, LinkSpec, Network, NodeId, Switch, SwitchConfig, Time};
use transport::{app_timer_token, App, Host, Stack, StackConfig};

struct Idle;
impl App for Idle {}

/// One measured `(hosts, loss)` sweep point, aggregated over seeds.
#[derive(Debug, Clone)]
pub struct Point {
    pub hosts: usize,
    pub loss_permille: u32,
    pub seeds: usize,
    /// Mean virtual µs from `set_desired` to `all_in_sync`.
    pub push_mean_us: f64,
    /// Worst observed push convergence across the seeds, in µs.
    pub push_max_us: f64,
    /// Mean virtual µs from partition heal to `all_in_sync`.
    pub rejoin_mean_us: f64,
    /// Worst observed rejoin convergence across the seeds, in µs.
    pub rejoin_max_us: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hosts", Json::UInt(self.hosts as u64)),
            ("loss_permille", Json::UInt(u64::from(self.loss_permille))),
            ("seeds", Json::UInt(self.seeds as u64)),
            ("push_mean_us", Json::Float(self.push_mean_us)),
            ("push_max_us", Json::Float(self.push_max_us)),
            ("rejoin_mean_us", Json::Float(self.rejoin_mean_us)),
            ("rejoin_max_us", Json::Float(self.rejoin_max_us)),
        ])
    }
}

const CTRL_ADDR: u32 = 1000;
/// Measurement granularity: convergence times are resolved to one slice.
const SLICE: Time = Time::from_micros(50);

struct Cluster {
    net: Network,
    ctrl: NodeId,
    host_links: Vec<LinkId>,
}

fn desired_ops(prio: u8) -> Vec<EnclaveOp> {
    let controller = Controller::new();
    let schema =
        Schema::new().packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp));
    let source = format!("fun (packet, msg, _global) -> packet.Priority <- {prio}");
    let func = controller
        .plan_function("set_prio", &source, &schema)
        .expect("compiles");
    vec![
        EnclaveOp::Reset,
        func,
        EnclaveOp::InstallRule {
            table: 0,
            spec: MatchSpec::Any,
            func: 0,
        },
    ]
}

fn build(seed: u64, hosts: usize, loss_permille: u32) -> Cluster {
    let cfg = CtrlConfig::default();
    let mut net = Network::new(seed);
    let sw = net.add_node(Switch::new(SwitchConfig::default()));

    let mut host_links = Vec::new();
    for i in 0..hosts {
        let addr = (i + 1) as u32;
        let mut stack = Stack::new(addr, StackConfig::default());
        stack.set_hook(EnclaveAgent::new(Enclave::new(EnclaveConfig::default())));
        stack.set_ctrl_port(cfg.ctrl_port);
        let node = net.add_node(Host::new(stack, Idle));
        let (hp, sp) = net.connect(node, sw, LinkSpec::ten_gbps());
        net.node_mut::<Switch>(sw).install_route(addr, sp);
        host_links.push(net.port_link(node, hp).0);
    }

    let addrs: Vec<u32> = (1..=hosts as u32).collect();
    let ctrl = net.add_node(Host::new(
        Stack::new(CTRL_ADDR, StackConfig::default()),
        ControllerApp::new(cfg, &addrs),
    ));
    let (cp, sp) = net.connect(ctrl, sw, LinkSpec::ten_gbps());
    net.node_mut::<Switch>(sw).install_route(CTRL_ADDR, sp);
    let ctrl_link = net.port_link(ctrl, cp).0;
    net.set_link_loss_permille(ctrl_link, loss_permille);
    net.schedule_timer(ctrl, Time::ZERO, app_timer_token(TICK));

    Cluster {
        net,
        ctrl,
        host_links,
    }
}

/// Step the network in [`SLICE`] increments until `done` holds on the
/// controller, returning the first slice boundary where it did.
fn run_until_converged(
    cluster: &mut Cluster,
    mut t: Time,
    deadline: Time,
    done: impl Fn(&ControllerApp) -> bool,
) -> Time {
    let ctrl = cluster.ctrl;
    loop {
        t += SLICE;
        assert!(
            t <= deadline,
            "control plane failed to converge by {deadline:?}"
        );
        cluster.net.run_until(t);
        if done(&cluster.net.node_mut::<Host<ControllerApp>>(ctrl).app) {
            return t;
        }
    }
}

fn set_desired(cluster: &mut Cluster, prio: u8) {
    let ctrl = cluster.ctrl;
    cluster
        .net
        .node_mut::<Host<ControllerApp>>(ctrl)
        .app
        .set_desired(desired_ops(prio))
        .expect("valid desired ops");
}

/// One full scenario at one seed. Returns `(push_us, rejoin_us)`.
fn run_once(seed: u64, hosts: usize, loss_permille: u32) -> (f64, f64) {
    let mut cluster = build(seed, hosts, loss_permille);
    let deadline = Time::from_millis(400);

    // Bootstrap: heartbeats find every host and establish epoch 0.
    let t = run_until_converged(&mut cluster, Time::ZERO, deadline, |app| app.all_in_sync());

    // Scenario 1: push a fresh epoch to a fully reachable fleet.
    set_desired(&mut cluster, 5);
    let push_start = t;
    let t = run_until_converged(&mut cluster, t, deadline, |app| app.all_in_sync());
    let push_us = (t - push_start).as_nanos() as f64 / 1_000.0;

    // Scenario 2: partition one host, push an epoch past it, wait until
    // the controller has written off the victim and finished with the
    // rest, then heal and measure the resync.
    cluster.net.set_link_down(cluster.host_links[0], true);
    set_desired(&mut cluster, 7);
    let t = run_until_converged(&mut cluster, t, deadline, |app| {
        app.in_sync_count() == hosts - 1 && !app.round_active()
    });
    cluster.net.set_link_down(cluster.host_links[0], false);
    let heal = t;
    let t = run_until_converged(&mut cluster, t, deadline, |app| app.all_in_sync());
    let rejoin_us = (t - heal).as_nanos() as f64 / 1_000.0;

    (push_us, rejoin_us)
}

/// Run the scenario at one sweep point across `seeds` and aggregate.
pub fn run(hosts: usize, loss_permille: u32, seeds: &[u64]) -> Point {
    assert!(!seeds.is_empty());
    let mut push = Vec::new();
    let mut rejoin = Vec::new();
    for &seed in seeds {
        let (p, r) = run_once(seed, hosts, loss_permille);
        push.push(p);
        rejoin.push(r);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    Point {
        hosts,
        loss_permille,
        seeds: seeds.len(),
        push_mean_us: mean(&push),
        push_max_us: max(&push),
        rejoin_mean_us: mean(&rejoin),
        rejoin_max_us: max(&rejoin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_point_converges_quickly() {
        let p = run(3, 0, &[7]);
        assert_eq!(p.hosts, 3);
        // A lossless push is one prepare/commit round-trip plus tick
        // latency — well under 2ms of virtual time.
        assert!(p.push_mean_us < 2_000.0, "push took {}us", p.push_mean_us);
        assert!(p.rejoin_mean_us > 0.0);
    }

    #[test]
    fn lossy_point_still_converges() {
        let p = run(2, 200, &[11]);
        assert!(p.push_mean_us > 0.0);
        assert!(p.rejoin_mean_us > 0.0);
    }
}
