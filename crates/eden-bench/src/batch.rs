//! Micro: batch-size and parallel-speedup curves of the enclave's batched
//! data path (`Enclave::process_batch`).
//!
//! For each catalogue function this measures real wall-clock ns/packet as
//! a function of (a) batch size and (b) worker-lane count:
//!
//! * **lanes = 1** — the serial fallback, the per-packet baseline;
//! * **lanes = 4** — the staged classify/match/execute pipeline fanning
//!   message lanes out to scoped worker threads. The per-batch fan-out
//!   cost (thread handoff, shard split, merge) is fixed, so per-packet
//!   cost falls as the batch grows — the curve the paper's batching
//!   argument predicts.
//!
//! `Serialized` functions (global writers) are measured too: they always
//! take the serial fallback regardless of lanes, so their curve is flat —
//! which is the point, §3.4.4's concurrency levels decide what may fan
//! out. On a single-core host the lanes=4 curve still amortizes the
//! fan-out overhead but cannot show wall-clock speedup from concurrency;
//! the batch-size trend is the machine-independent signal.

use std::time::Instant;

use eden_apps::functions::{self, FunctionBundle};
use eden_core::{ClassId, Enclave, EnclaveConfig, MatchSpec, TableId};
use eden_lang::Concurrency;
use eden_telemetry::{Json, ToJson};
use netsim::{EdenMeta, Packet, SimRng, TcpHeader, Time};

/// One measured (function, lanes, batch size) point.
#[derive(Debug, Clone)]
pub struct Point {
    pub function: &'static str,
    pub concurrency: &'static str,
    pub lanes: usize,
    pub batch_size: usize,
    pub ns_per_packet: f64,
    /// Whether this configuration actually ran on worker lanes (false for
    /// the serial fallback: lanes = 1, batch below the minimum, or a
    /// `Serialized` function).
    pub parallel: bool,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("function", self.function.into()),
            ("concurrency", self.concurrency.into()),
            ("lanes", self.lanes.into()),
            ("batch_size", self.batch_size.into()),
            ("ns_per_packet", self.ns_per_packet.into()),
            ("parallel", self.parallel.into()),
        ])
    }
}

fn concurrency_name(c: Concurrency) -> &'static str {
    match c {
        Concurrency::Parallel => "parallel",
        Concurrency::PerMessage => "per-message",
        Concurrency::Serialized => "serialized",
    }
}

fn make_packet(i: u64) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 40000 + (i % 16) as u16,
            dst_port: 7000,
            seq: (i * 1460) as u32,
            ..Default::default()
        },
        1460,
    );
    p.meta = Some(EdenMeta {
        classes: vec![1],
        // 64 live messages spread work across every lane
        msg_id: 1 + i % 64,
        msg_size: 100_000,
        ..Default::default()
    });
    p
}

/// Interpreted enclave running `bundle` behind class 1, with generic state
/// (same initialization as the catalogue microbench).
fn build(bundle: &FunctionBundle, lanes: usize) -> Enclave {
    let mut e = Enclave::new(EnclaveConfig {
        lanes,
        parallel_batch_min: 2,
        // the smallest parallel point is batch 8 on 4 lanes = 2 per lane;
        // keep the per-lane headroom gate below that so the series stays
        // on the worker-lane path
        parallel_per_lane_min: 2,
        ..EnclaveConfig::default()
    });
    let f = e.install_function(bundle.interpreted());
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    let schema = bundle.schema();
    for (i, _) in schema.arrays().iter().enumerate() {
        e.set_array(f, i, vec![1_000_000, 1, i64::MAX, 0]);
    }
    for slot in 0..schema.scope_len(eden_lang::Scope::Global) {
        e.set_global(f, slot, 1);
    }
    e
}

fn measure(bundle: &FunctionBundle, lanes: usize, batch_size: usize, rounds: usize) -> Point {
    let mut e = build(bundle, lanes);
    let mut rng = SimRng::new(1);
    let mut n = 0u64;
    // One batch buffer and one verdict buffer for the whole series, the
    // way the stack's arena drives the enclave: the timed region sees
    // warm reused allocations, not per-round Vec churn.
    let mut batch: Vec<Packet> = (0..64).map(make_packet).collect();
    let mut verdicts = Vec::with_capacity(batch_size.max(64));
    // warmup: touch every message block once
    e.process_batch_into(&mut batch, &mut rng, Time::from_nanos(1), &mut verdicts);
    let mut elapsed = 0u128;
    for r in 0..rounds {
        batch.clear();
        batch.extend((0..batch_size).map(|k| make_packet(n + k as u64)));
        verdicts.clear();
        let start = Instant::now();
        e.process_batch_into(
            &mut batch,
            &mut rng,
            Time::from_nanos(2 + r as u64),
            &mut verdicts,
        );
        elapsed += start.elapsed().as_nanos();
        n += batch_size as u64;
        std::hint::black_box((&mut batch, &mut verdicts));
    }
    // the per-lane headroom gate (2/lane here) keeps every configured
    // parallel point on the worker lanes; trust the enclave's own count
    let (_, parallel_batches) = e.batch_path_counts();
    Point {
        function: bundle.name,
        concurrency: concurrency_name(bundle.concurrency),
        lanes,
        batch_size,
        ns_per_packet: elapsed as f64 / n as f64,
        parallel: lanes > 1
            && batch_size >= 2
            && bundle.concurrency != Concurrency::Serialized
            && parallel_batches > 0,
    }
}

/// Measure the batch curves. `smoke` shrinks sizes and rounds so CI can
/// afford a run; the full version is for real measurement sessions.
pub fn run(smoke: bool) -> Vec<Point> {
    let (parallel_sizes, serial_sizes, rounds): (&[usize], &[usize], usize) = if smoke {
        (&[8, 64, 256], &[1, 64], 8)
    } else {
        (&[8, 64, 512, 4096], &[1, 64, 4096], 60)
    };
    let bundles = [
        functions::sff(),            // Parallel (read-only)
        functions::fixed_priority(), // Parallel
        functions::qjump(),          // Parallel
        functions::pias(),           // PerMessage
        functions::message_wcmp(),   // PerMessage
        functions::flow_counter(),   // Serialized: always the serial path
        functions::l4lb(),           // Serialized + rendezvous-hash helper
    ];
    let mut points = Vec::new();
    for bundle in &bundles {
        for &bs in serial_sizes {
            points.push(measure(bundle, 1, bs, rounds));
        }
        for &bs in parallel_sizes {
            points.push(measure(bundle, 4, bs, rounds));
        }
    }
    points
}

/// The machine-independent signal: within one function's lanes>1 series,
/// per-packet cost at the largest batch is below the smallest batch
/// (fan-out overhead amortized). Returns the (smallest, largest) pair per
/// parallel function for reporting.
pub fn amortization_check(points: &[Point]) -> Vec<(&'static str, f64, f64)> {
    let mut out = Vec::new();
    let mut names: Vec<&'static str> = points.iter().map(|p| p.function).collect();
    names.dedup();
    for name in names {
        let series: Vec<&Point> = points
            .iter()
            .filter(|p| p.function == name && p.parallel)
            .collect();
        if series.len() < 2 {
            continue;
        }
        let first = series
            .iter()
            .min_by_key(|p| p.batch_size)
            .expect("nonempty");
        let last = series
            .iter()
            .max_by_key(|p| p.batch_size)
            .expect("nonempty");
        out.push((name, first.ns_per_packet, last.ns_per_packet));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_curves() {
        let points = run(true);
        assert!(!points.is_empty());
        // every function contributes a serial and a lanes=4 series
        assert!(points.iter().any(|p| p.function == "sff" && p.parallel));
        assert!(points.iter().any(|p| p.function == "sff" && !p.parallel));
        // Serialized functions never report a parallel point
        assert!(points
            .iter()
            .filter(|p| p.function == "flow-counter")
            .all(|p| !p.parallel));
        assert!(points.iter().all(|p| p.ns_per_packet > 0.0));
        let checks = amortization_check(&points);
        assert!(checks.iter().any(|(name, _, _)| *name == "sff"));
    }
}
