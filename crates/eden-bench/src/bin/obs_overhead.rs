//! Observability overhead gate: the Figure-12 interpreted data path with
//! trace sampling at 1-in-64 versus tracing disabled.
//!
//! ```text
//! obs_overhead [--max-overhead 0.05] [--batches N] [--per-batch N]
//! ```
//!
//! Times the same per-packet work as the fig12 `+ interp` point (packet
//! build, enclave match-action walk running the interpreted SFF function,
//! wire encode) twice: once with `trace_sample = 0` and once with
//! `trace_sample = 64`, the sampling rate the control plane defaults to.
//! Spans are drained between batches, mirroring the heartbeat piggyback,
//! so the sink never grows unbounded while the timed loop runs.
//!
//! Both configurations are compared on their per-batch *floor* (the
//! minimum per-packet nanoseconds across batches): floors estimate the
//! uncontended cost of the code itself and are far less noisy than means
//! on shared CI machines. Exit codes: 0 within budget, 1 over budget,
//! 2 usage error. Set `EDEN_BENCH_SMOKE=1` for a CI-sized run. Emits
//! `BENCH_obs_overhead.json` (honours `EDEN_BENCH_DIR`).

use std::process::ExitCode;
use std::time::Instant;

use eden_apps::functions;
use eden_bench::report::emit_json;
use eden_core::{ClassId, Enclave, EnclaveConfig, MatchSpec, TableId};
use eden_telemetry::Json;
use netsim::{wire, EdenMeta, Packet, SimRng, TcpHeader, Time};

/// The trace sampling rate under test: one packet in 64, the default the
/// observability docs recommend for always-on production tracing.
const SAMPLE: u32 = 64;

fn make_packet(i: u64) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 40000 + (i % 12) as u16,
            dst_port: 7000,
            seq: (i * 1460) as u32,
            ack: 0,
            flags: netsim::TcpFlags {
                ack: true,
                ..Default::default()
            },
            window: 8192,
        },
        1460,
    );
    p.meta = Some(EdenMeta {
        classes: vec![1],
        msg_id: 1 + i % 12,
        msg_size: 5_000_000,
        ..Default::default()
    });
    p
}

fn build_enclave(trace_sample: u32) -> Enclave {
    let bundle = functions::sff();
    let mut e = Enclave::new(EnclaveConfig {
        trace_sample,
        ..EnclaveConfig::default()
    });
    let f = e.install_function(bundle.interpreted());
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    e.set_array(f, 0, vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
    e
}

/// Per-batch per-packet nanoseconds for one enclave configuration; spans
/// are drained outside the timed region (that cost rides the control
/// path, not the data path).
fn measure(e: &mut Enclave, batches: usize, per_batch: usize) -> Vec<f64> {
    let mut rng = SimRng::new(7);
    let mut sink = 0u64;
    let mut n = 0u64;
    // warmup
    for _ in 0..per_batch {
        let mut p = make_packet(n);
        let _ = e.process(&mut p, &mut rng, Time::from_nanos(n));
        sink = sink.wrapping_add(u64::from(wire::encode(&p)[20]));
        n += 1;
    }
    e.drain_spans(usize::MAX);
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            let mut p = make_packet(n);
            let _ = e.process(&mut p, &mut rng, Time::from_nanos(n));
            sink = sink.wrapping_add(u64::from(wire::encode(&p)[20]));
            n += 1;
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        samples.push(elapsed / per_batch as f64);
        e.drain_spans(usize::MAX);
    }
    std::hint::black_box(sink);
    samples
}

fn floor(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn usage() -> ExitCode {
    eprintln!("usage: obs_overhead [--max-overhead 0.05] [--batches N] [--per-batch N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let smoke = std::env::var("EDEN_BENCH_SMOKE").is_ok();
    let (mut batches, mut per_batch) = if smoke { (60, 2_000) } else { (200, 5_000) };
    let mut max_overhead = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = args.next();
        let parsed = match a.as_str() {
            "--max-overhead" => val.and_then(|v| v.parse::<f64>().ok()).map(|v| {
                max_overhead = v;
            }),
            "--batches" => val.and_then(|v| v.parse().ok()).map(|v| {
                batches = v;
            }),
            "--per-batch" => val.and_then(|v| v.parse().ok()).map(|v| {
                per_batch = v;
            }),
            _ => None,
        };
        if parsed.is_none() {
            return usage();
        }
    }

    println!("== Observability overhead: trace_sample {SAMPLE} vs disabled ==");
    println!("interpreted SFF data path, {batches} batches x {per_batch} packets\n");

    let mut off = build_enclave(0);
    let off_samples = measure(&mut off, batches, per_batch);
    let mut traced = build_enclave(SAMPLE);
    let traced_samples = measure(&mut traced, batches, per_batch);
    assert!(traced.pending_spans() == 0, "spans drained between batches");

    let off_floor = floor(&off_samples);
    let traced_floor = floor(&traced_samples);
    let overhead = (traced_floor - off_floor) / off_floor;

    println!(
        "tracing off : floor {off_floor:.1} ns/pkt (mean {:.1})",
        mean(&off_samples)
    );
    println!(
        "tracing 1/{SAMPLE}: floor {traced_floor:.1} ns/pkt (mean {:.1})",
        mean(&traced_samples)
    );
    println!(
        "overhead    : {:+.2}% (budget {:.1}%)",
        overhead * 100.0,
        max_overhead * 100.0
    );

    let artifact = Json::obj(vec![
        ("smoke", smoke.into()),
        ("sample", u64::from(SAMPLE).into()),
        ("off_floor_ns", off_floor.into()),
        ("traced_floor_ns", traced_floor.into()),
        ("overhead_fraction", overhead.into()),
        ("budget_fraction", max_overhead.into()),
        ("within_budget", (overhead <= max_overhead).into()),
    ]);
    match emit_json("obs_overhead", &artifact) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_obs_overhead.json: {e}"),
    }

    if overhead > max_overhead {
        eprintln!(
            "obs_overhead: sampled tracing costs {:.2}% > {:.1}% budget",
            overhead * 100.0,
            max_overhead * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("obs_overhead: ok");
        ExitCode::SUCCESS
    }
}
