//! Bench regression gate: compare a fresh `BENCH_*.json` run against the
//! checked-in baselines and fail on regressions past a threshold.
//!
//! ```text
//! bench_gate --baseline baselines --current bench-artifacts [--threshold 0.25]
//! ```
//!
//! Both paths may be directories (every `BENCH_*.json` in the baseline
//! dir must have a counterpart in the current dir) or a pair of files.
//! The comparator is schema-agnostic: it flattens each JSON document
//! into `(metric path, value)` pairs, using non-metric fields (strings,
//! identity integers like `lanes` or `hosts`) to key array elements, and
//! only gates fields whose *names* identify a direction:
//!
//! * lower-is-better — time-like tokens: `ns`, `us`, `ms`, `latency`,
//!   `p50`/`p95`/`p99`, `mean`, `max`
//! * higher-is-better — rate-like tokens: `throughput`, `rate`, `sec`,
//!   `ops`, `gbps`, `mbps`
//!
//! A gated metric moving in its bad direction by more than `threshold`
//! (relative) is a regression. A baseline metric missing from the
//! current run, or a quality flag (any boolean except `smoke`) flipping
//! `true -> false`, is also a failure: silent schema drift must not
//! read as a pass. Exit codes: 0 ok, 1 regression, 2 usage/IO error.
//!
//! Timing samples from smoke-sized runs are noisy; `--current` may be
//! given several times (one directory per repetition) and the gate takes
//! each metric's *best* sample — min for lower-is-better, max for
//! higher-is-better — before comparing. Baselines should be captured the
//! same way (best of N runs) so both sides estimate the same quantity:
//! the machine's uncontended floor.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use eden_telemetry::Json;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
    /// Not a recognized metric: carried for presence checks only.
    Unknown,
}

/// Classify a field name by its `_`-separated tokens.
fn direction(name: &str) -> Direction {
    let tokens: Vec<&str> = name.split('_').collect();
    const LOWER: &[&str] = &[
        "ns", "us", "ms", "latency", "p50", "p95", "p99", "mean", "max",
    ];
    const HIGHER: &[&str] = &["throughput", "rate", "sec", "ops", "gbps", "mbps"];
    if tokens.iter().any(|t| LOWER.contains(t)) {
        Direction::LowerBetter
    } else if tokens.iter().any(|t| HIGHER.contains(t)) {
        Direction::HigherBetter
    } else {
        Direction::Unknown
    }
}

/// One extracted value: a gated number or a quality flag.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Number(f64, Direction),
    Flag(bool),
}

/// Flatten a document into `path -> metric`. Array elements of objects
/// are keyed by their identity fields (strings plus numbers that are not
/// direction-classified), so reordering points does not shift metrics.
fn flatten(doc: &Json) -> BTreeMap<String, Metric> {
    let mut out = BTreeMap::new();
    walk(doc, "", &mut out);
    out
}

fn walk(v: &Json, path: &str, out: &mut BTreeMap<String, Metric>) {
    match v {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match v {
                    Json::Bool(b) if k != "smoke" => {
                        out.insert(sub, Metric::Flag(*b));
                    }
                    Json::Bool(_) => {}
                    Json::Int(_) | Json::UInt(_) | Json::Float(_) => {
                        let d = direction(k);
                        if d != Direction::Unknown {
                            out.insert(sub, Metric::Number(as_f64(v), d));
                        }
                    }
                    _ => walk(v, &sub, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let key = element_key(item).unwrap_or_else(|| format!("[{i}]"));
                walk(item, &format!("{path}{key}"), out);
            }
        }
        _ => {}
    }
}

fn as_f64(v: &Json) -> f64 {
    match v {
        Json::Int(i) => *i as f64,
        Json::UInt(u) => *u as f64,
        Json::Float(f) => *f,
        _ => f64::NAN,
    }
}

/// Identity key for an object inside an array: every string and boolean
/// field plus every number field that is not itself a gated metric.
/// Booleans are identity here (e.g. `parallel=true` names a *different
/// measurement*, not a quality verdict), which also lets `--skip` target
/// whole point families.
fn element_key(v: &Json) -> Option<String> {
    let Json::Obj(fields) = v else { return None };
    let mut parts = Vec::new();
    for (k, v) in fields {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Bool(b) => parts.push(format!("{k}={b}")),
            Json::Int(_) | Json::UInt(_) | Json::Float(_) if direction(k) == Direction::Unknown => {
                parts.push(format!("{k}={}", as_f64(v)))
            }
            _ => {}
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(format!("[{}]", parts.join(",")))
    }
}

/// Token set of a metric path: split on every non-alphanumeric
/// character, lowercase. The unit of similarity for [`nearest`].
fn path_tokens(path: &str) -> Vec<String> {
    path.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// The up-to-three candidate paths most similar to `target`, by Jaccard
/// similarity over path tokens. Renames and typos share most tokens with
/// their old spelling, so the hint usually names the moved metric; paths
/// below a 0.3 similarity floor are noise, not candidates.
fn nearest<'a>(target: &str, candidates: impl Iterator<Item = &'a String>) -> Vec<&'a String> {
    let want = path_tokens(target);
    let mut scored: Vec<(f64, &String)> = candidates
        .filter_map(|c| {
            let have = path_tokens(c);
            let shared = want.iter().filter(|t| have.contains(t)).count();
            let union = want.len() + have.len() - shared;
            let score = shared as f64 / union.max(1) as f64;
            (score >= 0.3).then_some((score, c))
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(3).map(|(_, c)| c).collect()
}

/// Compare two flattened documents; returns human-readable failures.
/// Paths containing any `skip` substring are exempt (used for point
/// families the bench itself documents as machine-dependent, like the
/// lane-parallel wall-clock timings).
fn compare(
    baseline: &BTreeMap<String, Metric>,
    current: &BTreeMap<String, Metric>,
    threshold: f64,
    skip: &[String],
) -> Vec<String> {
    let mut failures = Vec::new();
    for (path, base) in baseline {
        if skip.iter().any(|s| path.contains(s.as_str())) {
            continue;
        }
        let Some(cur) = current.get(path) else {
            let hints = nearest(path, current.keys().filter(|k| !baseline.contains_key(*k)));
            let suffix = if hints.is_empty() {
                String::new()
            } else {
                let names: Vec<&str> = hints.iter().map(|h| h.as_str()).collect();
                format!(" (closest in current run: {})", names.join(", "))
            };
            failures.push(format!(
                "{path}: present in baseline, missing from current run{suffix}"
            ));
            continue;
        };
        match (base, cur) {
            (Metric::Flag(was), Metric::Flag(is)) => {
                if *was && !*is {
                    failures.push(format!("{path}: quality flag regressed true -> false"));
                }
            }
            (Metric::Number(b, d), Metric::Number(c, _)) => {
                if *b == 0.0 || !b.is_finite() || !c.is_finite() {
                    continue;
                }
                let rel = (c - b) / b;
                let regressed = match d {
                    Direction::LowerBetter => rel > threshold,
                    Direction::HigherBetter => rel < -threshold,
                    Direction::Unknown => false,
                };
                if regressed {
                    failures.push(format!(
                        "{path}: {b:.3} -> {c:.3} ({:+.1}%, threshold {:.0}%)",
                        rel * 100.0,
                        threshold * 100.0
                    ));
                }
            }
            _ => failures.push(format!("{path}: metric changed kind between runs")),
        }
    }
    failures
}

/// Element-wise best merge of two structurally identical bench documents
/// (same bench binary, so array point order matches). Used by
/// `--merge-out` to distill N repetitions into one baseline file whose
/// every timing is the machine's observed floor.
fn merge_docs(a: &Json, b: &Json, field: &str) -> Json {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => Json::Obj(
            fa.iter()
                .map(|(k, va)| {
                    let merged = match fb.iter().find(|(kb, _)| kb == k) {
                        Some((_, vb)) => merge_docs(va, vb, k),
                        None => va.clone(),
                    };
                    (k.clone(), merged)
                })
                .collect(),
        ),
        (Json::Arr(ia), Json::Arr(ib)) => Json::Arr(
            ia.iter()
                .enumerate()
                .map(|(i, va)| match ib.get(i) {
                    Some(vb) => merge_docs(va, vb, field),
                    None => va.clone(),
                })
                .collect(),
        ),
        (Json::Bool(ba), Json::Bool(bb)) if field != "smoke" => Json::Bool(*ba && *bb),
        _ if matches!(a, Json::Int(_) | Json::UInt(_) | Json::Float(_))
            && matches!(b, Json::Int(_) | Json::UInt(_) | Json::Float(_)) =>
        {
            match direction(field) {
                Direction::LowerBetter if as_f64(b) < as_f64(a) => b.clone(),
                Direction::HigherBetter if as_f64(b) > as_f64(a) => b.clone(),
                _ => a.clone(),
            }
        }
        _ => a.clone(),
    }
}

fn load(path: &Path) -> Result<BTreeMap<String, Metric>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(flatten(&doc))
}

/// Fold repetition `next` into `acc`, keeping each number's best sample.
/// Flags are AND-ed: a quality bool must hold in *every* repetition.
fn merge_best(acc: &mut BTreeMap<String, Metric>, next: BTreeMap<String, Metric>) {
    for (path, m) in next {
        let merged = match (acc.get(&path), &m) {
            (Some(Metric::Number(best, d)), Metric::Number(v, _)) => {
                let b = match d {
                    Direction::HigherBetter => best.max(*v),
                    _ => best.min(*v),
                };
                Metric::Number(b, *d)
            }
            (Some(Metric::Flag(held)), Metric::Flag(v)) => Metric::Flag(*held && *v),
            _ => m,
        };
        acc.insert(path, merged);
    }
}

/// Resolve `--baseline`/`--current` into matched file sets: each baseline
/// file against its counterpart in every repetition directory.
fn pair_up(baseline: &Path, current: &[PathBuf]) -> Result<Vec<(PathBuf, Vec<PathBuf>)>, String> {
    if baseline.is_file() {
        return Ok(vec![(baseline.to_path_buf(), current.to_vec())]);
    }
    let mut pairs = Vec::new();
    let entries =
        std::fs::read_dir(baseline).map_err(|e| format!("{}: {e}", baseline.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            pairs.push((
                entry.path(),
                current.iter().map(|c| c.join(&*name)).collect(),
            ));
        }
    }
    pairs.sort();
    if pairs.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", baseline.display()));
    }
    Ok(pairs)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate --baseline <dir|file> --current <dir|file> \
         [--current <dir|file>]... [--threshold 0.25] [--skip <substring>]...\n\
         \x20      bench_gate --merge-out <dir> --current <dir> [--current <dir>]...\n\
         \x20      bench_gate --list --baseline <dir|file> | --list --current <dir|file>"
    );
    ExitCode::from(2)
}

/// Every `BENCH_*.json` under `root` (or `root` itself if it is a file).
fn bench_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let entries = std::fs::read_dir(root).map_err(|e| format!("{}: {e}", root.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("BENCH_") && n.ends_with(".json")
                })
                .unwrap_or(false)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", root.display()));
    }
    Ok(files)
}

/// The `--list` mode: dump every flattened metric path so `--skip`
/// substrings and missing-metric reports can be matched against the real
/// names instead of guessed.
fn list_metrics(root: &Path) -> Result<(), String> {
    for file in bench_files(root)? {
        println!("{}:", file.display());
        for (path, metric) in load(&file)? {
            let kind = match metric {
                Metric::Number(_, Direction::LowerBetter) => "gated, lower is better",
                Metric::Number(_, Direction::HigherBetter) => "gated, higher is better",
                Metric::Number(_, Direction::Unknown) => "ungated number",
                Metric::Flag(_) => "quality flag",
            };
            println!("  {path}  [{kind}]");
        }
    }
    Ok(())
}

/// Fold every repetition's `BENCH_*.json` into best-sample baseline files
/// under `out` (the `--merge-out` mode, for refreshing `baselines/`).
fn merge_out(out: &Path, current: &[PathBuf]) -> Result<(), String> {
    let first = current.first().ok_or("no --current directories")?;
    let entries = std::fs::read_dir(first).map_err(|e| format!("{}: {e}", first.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", first.display()));
    }
    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    for name in &names {
        let mut merged: Option<Json> = None;
        for dir in current {
            let path = dir.join(name);
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            merged = Some(match merged {
                Some(acc) => merge_docs(&acc, &doc, ""),
                None => doc,
            });
        }
        let target = out.join(name);
        let text = merged.expect("at least one repetition").render();
        std::fs::write(&target, text + "\n").map_err(|e| format!("{}: {e}", target.display()))?;
        println!(
            "wrote {} (best of {} runs)",
            target.display(),
            current.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut merge_target: Option<PathBuf> = None;
    let mut current: Vec<PathBuf> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut threshold = 0.25f64;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => list = true,
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--merge-out" => merge_target = args.next().map(PathBuf::from),
            "--current" => match args.next() {
                Some(c) => current.push(PathBuf::from(c)),
                None => return usage(),
            },
            "--skip" => match args.next() {
                Some(s) => skip.push(s),
                None => return usage(),
            },
            "--threshold" => {
                threshold = match args.next().and_then(|v| v.parse().ok()) {
                    Some(t) => t,
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
    }
    if list {
        let root = match (&baseline, current.first()) {
            (Some(b), _) => b.clone(),
            (None, Some(c)) => c.clone(),
            (None, None) => return usage(),
        };
        return match list_metrics(&root) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                ExitCode::from(2)
            }
        };
    }
    if current.is_empty() {
        return usage();
    }
    if let Some(out) = merge_target {
        return match merge_out(&out, &current) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                ExitCode::from(2)
            }
        };
    }
    let Some(baseline) = baseline else {
        return usage();
    };

    let pairs = match pair_up(&baseline, &current) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut total_failures = 0usize;
    for (base_path, cur_paths) in &pairs {
        let base = match load(base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        };
        let mut cur = BTreeMap::new();
        for p in cur_paths {
            match load(p) {
                Ok(rep) => merge_best(&mut cur, rep),
                Err(e) => {
                    eprintln!("bench_gate: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let gated = base
            .values()
            .filter(|m| matches!(m, Metric::Number(..)))
            .count();
        let failures = compare(&base, &cur, threshold, &skip);
        println!(
            "{}: {} gated metrics, {} regressions",
            base_path.display(),
            gated,
            failures.len()
        );
        for f in &failures {
            println!("  REGRESSION {f}");
        }
        total_failures += failures.len();
    }
    if total_failures > 0 {
        eprintln!("bench_gate: {total_failures} regression(s) past the threshold");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: ok");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(text: &str) -> BTreeMap<String, Metric> {
        flatten(&Json::parse(text).unwrap())
    }

    #[test]
    fn directions_classify_by_token() {
        assert_eq!(direction("ns_per_packet"), Direction::LowerBetter);
        assert_eq!(direction("push_mean_us"), Direction::LowerBetter);
        assert_eq!(direction("rejoin_max_us"), Direction::LowerBetter);
        assert_eq!(direction("msgs_per_sec"), Direction::HigherBetter);
        // "functions" must not match the "ns" token, "lanes" is identity
        assert_eq!(direction("functions"), Direction::Unknown);
        assert_eq!(direction("lanes"), Direction::Unknown);
        assert_eq!(direction("batch_size"), Direction::Unknown);
    }

    #[test]
    fn array_elements_key_by_identity_not_position() {
        let a = flat(r#"{"points":[{"function":"sff","lanes":4,"ns_per_packet":100}]}"#);
        let b = flat(
            r#"{"points":[{"function":"wcmp","lanes":1,"ns_per_packet":5},
                          {"function":"sff","lanes":4,"ns_per_packet":100}]}"#,
        );
        // the sff point matches across runs even though its index moved
        assert!(compare(&a, &b, 0.25, &[]).is_empty());
    }

    #[test]
    fn regression_past_threshold_fails_in_the_bad_direction_only() {
        let base = flat(r#"{"ns_per_packet":100,"msgs_per_sec":1000}"#);
        let slower = flat(r#"{"ns_per_packet":126,"msgs_per_sec":1000}"#);
        let faster = flat(r#"{"ns_per_packet":10,"msgs_per_sec":4000}"#);
        let lower_rate = flat(r#"{"ns_per_packet":100,"msgs_per_sec":700}"#);
        assert_eq!(compare(&base, &slower, 0.25, &[]).len(), 1);
        assert!(compare(&base, &faster, 0.25, &[]).is_empty());
        assert_eq!(compare(&base, &lower_rate, 0.25, &[]).len(), 1);
    }

    #[test]
    fn missing_metric_and_flag_flip_fail() {
        let base = flat(r#"{"amortized_all":true,"ns_per_packet":100}"#);
        let flipped = flat(r#"{"amortized_all":false,"ns_per_packet":100}"#);
        let gone = flat(r#"{"amortized_all":true}"#);
        assert_eq!(compare(&base, &flipped, 0.25, &[]).len(), 1);
        assert_eq!(compare(&base, &gone, 0.25, &[]).len(), 1);
    }

    #[test]
    fn missing_metric_suggests_the_renamed_counterpart() {
        let base = flat(r#"{"push":{"ns_per_packet":100}}"#);
        let cur = flat(r#"{"push":{"ns_per_pkt":100},"msgs_per_sec":900}"#);
        let failures = compare(&base, &cur, 0.25, &[]);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("closest in current run: push.ns_per_pkt"),
            "{}",
            failures[0]
        );
        // the unrelated rate metric must not outrank the rename
        assert!(!failures[0].contains("msgs_per_sec"), "{}", failures[0]);
    }

    #[test]
    fn missing_metric_with_no_overlap_gets_no_hint() {
        let base = flat(r#"{"ns_per_packet":100}"#);
        let cur = flat(r#"{"qq_zz_mean":1.0}"#);
        let failures = compare(&base, &cur, 0.25, &[]);
        assert_eq!(failures.len(), 1);
        assert!(!failures[0].contains("closest"), "{}", failures[0]);
    }

    #[test]
    fn nearest_prefers_higher_token_overlap() {
        let candidates = [
            "overheads.average.api_pct_mean".to_string(),
            "interp[function=sff].fused_ns_per_packet".to_string(),
            "interp[function=sff].unopt_ns_per_packet".to_string(),
        ];
        let hits = nearest("interp[function=sff].ns_per_packet", candidates.iter());
        assert_eq!(hits[0], "interp[function=sff].fused_ns_per_packet");
    }

    #[test]
    fn best_of_n_keeps_the_best_sample_per_direction() {
        let mut acc = flat(r#"{"ns_per_packet":120,"msgs_per_sec":900,"amortized_all":true}"#);
        merge_best(
            &mut acc,
            flat(r#"{"ns_per_packet":95,"msgs_per_sec":700,"amortized_all":false}"#),
        );
        assert_eq!(
            acc.get("ns_per_packet"),
            Some(&Metric::Number(95.0, Direction::LowerBetter))
        );
        assert_eq!(
            acc.get("msgs_per_sec"),
            Some(&Metric::Number(900.0, Direction::HigherBetter))
        );
        // a quality flag must hold in every repetition
        assert_eq!(acc.get("amortized_all"), Some(&Metric::Flag(false)));
    }

    #[test]
    fn smoke_flag_is_not_gated() {
        let base = flat(r#"{"smoke":true,"ns_per_packet":100}"#);
        let cur = flat(r#"{"smoke":false,"ns_per_packet":100}"#);
        assert!(compare(&base, &cur, 0.25, &[]).is_empty());
    }

    #[test]
    fn skip_patterns_exempt_machine_dependent_points() {
        let base = flat(
            r#"{"points":[{"function":"sff","parallel":true,"ns_per_packet":100},
                          {"function":"sff","parallel":false,"ns_per_packet":100}]}"#,
        );
        let cur = flat(
            r#"{"points":[{"function":"sff","parallel":true,"ns_per_packet":900},
                          {"function":"sff","parallel":false,"ns_per_packet":100}]}"#,
        );
        assert_eq!(compare(&base, &cur, 0.25, &[]).len(), 1);
        let skip = vec!["parallel=true".to_string()];
        assert!(compare(&base, &cur, 0.25, &skip).is_empty());
    }

    #[test]
    fn merge_docs_takes_best_leaf_per_direction() {
        let a = Json::parse(
            r#"{"smoke":true,"amortized_all":true,
                "points":[{"function":"sff","lanes":4,"ns_per_packet":120.0}],
                "msgs_per_sec":900}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"smoke":false,"amortized_all":false,
                "points":[{"function":"sff","lanes":4,"ns_per_packet":95.0}],
                "msgs_per_sec":700}"#,
        )
        .unwrap();
        let m = merge_docs(&a, &b, "");
        let text = m.render();
        assert!(text.contains("\"ns_per_packet\":95"), "{text}");
        assert!(text.contains("\"msgs_per_sec\":900"), "{text}");
        // quality flag AND-ed, smoke kept from the first repetition
        assert!(text.contains("\"amortized_all\":false"), "{text}");
        assert!(text.contains("\"smoke\":true"), "{text}");
    }

    #[test]
    fn real_batch_artifact_shape_round_trips() {
        let doc = r#"{"smoke":true,"amortized_all":true,"points":[
            {"function":"sff","concurrency":"parallel","lanes":1,"batch_size":1,
             "ns_per_packet":388.1,"parallel":false}]}"#;
        let m = flat(doc);
        // exactly one gated number (ns_per_packet) and one flag (parallel)
        assert_eq!(
            m.values()
                .filter(|v| matches!(v, Metric::Number(..)))
                .count(),
            1
        );
        assert!(compare(&m, &m, 0.25, &[]).is_empty());
    }
}
