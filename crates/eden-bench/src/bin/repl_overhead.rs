//! Replication overhead gate: the interpreted data path reading and
//! writing a `replicated(merged)` global versus the identical function on
//! a host-local global.
//!
//! ```text
//! repl_overhead [--max-overhead 0.05] [--batches N] [--per-batch N]
//! ```
//!
//! The paper's premise — and the subsystem's design constraint — is that
//! action functions make *local* decisions against a replica view with
//! zero hot-path synchronization: a replicated read folds the last
//! synced remote snapshot into the local value with plain arithmetic, no
//! locks, no atomics. This gate holds the implementation to that claim.
//! Both enclaves run the same compiled token-bucket-style function (read
//! a budget global, compare, debit); the replicated enclave additionally
//! carries a merged remote view installed via `apply_repl_view`, so its
//! loads take the real shared-state path, not the trivially-empty one.
//!
//! Configurations are compared on their per-batch *floor* (minimum
//! per-packet nanoseconds across batches), the noise-resistant estimate
//! the obs-overhead gate established. Exit codes: 0 within budget, 1
//! over budget, 2 usage error. Set `EDEN_BENCH_SMOKE=1` for a CI-sized
//! run. Emits `BENCH_repl_overhead.json` (honours `EDEN_BENCH_DIR`).

use std::process::ExitCode;
use std::time::Instant;

use eden_bench::report::emit_json;
use eden_core::{ClassId, Enclave, EnclaveConfig, InstalledFunction, MatchSpec, TableId};
use eden_lang::{compile, Access, HeaderField, ReplMode, Schema};
use eden_repl::FuncView;
use eden_telemetry::Json;
use netsim::{wire, EdenMeta, Packet, SimRng, TcpHeader, Time};

/// The function under test: read the budget, compare, debit. One
/// replicated-global load and one store per packet — the hot-path shape
/// of the distributed rate limiter.
const SOURCE: &str = "fun (packet: Packet, msg: Message, _global: Global) ->
    if _global.Used + packet.Size > _global.Limit then drop ()
    else _global.Used <- _global.Used + packet.Size";

fn schema(replicated: bool) -> Schema {
    let s = Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .global_field("Limit", Access::ReadOnly)
        .global_field("Used", Access::ReadWrite);
    if replicated {
        s.replicated(ReplMode::MergedSum)
    } else {
        s
    }
}

fn make_packet(i: u64) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 40000 + (i % 12) as u16,
            dst_port: 7000,
            seq: (i * 1460) as u32,
            ack: 0,
            flags: netsim::TcpFlags {
                ack: true,
                ..Default::default()
            },
            window: 8192,
        },
        1460,
    );
    p.meta = Some(EdenMeta {
        classes: vec![1],
        msg_id: 1 + i % 12,
        ..Default::default()
    });
    p
}

fn build_enclave(replicated: bool) -> Enclave {
    let schema = schema(replicated);
    let compiled = compile("repl_gate", SOURCE, &schema)
        .unwrap_or_else(|e| panic!("gate function does not compile: {}", e.render(SOURCE)));
    let mut e = Enclave::new(EnclaveConfig::default());
    let f = e.install_function(InstalledFunction::interpreted("repl_gate", compiled));
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    // a budget no run exhausts, so both arms stay on the debit path
    e.set_global(f, 0, i64::MAX / 2);
    if replicated {
        // install a non-trivial remote view so replicated loads fold a
        // real synced snapshot, not the empty default
        e.apply_repl_view(
            &FuncView {
                func: 0,
                version: 1,
                remote: vec![(1, 5_000_000)],
                ..FuncView::default()
            },
            0,
        );
    }
    e
}

/// One timed batch through `e`; returns per-packet nanoseconds.
fn one_batch(e: &mut Enclave, rng: &mut SimRng, n: &mut u64, per_batch: usize) -> f64 {
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..per_batch {
        let mut p = make_packet(*n);
        let _ = e.process(&mut p, rng, Time::from_nanos(*n));
        sink = sink.wrapping_add(u64::from(wire::encode(&p)[20]));
        *n += 1;
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    std::hint::black_box(sink);
    elapsed / per_batch as f64
}

/// Per-batch per-packet nanoseconds for both configurations, batches
/// *interleaved* so the two arms sample the same noise environment —
/// a machine-speed drift between separate measurement phases would
/// otherwise read as overhead (or mask it).
fn measure_pair(
    local: &mut Enclave,
    repl: &mut Enclave,
    batches: usize,
    per_batch: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut rng_a = SimRng::new(7);
    let mut rng_b = SimRng::new(7);
    let (mut na, mut nb) = (0u64, 0u64);
    // warmup both arms
    one_batch(local, &mut rng_a, &mut na, per_batch);
    one_batch(repl, &mut rng_b, &mut nb, per_batch);
    let mut local_samples = Vec::with_capacity(batches);
    let mut repl_samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        local_samples.push(one_batch(local, &mut rng_a, &mut na, per_batch));
        repl_samples.push(one_batch(repl, &mut rng_b, &mut nb, per_batch));
    }
    (local_samples, repl_samples)
}

fn floor(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn usage() -> ExitCode {
    eprintln!("usage: repl_overhead [--max-overhead 0.05] [--batches N] [--per-batch N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let smoke = std::env::var("EDEN_BENCH_SMOKE").is_ok();
    // batches are cheap here (the function is ~260ns/pkt), so even the
    // smoke sizing buys a stable floor: short batches make the minimum
    // track scheduler luck instead of the code under test
    let (mut batches, mut per_batch) = if smoke { (100, 8_000) } else { (300, 10_000) };
    let mut max_overhead = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = args.next();
        let parsed = match a.as_str() {
            "--max-overhead" => val.and_then(|v| v.parse::<f64>().ok()).map(|v| {
                max_overhead = v;
            }),
            "--batches" => val.and_then(|v| v.parse().ok()).map(|v| {
                batches = v;
            }),
            "--per-batch" => val.and_then(|v| v.parse().ok()).map(|v| {
                per_batch = v;
            }),
            _ => None,
        };
        if parsed.is_none() {
            return usage();
        }
    }

    println!("== Replication overhead: replicated(merged) global vs host-local ==");
    println!("interpreted budget-debit data path, {batches} batches x {per_batch} packets\n");

    let mut local = build_enclave(false);
    let mut repl = build_enclave(true);
    let (local_samples, repl_samples) = measure_pair(&mut local, &mut repl, batches, per_batch);
    assert_eq!(
        local.stats.dropped, 0,
        "budget exhausted: the arms stopped doing the same work"
    );
    assert_eq!(repl.stats.dropped, 0, "replicated arm hit the budget");

    let local_floor = floor(&local_samples);
    let repl_floor = floor(&repl_samples);
    let overhead = (repl_floor - local_floor) / local_floor;

    println!(
        "host-local : floor {local_floor:.1} ns/pkt (mean {:.1})",
        mean(&local_samples)
    );
    println!(
        "replicated : floor {repl_floor:.1} ns/pkt (mean {:.1})",
        mean(&repl_samples)
    );
    println!(
        "overhead   : {:+.2}% (budget {:.1}%)",
        overhead * 100.0,
        max_overhead * 100.0
    );

    let artifact = Json::obj(vec![
        ("smoke", smoke.into()),
        ("local_floor_ns", local_floor.into()),
        ("repl_floor_ns", repl_floor.into()),
        ("overhead_fraction", overhead.into()),
        ("budget_fraction", max_overhead.into()),
        ("within_budget", (overhead <= max_overhead).into()),
    ]);
    match emit_json("repl_overhead", &artifact) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_repl_overhead.json: {e}"),
    }

    if overhead > max_overhead {
        eprintln!(
            "repl_overhead: replica reads cost {:.2}% > {:.1}% budget",
            overhead * 100.0,
            max_overhead * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("repl_overhead: ok");
        ExitCode::SUCCESS
    }
}
