//! Criterion microbenchmarks of the Eden data plane:
//!
//! * interpreter throughput on the Figure 7 program (packets/second);
//! * native vs interpreted enclave `process` (the Figure 12 ratio, here
//!   with Criterion statistics);
//! * stage classification cost;
//! * wire encode/decode;
//! * raw VM dispatch (arithmetic loop, ns/op);
//! * bytecode compilation (controller-side cost of a function update).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use eden_apps::functions;
use eden_core::{
    ClassId, Controller, Enclave, EnclaveConfig, FieldValue, MatchSpec, Stage, TableId,
};
use eden_vm::{Interpreter, Limits, ProgramBuilder, VecHost};
use netsim::{wire, EdenMeta, Packet, SimRng, TcpHeader, Time};

fn make_packet(i: u64) -> Packet {
    let mut p = Packet::tcp(
        1,
        2,
        TcpHeader {
            src_port: 40000,
            dst_port: 7000,
            seq: (i * 1460) as u32,
            ..Default::default()
        },
        1460,
    );
    p.meta = Some(EdenMeta {
        classes: vec![1],
        msg_id: 1 + i % 8,
        msg_size: 100_000,
        ..Default::default()
    });
    p
}

fn build_enclave(interpreted: bool) -> Enclave {
    let bundle = functions::pias();
    let mut e = Enclave::new(EnclaveConfig::default());
    let f = e.install_function(if interpreted {
        bundle.interpreted()
    } else {
        bundle.native()
    });
    e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
    e.set_array(f, 0, vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
    e
}

fn bench_enclave(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclave_process");
    group.throughput(Throughput::Elements(1));
    for (name, interpreted) in [("native", false), ("interpreted", true)] {
        let mut enclave = build_enclave(interpreted);
        let mut rng = SimRng::new(1);
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = make_packet(i);
                i += 1;
                black_box(enclave.process(&mut p, &mut rng, Time::from_nanos(i)))
            })
        });
    }
    group.finish();
}

fn bench_interpreter_dispatch(c: &mut Criterion) {
    // tight arithmetic loop: ~6 ops/iteration, 1000 iterations
    let mut b = ProgramBuilder::new().named("loop").with_entry_locals(1);
    let head = b.new_label();
    let done = b.new_label();
    b.push(1000).store_local(0);
    b.bind(head);
    b.load_local(0).jmp_if_not(done);
    b.load_local(0).push(1).sub().store_local(0);
    b.jmp(head);
    b.bind(done);
    b.halt();
    let program = b.build().expect("valid");

    let mut host = VecHost::default();
    let mut interp = Interpreter::new(Limits::default());
    let mut group = c.benchmark_group("vm");
    // ~6 ops per loop iteration × 1000 iterations
    group.throughput(Throughput::Elements(6_000));
    group.bench_function("dispatch_6k_ops", |b| {
        b.iter(|| black_box(interp.run(&program, &mut host).expect("runs")))
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let mut controller = Controller::new();
    let mut stage = Stage::new("memcached", &["msg_type", "key"], &["msg_id"]);
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![(
            "msg_type".into(),
            eden_core::Matcher::Exact(FieldValue::Str("GET".into())),
        )],
        "GET",
    );
    controller.create_stage_rule(&mut stage, "r2", vec![], "DEFAULT");
    c.bench_function("stage_classify", |b| {
        b.iter(|| {
            black_box(stage.classify(&[
                ("msg_type", FieldValue::Str("GET".into())),
                ("key", FieldValue::Str("user:1234".into())),
            ]))
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let mut p = make_packet(1);
    p.set_priority(5);
    p.set_route_label(7);
    let bytes = wire::encode(&p);
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_1514B", |b| b.iter(|| black_box(wire::encode(&p))));
    group.bench_function("decode_1514B", |b| {
        b.iter(|| black_box(wire::decode(&bytes).expect("valid frame")))
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let bundle = functions::pias_fig7();
    let schema = bundle.schema();
    c.bench_function("compile_fig7", |b| {
        b.iter(|| black_box(eden_lang::compile("pias", &bundle.source, &schema).expect("ok")))
    });
}

/// Ablation: match-action lookup cost as the table grows. The paper argues
/// class matching keeps the data path cheap; this quantifies the walk for
/// tables of 1, 8, and 32 rules where the packet matches the *last* one.
fn bench_table_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_table_scaling");
    for rules in [1usize, 8, 32] {
        let bundle = functions::fixed_priority();
        let mut enclave = Enclave::new(EnclaveConfig::default());
        let f = enclave.install_function(bundle.native());
        enclave.set_global(f, 0, 3);
        // rules 2..=rules+1 miss; the matching class is installed last
        for miss in 0..rules - 1 {
            enclave.install_rule(TableId(0), MatchSpec::Class(ClassId(1000 + miss as u32)), f);
        }
        enclave.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
        let mut rng = SimRng::new(1);
        let mut i = 0u64;
        group.bench_function(format!("{rules}_rules_last_match"), |b| {
            b.iter(|| {
                let mut p = make_packet(i);
                i += 1;
                black_box(enclave.process(&mut p, &mut rng, Time::from_nanos(i)))
            })
        });
    }
    group.finish();
}

/// Ablation: per-packet cost as the live message-state table grows — the
/// enclave's per-message state is a hash map, and the paper's functions
/// touch it on every packet.
fn bench_message_state_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_msg_state");
    for live in [16u64, 4_096, 65_000] {
        let mut enclave = build_enclave(true);
        let mut rng = SimRng::new(1);
        // pre-populate `live` message-state blocks
        for m in 0..live {
            let mut p = make_packet(m);
            p.meta.as_mut().expect("meta set").msg_id = 10 + m;
            enclave.process(&mut p, &mut rng, Time::from_nanos(m));
        }
        let mut i = 0u64;
        group.bench_function(format!("{live}_live_messages"), |b| {
            b.iter(|| {
                let mut p = make_packet(i);
                p.meta.as_mut().expect("meta set").msg_id = 10 + (i % live);
                i += 1;
                black_box(enclave.process(&mut p, &mut rng, Time::from_nanos(i)))
            })
        });
    }
    group.finish();
}

/// Ablation: interpreted-over-native ratio per catalogue function — the
/// interpreter's cost depends on the program, not just the packet.
fn bench_catalogue_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalogue");
    group.sample_size(30);
    for bundle in functions::catalogue() {
        // conntrack needs ingress context and port-knock is stateful across
        // the exact packet sequence; benchmark the stateless-enough ones
        if matches!(bundle.name, "conntrack" | "port-knock") {
            continue;
        }
        for interpreted in [false, true] {
            let mut enclave = Enclave::new(EnclaveConfig::default());
            let f = enclave.install_function(if interpreted {
                bundle.interpreted()
            } else {
                bundle.native()
            });
            enclave.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
            let schema = bundle.schema();
            for (i, _) in schema.arrays().iter().enumerate() {
                enclave.set_array(f, i, vec![1_000_000, 1, i64::MAX, 0]);
            }
            for sl in 0..schema.scope_len(eden_lang::Scope::Global) {
                enclave.set_global(f, sl, 1);
            }
            let mut rng = SimRng::new(1);
            let mut i = 0u64;
            let tag = if interpreted { "interp" } else { "native" };
            group.bench_function(format!("{}_{tag}", bundle.name), |b| {
                b.iter(|| {
                    let mut p = make_packet(i);
                    i += 1;
                    black_box(enclave.process(&mut p, &mut rng, Time::from_nanos(i)))
                })
            });
        }
    }
    group.finish();
}

/// The batched data path vs the per-packet loop: same SFF policy, same
/// packets, batch sizes that stay serial vs fan out to worker lanes.
fn bench_batch_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclave_batch");
    group.sample_size(30);
    for (name, lanes, batch) in [
        ("serial_64", 1usize, 64usize),
        ("lanes4_64", 4, 64),
        ("lanes4_512", 4, 512),
    ] {
        let bundle = functions::sff();
        let mut enclave = Enclave::new(EnclaveConfig {
            lanes,
            parallel_batch_min: 2,
            ..EnclaveConfig::default()
        });
        let f = enclave.install_function(bundle.interpreted());
        enclave.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
        enclave.set_array(f, 0, vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
        let mut rng = SimRng::new(1);
        let mut i = 0u64;
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pkts: Vec<Packet> = (0..batch as u64).map(|k| make_packet(i + k)).collect();
                i += batch as u64;
                black_box(enclave.process_batch(&mut pkts, &mut rng, Time::from_nanos(i)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_enclave,
    bench_batch_process,
    bench_interpreter_dispatch,
    bench_classification,
    bench_wire,
    bench_compile,
    bench_table_scaling,
    bench_message_state_scaling,
    bench_catalogue_ratio
);
criterion_main!(benches);
