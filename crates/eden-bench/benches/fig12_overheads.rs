//! Regenerates **Figure 12**: CPU overhead of the Eden components (metadata
//! API, enclave, interpreter) relative to the vanilla stack, measured on
//! the real interpreter/enclave code, plus the §5.4 interpreter footprint.
//!
//! Paper reference points: total overhead under ~8% average / ~10% p95
//! while saturating 10 Gbps with 12 flows under SFF; case-study programs
//! use operand stack/heap "in the order of 64 and 256 bytes".
//!
//! Run with `cargo bench -p eden-bench --bench fig12_overheads`.

use eden_bench::fig12;
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

fn main() {
    println!("== Figure 12: CPU overheads of Eden components ==");
    println!("per-packet wall-clock cost, SFF policy, 12 flows\n");

    let r = fig12::run(200, 5_000);
    let mut table = Table::new(&["component", "avg overhead %", "p95 overhead %"]);
    table.row(&[
        "API (metadata)".into(),
        format!("{:.1}", r.average.api_pct),
        format!("{:.1}", r.p95.api_pct),
    ]);
    table.row(&[
        "enclave (match-action + state)".into(),
        format!("{:.1}", r.average.enclave_pct),
        format!("{:.1}", r.p95.enclave_pct),
    ]);
    table.row(&[
        "interpreter (vs native fn)".into(),
        format!("{:.1}", r.average.interpreter_pct),
        format!("{:.1}", r.p95.interpreter_pct),
    ]);
    println!("{}", table.render());
    println!(
        "raw per-packet cost: baseline {:.0}ns | +API {:.0}ns | +enclave(native) {:.0}ns | +interpreter {:.0}ns",
        r.baseline_ns, r.api_ns, r.enclave_ns, r.interpreter_ns
    );
    println!("paper (testbed): total < ~8% avg / ~10% p95 over vanilla TCP\n");

    println!("== Section 5.4: interpreter footprint of the case-study programs ==");
    let footprints = fig12::footprints();
    let mut fp_table = Table::new(&["program", "operand stack", "heap (locals)"]);
    for fp in &footprints {
        fp_table.row(&[
            fp.name.into(),
            format!("{} B", fp.stack_bytes),
            format!("{} B", fp.heap_bytes),
        ]);
    }
    println!("{}", fp_table.render());
    println!("paper: \"in the order of 64 and 256 bytes respectively\"");

    let artifact = Json::obj(vec![
        ("overheads", r.to_json()),
        (
            "footprints",
            Json::Arr(footprints.iter().map(|f| f.to_json()).collect()),
        ),
    ]);
    match emit_json("fig12", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_fig12.json: {e}"),
    }
}
