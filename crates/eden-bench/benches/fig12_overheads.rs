//! Regenerates **Figure 12**: CPU overhead of the Eden components (metadata
//! API, enclave, interpreter) relative to the vanilla stack, measured on
//! the real interpreter/enclave code, plus the §5.4 interpreter footprint.
//!
//! Paper reference points: total overhead under ~8% average / ~10% p95
//! while saturating 10 Gbps with 12 flows under SFF; case-study programs
//! use operand stack/heap "in the order of 64 and 256 bytes".
//!
//! Emits `BENCH_fig12.json`. Set `EDEN_BENCH_SMOKE=1` for a CI-sized run.
//!
//! Run with `cargo bench -p eden-bench --bench fig12_overheads`.

use eden_bench::fig12;
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

fn main() {
    let smoke = std::env::var("EDEN_BENCH_SMOKE").is_ok();
    println!("== Figure 12: CPU overheads of Eden components ==");
    println!(
        "per-packet wall-clock cost, SFF policy, 12 flows{}\n",
        if smoke { " — smoke sizes" } else { "" }
    );

    let (batches, per_batch) = if smoke { (60, 2_000) } else { (200, 5_000) };
    let r = fig12::run(batches, per_batch);
    let mut table = Table::new(&["component", "avg overhead %", "p95 overhead %"]);
    table.row(&[
        "API (metadata)".into(),
        format!("{:.1}", r.average.api_pct),
        format!("{:.1}", r.p95.api_pct),
    ]);
    table.row(&[
        "enclave (match-action + state)".into(),
        format!("{:.1}", r.average.enclave_pct),
        format!("{:.1}", r.p95.enclave_pct),
    ]);
    table.row(&[
        "interpreter (vs native fn)".into(),
        format!("{:.1}", r.average.interpreter_pct),
        format!("{:.1}", r.p95.interpreter_pct),
    ]);
    println!("{}", table.render());
    println!(
        "raw per-packet cost: baseline {:.0}ns | +API {:.0}ns | +enclave(native) {:.0}ns | +interpreter {:.0}ns",
        r.baseline_ns, r.api_ns, r.enclave_ns, r.interpreter_ns
    );
    println!("paper (testbed): total < ~8% avg / ~10% p95 over vanilla TCP\n");

    println!("== Section 5.4: interpreter footprint of the case-study programs ==");
    let footprints = fig12::footprints();
    let mut fp_table = Table::new(&["program", "operand stack", "heap (locals)"]);
    for fp in &footprints {
        fp_table.row(&[
            fp.name.into(),
            format!("{} B", fp.stack_bytes),
            format!("{} B", fp.heap_bytes),
        ]);
    }
    println!("{}", fp_table.render());
    println!("paper: \"in the order of 64 and 256 bytes respectively\"");

    println!("\n== Interpreter ablation: compiler pipeline off vs on ==");
    let (ab_batches, ab_per_batch) = if smoke { (40, 1_000) } else { (100, 2_000) };
    let costs = fig12::interp_costs(ab_batches, ab_per_batch);
    let mut cost_table = Table::new(&["function", "unopt ns/pkt", "fused ns/pkt", "speedup"]);
    for c in &costs {
        cost_table.row(&[
            c.function.clone(),
            format!("{:.0}", c.unopt_ns_per_packet),
            format!("{:.0}", c.fused_ns_per_packet),
            format!("{:.2}x", c.fused_speedup_rate()),
        ]);
    }
    println!("{}", cost_table.render());
    println!("paper §3.4.4: the compiler \"performs a number of optimizations\"");

    println!("\n== New Table 1 bundles: cost class vs established peers ==");
    let checks = fig12::new_bundle_checks(&costs);
    let mut check_table = Table::new(&["function", "fused ns/pkt", "peer", "peer ns/pkt", "≤2x"]);
    for c in &checks {
        check_table.row(&[
            c.function.into(),
            format!("{:.0}", c.fused_ns_per_packet),
            c.peer.into(),
            format!("{:.0}", c.peer_fused_ns_per_packet),
            if c.within_2x { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("{}", check_table.render());

    let artifact = Json::obj(vec![
        ("overheads", r.to_json()),
        (
            "footprints",
            Json::Arr(footprints.iter().map(|f| f.to_json()).collect()),
        ),
        (
            "interp",
            Json::Arr(costs.iter().map(|c| c.to_json()).collect()),
        ),
        (
            "new_bundles",
            Json::Arr(checks.iter().map(|c| c.to_json()).collect()),
        ),
    ]);
    match emit_json("fig12", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_fig12.json: {e}"),
    }
}
