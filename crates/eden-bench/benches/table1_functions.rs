//! Regenerates **Table 1**: the network-function matrix — which functions
//! need data-plane state, data-plane computation, and application
//! semantics, and that Eden supports them out of the box.
//!
//! For each catalogue entry this harness *derives* the requirement columns
//! from the compiled function itself (no hand-maintained table): state = it
//! writes message or global state; computation = instructions beyond a bare
//! header copy; app semantics = it reads stage metadata fields. "Out of the
//! box" is demonstrated, not asserted: every function is compiled, installed
//! and executed on sample traffic in both engines.
//!
//! Run with `cargo bench -p eden-bench --bench table1_functions`.

use eden_apps::functions::catalogue;
use eden_bench::report::Table;
use eden_core::{ClassId, Enclave, EnclaveConfig, MatchSpec, TableId};
use eden_lang::{compile, HeaderField, Scope};
use netsim::{EdenMeta, Packet, SimRng, TcpHeader, Time};

fn main() {
    println!("== Table 1: network functions and their data-plane requirements ==\n");

    let mut table = Table::new(&[
        "function",
        "paper ref",
        "dp state",
        "dp compute",
        "app semantics",
        "concurrency",
        "out of the box",
    ]);

    for bundle in catalogue() {
        let schema = bundle.schema();
        let compiled = compile(bundle.name, &bundle.source, &schema).expect("catalogue compiles");

        let uses_state = !compiled.effects.msg_writes.is_empty()
            || !compiled.effects.glob_writes.is_empty()
            || !compiled.effects.arr_writes.is_empty();
        let uses_app_semantics = schema.fields().iter().any(|f| {
            f.scope == Scope::Packet
                && matches!(
                    f.header,
                    Some(
                        HeaderField::MetaMsgId
                            | HeaderField::MetaMsgType
                            | HeaderField::MetaMsgSize
                            | HeaderField::MetaTenant
                            | HeaderField::MetaKeyHash
                            | HeaderField::MetaMsgStart
                    )
                )
                && compiled.effects.pkt_reads.contains(&f.slot)
        }) || !compiled.effects.msg_writes.is_empty()
            || !compiled.effects.msg_reads.is_empty();
        let computes = compiled.program.ops().len() > 3;

        // demonstrate out-of-the-box: install and run both engines
        let works = [false, true].iter().all(|&native| {
            let mut e = Enclave::new(EnclaveConfig {
                fail_open: true,
                ..Default::default()
            });
            let f = e.install_function(if native {
                bundle.native()
            } else {
                bundle.interpreted()
            });
            e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
            // give every array/global sane contents
            for (i, _) in schema.arrays().iter().enumerate() {
                e.set_array(f, i, vec![1_000_000, 1, i64::MAX, 0]);
            }
            for s in 0..schema.scope_len(Scope::Global) {
                e.set_global(f, s, 1);
            }
            let mut rng = SimRng::new(1);
            let mut faults = 0;
            for i in 0..100u64 {
                let mut p = Packet::tcp(
                    1,
                    2,
                    TcpHeader {
                        src_port: 40000,
                        dst_port: 80,
                        ..Default::default()
                    },
                    500,
                );
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: 1 + i % 3,
                    msg_type: 1,
                    msg_size: 4096,
                    tenant: 0,
                    key_hash: 7,
                    msg_start: i == 0,
                });
                let _ = e.process(&mut p, &mut rng, Time::from_nanos(i));
                faults = e.stats.faults;
            }
            faults == 0
        });

        let check = |b: bool| if b { "yes" } else { "-" }.to_string();
        table.row(&[
            bundle.name.to_string(),
            bundle.paper_ref.to_string(),
            check(uses_state),
            check(computes),
            check(uses_app_semantics),
            format!("{}", compiled.concurrency),
            check(works),
        ]);
    }
    println!("{}", table.render());
    println!("(requirement columns derived from each compiled function's effect sets;");
    println!(" 'out of the box' = compiled, installed, and executed fault-free in both engines)");
}
