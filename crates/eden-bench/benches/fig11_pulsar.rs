//! Regenerates **Figure 11**: READ vs WRITE tenant throughput against a
//! storage server, in isolation, simultaneously, and with Pulsar's
//! size-aware rate control at the READ tenant's enclave.
//!
//! Paper reference points (§5.3): both tenants reach ~110–120 MB/s in
//! isolation; run together, WRITE throughput drops by ~72%; charging READ
//! requests by operation size equalizes the two.
//!
//! Run with `cargo bench -p eden-bench --bench fig11_pulsar`.

use eden_bench::fig11::{run, Config, Mode};
use eden_bench::report::Table;
use netsim::{Summary, Time};

fn main() {
    let runs: u64 = std::env::var("EDEN_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("== Figure 11: Pulsar READ/WRITE isolation (case study 3) ==");
    println!("64KB IOs; storage server behind 1 Gbps; {runs} runs/mode\n");

    let mut table = Table::new(&["mode", "READ MB/s", "WRITE MB/s"]);
    let arms = [
        (Mode::ReadIsolated, "isolated (READ only)"),
        (Mode::WriteIsolated, "isolated (WRITE only)"),
        (Mode::Simultaneous, "simultaneous"),
        (Mode::RateControlled, "rate-controlled"),
    ];
    let mut write_iso = 0.0;
    let mut write_sim = 0.0;
    for (mode, name) in arms {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for seed in 0..runs {
            let cfg = Config {
                seed: 20 + seed,
                warmup: Time::from_millis(100),
                until: Time::from_millis(500),
                ..Default::default()
            };
            let r = run(mode, &cfg);
            reads.push(r.read_mbps);
            writes.push(r.write_mbps);
        }
        let rs = Summary::new(reads);
        let ws = Summary::new(writes);
        if mode == Mode::WriteIsolated {
            write_iso = ws.mean();
        }
        if mode == Mode::Simultaneous {
            write_sim = ws.mean();
        }
        table.row(&[
            name.to_string(),
            format!("{:.1} ±{:.1}", rs.mean(), rs.ci95()),
            format!("{:.1} ±{:.1}", ws.mean(), ws.ci95()),
        ]);
    }
    println!("{}", table.render());
    if write_iso > 0.0 {
        println!(
            "measured WRITE collapse under contention: {:.0}% (paper: ~72%)",
            (1.0 - write_sim / write_iso) * 100.0
        );
    }
    println!("paper (testbed): isolated ~110-120 MB/s each; rate control equalizes");
}
