//! Replication-plane sync: replica staleness and delta wire cost for a
//! fleet-wide `replicated(merged)` counter, swept over host count ×
//! control-channel loss, plus the exact-total-after-heal quality flag.
//!
//! Run with `cargo bench -p eden-bench --bench repl_sync`.
//! Set `EDEN_BENCH_SMOKE=1` for a reduced sweep (CI).

use eden_bench::repl;
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

fn main() {
    let smoke = std::env::var_os("EDEN_BENCH_SMOKE").is_some();
    let (host_counts, losses, seeds): (&[usize], &[u32], &[u64]) = if smoke {
        (&[2, 4], &[0, 100], &[1])
    } else {
        (&[2, 4, 8], &[0, 20, 100], &[1, 2, 3])
    };

    println!("== eden-repl: replica staleness + delta bytes vs hosts x loss ==");
    println!(
        "merged counter on every host; {} seed(s) per point{}\n",
        seeds.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut table = Table::new(&[
        "hosts",
        "ctrl loss",
        "staleness mean",
        "staleness p99",
        "delta p50",
        "delta p99",
        "exact after heal",
    ]);
    let mut points = Vec::new();
    for &hosts in host_counts {
        for &loss in losses {
            let p = repl::run(hosts, loss, seeds);
            table.row(&[
                format!("{hosts}"),
                format!("{:.1}%", f64::from(loss) / 10.0),
                format!("{:.0} us", p.staleness_mean_us),
                format!("{:.0} us", p.staleness_p99_us),
                format!("{:.0} B", p.delta_bytes_p50),
                format!("{:.0} B", p.delta_bytes_p99),
                format!("{}", p.exact_after_heal),
            ]);
            points.push(p);
        }
    }
    println!("{}", table.render());
    println!("staleness = age of a host's contribution when the hub ingests it");
    println!("exact     = hub total and every replica equal the increment count after heal");

    let artifact = Json::obj(vec![
        ("smoke", Json::Bool(smoke)),
        (
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        ),
    ]);
    match emit_json("repl", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_repl.json: {e}"),
    }
}
