//! Regenerates **Figure 10**: aggregate TCP throughput under per-packet
//! ECMP vs WCMP on the asymmetric topology of Figure 1 (10 G + 1 G paths),
//! native vs Eden.
//!
//! Paper reference points (§5.2): ECMP peaks just over 2 Gbps (dominated by
//! the slow path); WCMP at 10:1 reaches ~7.8 Gbps — 3× better but below the
//! 11 Gbps min-cut because reordering trips TCP; Eden ≈ native.
//!
//! Run with `cargo bench -p eden-bench --bench fig10_wcmp`.

use eden_bench::fig10::{run, Balancer, Config, Engine};
use eden_bench::report::{bps, Table};
use netsim::{Summary, Time};

fn main() {
    let runs: u64 = std::env::var("EDEN_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("== Figure 10: ECMP vs WCMP aggregate throughput (case study 2) ==");
    println!("topology: two paths (10G, 1G); per-packet balancing; {runs} runs/arm\n");

    let mut table = Table::new(&["balancer", "engine", "throughput", "ci95"]);
    for (balancer, bname) in [(Balancer::Ecmp, "ECMP"), (Balancer::Wcmp, "WCMP")] {
        for (engine, ename) in [(Engine::Native, "native"), (Engine::Eden, "EDEN")] {
            let samples: Vec<f64> = (0..runs)
                .map(|seed| {
                    let cfg = Config {
                        seed: 10 + seed,
                        warmup: Time::from_millis(50),
                        until: Time::from_millis(250),
                        ..Default::default()
                    };
                    run(balancer, engine, &cfg)
                })
                .collect();
            let s = Summary::new(samples);
            table.row(&[
                bname.to_string(),
                ename.to_string(),
                bps(s.mean()),
                bps(s.ci95()),
            ]);
        }
    }
    println!("{}", table.render());
    println!("paper (testbed): ECMP ~2.1 Gb/s, WCMP ~7.8 Gb/s (3x), EDEN ~= native");

    // --- ablation: TCP reordering tolerance --------------------------------
    // The paper's WCMP number is only reachable with a reorder-tolerant
    // transport; this quantifies how sensitive the result is to the
    // tolerance window (0 = classic Reno, which collapses).
    println!("\n== ablation: WCMP throughput vs TCP reorder-tolerance window ==");
    let mut ab = Table::new(&["reorder window", "WCMP throughput"]);
    for window_us in [0u64, 50, 100, 300, 1000] {
        let samples: Vec<f64> = (0..runs.min(3))
            .map(|seed| {
                let cfg = Config {
                    seed: 10 + seed,
                    reorder_window: Time::from_micros(window_us),
                    ..Default::default()
                };
                run(Balancer::Wcmp, Engine::Native, &cfg)
            })
            .collect();
        let s = Summary::new(samples);
        let label = if window_us == 0 {
            "classic Reno".to_string()
        } else {
            format!("{window_us} us")
        };
        ab.row(&[label, bps(s.mean())]);
    }
    println!("{}", ab.render());
}
