//! Regenerates **Figure 9**: average and 95th-percentile flow completion
//! times for small and intermediate flows under {baseline, PIAS, SFF} ×
//! {native, Eden}, with 95% confidence intervals over several seeded runs.
//!
//! Paper reference points (§5.1): small flows improve from 363 µs to
//! 274 µs on average and from 1.6 ms to 1 ms at the 95th percentile
//! (25–40% reduction); native and Eden are statistically indistinguishable.
//!
//! Run with `cargo bench -p eden-bench --bench fig09_flow_scheduling`.
//! `EDEN_RUNS` (default 5) selects the number of seeded runs per arm.

use eden_bench::fig09::{run, Config, Engine, Scheme};
use eden_bench::report::{us, Table};
use netsim::{Summary, Time};

fn env_runs() -> u64 {
    std::env::var("EDEN_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn main() {
    let runs = env_runs();
    let arms = [
        ("baseline", Scheme::Baseline, Engine::Native, "native"),
        ("baseline", Scheme::Baseline, Engine::Eden, "EDEN"),
        ("PIAS", Scheme::Pias, Engine::Native, "native"),
        ("PIAS", Scheme::Pias, Engine::Eden, "EDEN"),
        ("SFF", Scheme::Sff, Engine::Native, "native"),
        ("SFF", Scheme::Sff, Engine::Eden, "EDEN"),
    ];

    println!("== Figure 9: flow completion times (case study 1) ==");
    println!("workload: search-distribution responses at 70% load + background; {runs} runs/arm\n");

    let mut table = Table::new(&[
        "scheme",
        "engine",
        "small avg",
        "small p95",
        "interm avg",
        "interm p95",
        "n",
    ]);
    for (name, scheme, engine, engine_name) in arms {
        let mut small_avg = Vec::new();
        let mut small_p95 = Vec::new();
        let mut mid_avg = Vec::new();
        let mut mid_p95 = Vec::new();
        let mut n = 0;
        for seed in 0..runs {
            let cfg = Config {
                seed: 100 + seed,
                duration: Time::from_millis(200),
                ..Default::default()
            };
            let r = run(scheme, engine, &cfg);
            let s = Summary::new(r.small_us.clone());
            let m = Summary::new(r.intermediate_us.clone());
            if !s.is_empty() {
                small_avg.push(s.mean());
                small_p95.push(s.percentile(95.0));
            }
            if !m.is_empty() {
                mid_avg.push(m.mean());
                mid_p95.push(m.percentile(95.0));
            }
            n += r.small_us.len() + r.intermediate_us.len();
        }
        let fmt = |v: &[f64]| {
            let s = Summary::new(v.to_vec());
            format!("{} ±{}", us(s.mean()), us(s.ci95()))
        };
        table.row(&[
            name.to_string(),
            engine_name.to_string(),
            fmt(&small_avg),
            fmt(&small_p95),
            fmt(&mid_avg),
            fmt(&mid_p95),
            n.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper (testbed):   baseline small avg 363us -> PIAS 274us; p95 1.6ms -> 1.0ms");
    println!("expected shape:    PIAS/SFF << baseline; SFF <= PIAS; native ~= EDEN");
}
