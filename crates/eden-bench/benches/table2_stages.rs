//! Regenerates **Table 2**: classification capabilities of the example
//! stages, straight from each stage's `getStageInfo` (the S0 call of the
//! stage API) plus the enclave's own five-tuple row.
//!
//! Run with `cargo bench -p eden-bench --bench table2_stages`.

use eden_apps::stages::{http_stage, memcached_stage, storage_stage};
use eden_bench::report::Table;
use eden_core::Controller;

fn main() {
    println!("== Table 2: classification capabilities of example stages ==\n");

    let mut controller = Controller::new();
    let (memcached, _) = memcached_stage(&mut controller);
    let (http, _) = http_stage(&mut controller);
    let (storage, _) = storage_stage(&mut controller);

    let mut table = Table::new(&["stage", "classifiers", "meta-data"]);
    for stage in [&memcached, &http, &storage] {
        let info = stage.get_info();
        table.row(&[
            info.name.clone(),
            format!("<{}>", info.classifiers.join(", ")),
            format!("{{{}}}", info.metadata.join(", ")),
        ]);
    }
    table.row(&[
        "Eden enclave".into(),
        "<src_ip, src_port, dst_ip, dst_port, proto>".into(),
        "{msg id}".into(),
    ]);
    println!("{}", table.render());
    println!("(first three rows read live from Stage::get_info — the paper's S0 call;");
    println!(" the enclave row is its five-tuple flow classification, Table 2's last line)");
}
