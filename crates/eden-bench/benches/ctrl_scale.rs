//! Control-plane scale: root wire load and convergence time of the flat
//! controller vs the hierarchical aggregator tier, plus the wire savings
//! of digest-anchored delta updates.
//!
//! Run with `cargo bench -p eden-bench --bench ctrl_scale`.
//! Set `EDEN_BENCH_SMOKE=1` for a reduced sweep (CI).
//! Set `EDEN_CTRL_SCALE_HOSTS=100000` (nightly) to add a virtual-shard
//! sweep point at that fleet size.

use eden_bench::ctrl_scale::{self, ScalePoint};
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

const RULES: usize = 8;
const DELTA_HOSTS: usize = 32;
const DELTA_RULES: usize = 64;

fn main() {
    let smoke = std::env::var_os("EDEN_BENCH_SMOKE").is_some();
    let (host_counts, seeds): (&[usize], &[u64]) = if smoke {
        (&[256, 1024], &[1])
    } else {
        (&[256, 1024], &[1, 2, 3])
    };

    println!("== eden-ctrl: flat vs hierarchical control plane at scale ==");
    println!(
        "root wire load + convergence over the push window; {} seed(s) per point{}\n",
        seeds.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut table = Table::new(&[
        "mode",
        "hosts",
        "racks",
        "push mean",
        "root msgs",
        "root KiB",
    ]);
    let mut points: Vec<ScalePoint> = Vec::new();
    for &hosts in host_counts {
        for mode in ["flat", "hier"] {
            let p = match mode {
                "flat" => ctrl_scale::run_flat(hosts, RULES, seeds),
                _ => ctrl_scale::run_hier(hosts, RULES, seeds),
            };
            table.row(&[
                p.mode.to_string(),
                format!("{hosts}"),
                if p.mode == "flat" {
                    "-".into()
                } else {
                    format!("{}", ctrl_scale::rack_count(hosts))
                },
                format!("{:.0} us", p.push_mean_us),
                format!("{:.0}", p.root_msgs_mean),
                format!("{:.1}", p.root_kb_mean),
            ]);
            points.push(p);
        }
    }

    // Optional nightly point: a six-figure fleet over virtual shards.
    if let Some(v) = std::env::var_os("EDEN_CTRL_SCALE_HOSTS") {
        let hosts: usize = v
            .to_string_lossy()
            .parse()
            .expect("EDEN_CTRL_SCALE_HOSTS must be an integer");
        let p = ctrl_scale::run_virtual(hosts, RULES, &[1]);
        table.row(&[
            p.mode.to_string(),
            format!("{hosts}"),
            format!("{}", ctrl_scale::rack_count(hosts)),
            format!("{:.0} us", p.push_mean_us),
            format!("{:.0}", p.root_msgs_mean),
            format!("{:.1}", p.root_kb_mean),
        ]);
        points.push(p);
    }
    println!("{}", table.render());

    // Headline comparisons at the largest common sweep size.
    let biggest = *host_counts.last().expect("non-empty sweep");
    let smallest = host_counts[0];
    let find = |mode: &str, hosts: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.hosts == hosts)
            .expect("sweep point present")
            .clone()
    };
    let (flat_lo, flat_hi) = (find("flat", smallest), find("flat", biggest));
    let (hier_lo, hier_hi) = (find("hier", smallest), find("hier", biggest));
    let reduction = flat_hi.root_msgs_mean / hier_hi.root_msgs_mean;
    // Sub-linear: growing the fleet grows hier root messages by a
    // clearly smaller factor than the (linear) flat design's.
    let flat_growth = flat_hi.root_msgs_mean / flat_lo.root_msgs_mean;
    let hier_growth = hier_hi.root_msgs_mean / hier_lo.root_msgs_mean;
    let sublinear = hier_growth < 0.75 * flat_growth && reduction >= 2.0;
    println!(
        "\nroot messages at {biggest} hosts: flat {:.0} vs hier {:.0} ({reduction:.1}x fewer)",
        flat_hi.root_msgs_mean, hier_hi.root_msgs_mean
    );
    println!(
        "root message growth {smallest} -> {biggest} hosts: flat {flat_growth:.2}x, \
         hier {hier_growth:.2}x (sub-linear: {sublinear})"
    );

    println!("\n== delta updates vs full-table ships ==");
    let delta = ctrl_scale::run_delta(DELTA_HOSTS, DELTA_RULES, seeds);
    println!(
        "one-rule change over a {DELTA_RULES}-rule table, {DELTA_HOSTS} hosts: \
         full {:.2} KiB vs delta {:.2} KiB ({:.1}x fewer config bytes)",
        delta.full_kb_mean,
        delta.delta_kb_mean,
        delta.reduction()
    );

    let artifact = Json::obj(vec![
        ("smoke", Json::Bool(smoke)),
        (
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        ),
        ("hier_root_msg_reduction_rate", Json::Float(reduction)),
        ("hier_sublinear", Json::Bool(sublinear)),
        ("delta", delta.to_json()),
        ("delta_reduction_10x", Json::Bool(delta.reduction() >= 10.0)),
    ]);
    match emit_json("ctrl_scale", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_ctrl_scale.json: {e}"),
    }
}
