//! Control-plane convergence: virtual time for the `eden-ctrl` runtime to
//! drive a fleet to a freshly pushed epoch (two-phase prepare/commit) and
//! to resync a partitioned host after its link heals, swept over host
//! count × control-channel loss.
//!
//! Run with `cargo bench -p eden-bench --bench ctrl_convergence`.
//! Set `EDEN_BENCH_SMOKE=1` for a reduced sweep (CI).

use eden_bench::ctrl;
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

fn main() {
    let smoke = std::env::var_os("EDEN_BENCH_SMOKE").is_some();
    let (host_counts, losses, seeds): (&[usize], &[u32], &[u64]) = if smoke {
        (&[2, 4], &[0, 100], &[1])
    } else {
        (&[2, 4, 8], &[0, 20, 100], &[1, 2, 3])
    };

    println!("== eden-ctrl: fleet convergence vs host count x control loss ==");
    println!(
        "virtual time to all-in-sync; {} seed(s) per point{}\n",
        seeds.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut table = Table::new(&[
        "hosts",
        "ctrl loss",
        "push mean",
        "push max",
        "rejoin mean",
        "rejoin max",
    ]);
    let mut points = Vec::new();
    for &hosts in host_counts {
        for &loss in losses {
            let p = ctrl::run(hosts, loss, seeds);
            table.row(&[
                format!("{hosts}"),
                format!("{:.1}%", f64::from(loss) / 10.0),
                format!("{:.0} us", p.push_mean_us),
                format!("{:.0} us", p.push_max_us),
                format!("{:.0} us", p.rejoin_mean_us),
                format!("{:.0} us", p.rejoin_max_us),
            ]);
            points.push(p);
        }
    }
    println!("{}", table.render());
    println!("push   = set_desired -> every host at the desired (epoch, digest)");
    println!("rejoin = partition heals -> fleet back in sync (detection + resync)");

    let artifact = Json::obj(vec![
        ("smoke", Json::Bool(smoke)),
        (
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        ),
    ]);
    match emit_json("ctrl", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_ctrl.json: {e}"),
    }
}
