//! Micro: batch-size and parallel-speedup curves of the batched enclave
//! data path (`Enclave::process_batch`), per catalogue function.
//!
//! Emits `BENCH_batch.json`. Set `EDEN_BENCH_SMOKE=1` for a CI-sized run.
//!
//! Run with `cargo bench -p eden-bench --bench batch`.

use eden_bench::batch;
use eden_bench::report::{emit_json, Table};
use eden_telemetry::{Json, ToJson};

fn main() {
    let smoke = std::env::var("EDEN_BENCH_SMOKE").is_ok();
    println!("== micro: batched enclave data path ==");
    println!(
        "ns/packet by (function, lanes, batch size){}\n",
        if smoke { " — smoke sizes" } else { "" }
    );

    let points = batch::run(smoke);

    let mut table = Table::new(&["function", "concurrency", "lanes", "batch", "ns/packet"]);
    for p in &points {
        table.row(&[
            p.function.into(),
            p.concurrency.into(),
            p.lanes.to_string(),
            p.batch_size.to_string(),
            format!("{:.0}", p.ns_per_packet),
        ]);
    }
    println!("{}", table.render());

    println!("amortization (lanes=4 series, smallest vs largest batch):");
    let mut amortized_all = true;
    for (name, small, large) in batch::amortization_check(&points) {
        let ok = large < small;
        amortized_all &= ok;
        println!(
            "  {name}: {small:.0} -> {large:.0} ns/packet {}",
            if ok { "(amortized)" } else { "(NOT amortized)" }
        );
    }
    println!(
        "\nnote: wall-clock speedup from lane concurrency needs multiple \
         cores; the batch-size trend above is the machine-independent signal."
    );

    let artifact = Json::obj(vec![
        ("smoke", smoke.into()),
        ("amortized_all", amortized_all.into()),
        (
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        ),
    ]);
    match emit_json("batch", &artifact) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write BENCH_batch.json: {e}"),
    }
}
