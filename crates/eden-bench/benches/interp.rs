//! Criterion `interp` group: per-packet interpreter cost of every
//! catalogue function, compiled two ways — `unopt` (no HIR folding, no IR
//! passes, no fusion) and `fused` (the default pipeline with codec-v2
//! superinstructions). The ratio between the two lines is the
//! interpreted-vs-native gap the low-level IR exists to close; the same
//! measurement feeds the `interp` section of `BENCH_fig12.json` via the
//! `fig12_overheads` bench.
//!
//! Run with `cargo bench -p eden-bench --bench interp`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use eden_apps::functions;
use eden_bench::fig12::catalogue_host;
use eden_lang::{compile_with_options, CompileOptions};
use eden_vm::{Interpreter, Limits};

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));
    for bundle in functions::catalogue() {
        let schema = bundle.schema();
        for (tag, opts) in [
            (
                "unopt",
                CompileOptions {
                    optimize: false,
                    fuse: false,
                },
            ),
            (
                "fused",
                CompileOptions {
                    optimize: true,
                    fuse: true,
                },
            ),
        ] {
            let program = compile_with_options(bundle.name, &bundle.source, &schema, opts)
                .expect("catalogue compiles")
                .program;
            let mut host = catalogue_host(&bundle);
            let mut interp = Interpreter::new(Limits::default());
            let mut i = 0u64;
            group.bench_function(format!("{}_{tag}", bundle.name), |b| {
                b.iter(|| {
                    host.packet[0] = 1460 * ((i % 64) as i64 + 1);
                    i += 1;
                    black_box(
                        interp
                            .run(&program, &mut host)
                            .expect("catalogue function must not trap"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(interp, bench_interp);
criterion_main!(interp);
