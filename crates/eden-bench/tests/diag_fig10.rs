//! Parameter sweep for fig10 tuning (ignored by default).

use eden_bench::fig10::{run, Balancer, Config, Engine};
use netsim::Time;

#[test]
#[ignore]
fn sweep() {
    for (flows, window_us, buf, until_ms) in [
        (1, 100, 150_000, 300),
        (4, 100, 150_000, 300),
        (8, 100, 150_000, 300),
    ] {
        {
            let cfg = Config {
                seed: 3,
                warmup: Time::from_millis(200),
                until: Time::from_millis(until_ms),
                flows,
                reorder_window: Time::from_micros(window_us),
                switch_buffer_bytes: buf,
            };
            let e = run(Balancer::Ecmp, Engine::Native, &cfg);
            let w = run(Balancer::Wcmp, Engine::Native, &cfg);
            println!(
                "flows {flows} window {window_us}us buf {buf}: ecmp {:.2}G wcmp {:.2}G",
                e / 1e9,
                w / 1e9
            );
        }
    }
}
