//! Scaled-down smoke runs of every figure harness, asserting the paper's
//! qualitative shape. The full-length runs live in the bench targets.

use eden_bench::{fig09, fig10, fig11, fig12};
use netsim::{Summary, Time};

#[test]
fn fig10_wcmp_beats_ecmp_by_about_3x() {
    let cfg = fig10::Config {
        seed: 3,
        warmup: Time::from_millis(30),
        until: Time::from_millis(130),
        ..Default::default()
    };
    let ecmp = fig10::run(fig10::Balancer::Ecmp, fig10::Engine::Native, &cfg);
    let wcmp = fig10::run(fig10::Balancer::Wcmp, fig10::Engine::Native, &cfg);
    println!("ecmp {:.2}G wcmp {:.2}G", ecmp / 1e9, wcmp / 1e9);
    assert!(
        ecmp < 3.0e9,
        "ECMP must be dominated by the slow path, got {:.2}G",
        ecmp / 1e9
    );
    assert!(
        wcmp > 2.0 * ecmp,
        "WCMP should be ~3x ECMP: {:.2}G vs {:.2}G",
        wcmp / 1e9,
        ecmp / 1e9
    );
    assert!(
        wcmp < 11.0e9,
        "cannot exceed the min-cut: {:.2}G",
        wcmp / 1e9
    );

    // Eden ≈ native
    let wcmp_eden = fig10::run(fig10::Balancer::Wcmp, fig10::Engine::Eden, &cfg);
    let diff = (wcmp_eden - wcmp).abs() / wcmp;
    println!(
        "wcmp native {:.2}G eden {:.2}G",
        wcmp / 1e9,
        wcmp_eden / 1e9
    );
    assert!(diff < 0.10, "Eden within 10% of native, diff {diff:.3}");
}

#[test]
fn fig11_reads_starve_writes_until_rate_controlled() {
    let cfg = fig11::Config {
        seed: 2,
        warmup: Time::from_millis(50),
        until: Time::from_millis(250),
        ..Default::default()
    };
    let ri = fig11::run(fig11::Mode::ReadIsolated, &cfg);
    let wi = fig11::run(fig11::Mode::WriteIsolated, &cfg);
    let sim = fig11::run(fig11::Mode::Simultaneous, &cfg);
    let rc = fig11::run(fig11::Mode::RateControlled, &cfg);
    println!(
        "isolated  read {:.0} write {:.0} MB/s",
        ri.read_mbps, wi.write_mbps
    );
    println!(
        "simult    read {:.0} write {:.0} MB/s",
        sim.read_mbps, sim.write_mbps
    );
    println!(
        "ratectl   read {:.0} write {:.0} MB/s",
        rc.read_mbps, rc.write_mbps
    );

    assert!(ri.read_mbps > 90.0, "isolated reads near line rate: {ri:?}");
    assert!(
        wi.write_mbps > 90.0,
        "isolated writes near line rate: {wi:?}"
    );
    let drop = 1.0 - sim.write_mbps / wi.write_mbps;
    assert!(
        drop > 0.5,
        "simultaneous writes must collapse (paper: 72%), got {:.0}%",
        drop * 100.0
    );
    let ratio = rc.read_mbps / rc.write_mbps.max(1.0);
    assert!(
        (0.6..1.7).contains(&ratio),
        "rate control should equalize tenants: read {:.0} write {:.0}",
        rc.read_mbps,
        rc.write_mbps
    );
}

#[test]
fn fig09_priorities_cut_small_flow_fct() {
    let cfg = fig09::Config {
        seed: 5,
        duration: Time::from_millis(60),
        ..Default::default()
    };
    let base = fig09::run(fig09::Scheme::Baseline, fig09::Engine::Native, &cfg);
    let pias = fig09::run(fig09::Scheme::Pias, fig09::Engine::Eden, &cfg);
    let sff = fig09::run(fig09::Scheme::Sff, fig09::Engine::Eden, &cfg);

    let b = Summary::new(base.small_us.clone());
    let p = Summary::new(pias.small_us.clone());
    let s = Summary::new(sff.small_us.clone());
    println!(
        "small FCT us: baseline {:.0} (n={}) pias {:.0} (n={}) sff {:.0} (n={})",
        b.mean(),
        b.len(),
        p.mean(),
        p.len(),
        s.mean(),
        s.len()
    );
    println!(
        "background sunk: base {}MB pias {}MB",
        base.background_bytes / 1_000_000,
        pias.background_bytes / 1_000_000
    );
    assert!(b.len() >= 25, "enough small-flow samples: {}", b.len());
    assert!(
        base.background_bytes > 50_000_000,
        "background must load the link"
    );
    assert!(
        p.mean() < b.mean(),
        "PIAS must beat baseline: {:.0} vs {:.0}",
        p.mean(),
        b.mean()
    );
    assert!(
        s.mean() < b.mean(),
        "SFF must beat baseline: {:.0} vs {:.0}",
        s.mean(),
        b.mean()
    );
}

#[test]
fn fig12_interpreter_overhead_is_modest() {
    let r = fig12::run(40, 2_000);
    println!(
        "per-packet ns: base {:.0} api {:.0} native-enclave {:.0} interp {:.0}",
        r.baseline_ns, r.api_ns, r.enclave_ns, r.interpreter_ns
    );
    assert!(r.interpreter_ns > r.baseline_ns, "layers add cost");
    // The paper's figure shows <10% total overhead against a full kernel
    // stack; machines (and debug builds) vary, so bound the *absolute*
    // added cost instead: the whole Eden pipeline must stay within a few
    // microseconds per packet even unoptimized.
    assert!(
        r.interpreter_ns - r.baseline_ns < 20_000.0,
        "Eden pipeline must stay cheap: adds {:.0}ns/packet",
        r.interpreter_ns - r.baseline_ns
    );
}

#[test]
fn fig12_footprints_match_section_5_4() {
    for fp in fig12::footprints() {
        println!(
            "{}: stack {}B heap {}B",
            fp.name, fp.stack_bytes, fp.heap_bytes
        );
        assert!(
            fp.stack_bytes <= 64,
            "{}: operand stack {}B exceeds the paper's 64B",
            fp.name,
            fp.stack_bytes
        );
        assert!(
            fp.heap_bytes <= 256,
            "{}: heap {}B exceeds the paper's 256B",
            fp.name,
            fp.heap_bytes
        );
    }
}
