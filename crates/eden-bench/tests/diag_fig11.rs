//! Diagnostic for the fig11 starvation mechanism (ignored by default).

use eden_apps::apps::storage::{StorageServer, TenantClient};
use eden_bench::fig11::{run, Config, Mode};
use netsim::Time;

#[test]
#[ignore]
fn diag_simultaneous() {
    let cfg = Config {
        seed: 2,
        warmup: Time::from_millis(50),
        until: Time::from_millis(250),
        ..Default::default()
    };
    let r = run(Mode::Simultaneous, &cfg);
    println!("{r:#?}");
    let _ = StorageServer::new(1, 1);
    let _ = TenantClient::new;
}
