//! Simulated applications driving the paper's case studies.
//!
//! * [`reqresp`] — the request-response worker + client + background
//!   senders of case study 1 (flow scheduling, Figure 9);
//! * [`bulk`] — long-running bulk TCP senders and sinks for case study 2
//!   (WCMP, Figure 10);
//! * [`storage`] — the storage server and tenant clients of case study 3
//!   (Pulsar QoS, Figure 11);
//! * [`kv`] — a UDP key-value client/servers pair demonstrating
//!   application-aware replica selection (mcrouter-style).

pub mod bulk;
pub mod kv;
pub mod reqresp;
pub mod storage;
