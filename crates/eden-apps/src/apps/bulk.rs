//! Case study 2 applications (§5.2): long-running bulk TCP flows whose
//! packets the enclave source-routes (ECMP/WCMP), and a sink that meters
//! delivered goodput.

use netsim::{Ctx, EdenMeta, Time};
use transport::{App, ConnId, Stack};

/// A sender pumping `flows` long-running TCP flows to one destination.
pub struct BulkSender {
    pub dst: u32,
    pub dst_port: u16,
    pub flows: usize,
    /// Bytes per flow (large enough to outlast the measurement window).
    pub bytes_per_flow: u32,
    /// Classes stamped on every flow's messages (e.g. the load-balanced
    /// class the WCMP rule matches).
    pub classes: Vec<u32>,
    started: bool,
    next_msg_id: u64,
}

impl BulkSender {
    /// A sender of `flows` flows tagged with `classes`.
    pub fn new(
        dst: u32,
        dst_port: u16,
        flows: usize,
        bytes_per_flow: u32,
        classes: Vec<u32>,
    ) -> Self {
        BulkSender {
            dst,
            dst_port,
            flows,
            bytes_per_flow,
            classes,
            started: false,
            next_msg_id: 1,
        }
    }
}

impl App for BulkSender {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            for _ in 0..self.flows {
                stack.connect(self.dst, self.dst_port, ctx);
            }
        }
    }

    fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let meta = EdenMeta {
            classes: self.classes.clone(),
            msg_id,
            msg_size: i64::from(self.bytes_per_flow),
            msg_start: true,
            ..Default::default()
        };
        stack.send_message(conn, self.bytes_per_flow, msg_id, Some(meta), ctx);
    }
}

/// A sink that meters in-order goodput over a measurement window.
#[derive(Default)]
pub struct MeteredSink {
    pub port: u16,
    /// In-order bytes delivered.
    pub bytes: u64,
    /// First/last delivery timestamps, for throughput math.
    pub first_at: Option<Time>,
    pub last_at: Option<Time>,
}

impl MeteredSink {
    /// A sink listening on `port`.
    pub fn new(port: u16) -> MeteredSink {
        MeteredSink {
            port,
            ..Default::default()
        }
    }

    /// Average goodput in bits/second over the observed window.
    pub fn goodput_bps(&self) -> f64 {
        match (self.first_at, self.last_at) {
            (Some(a), Some(b)) if b > a => self.bytes as f64 * 8.0 / (b - a).as_secs_f64(),
            _ => 0.0,
        }
    }
}

impl App for MeteredSink {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        stack.listen(self.port);
    }

    fn on_data(&mut self, _conn: ConnId, bytes: u32, _stack: &mut Stack, ctx: &mut Ctx<'_>) {
        self.bytes += u64::from(bytes);
        if self.first_at.is_none() {
            self.first_at = Some(ctx.now());
        }
        self.last_at = Some(ctx.now());
    }
}
