//! Case study 3 applications (§5.3): a storage server backed by a RAM-disk
//! model and closed-loop tenant clients issuing 64 KB IOs.
//!
//! The asymmetry the paper exploits: a READ's *request* is a ~100 B packet
//! but its cost at the server (and on the reverse path) is the full
//! operation size; a WRITE carries its cost on the forward path. Without
//! size-aware policing, the READ tenant's tiny requests flood the server's
//! shared IO queue and starve the WRITE tenant. Pulsar's rate control
//! charges READ requests by operation size at the *client's* enclave,
//! restoring balance.

use std::collections::VecDeque;

use eden_core::{FieldValue, Stage};
use netsim::{Ctx, Time};
use transport::{App, ConnId, Stack};

use crate::functions::{MSG_TYPE_READ, MSG_TYPE_WRITE};

/// Pack (op type, op size) into the request's app tag so the server learns
/// the operation without simulated payload parsing.
pub fn pack_io_tag(seq: u32, msg_type: i64, io_size: u32) -> u64 {
    debug_assert!(io_size < (1 << 30));
    (u64::from(seq) << 32) | ((msg_type as u64 & 0x3) << 30) | u64::from(io_size)
}

/// Reverse of [`pack_io_tag`]: `(seq, msg_type, io_size)`.
pub fn unpack_io_tag(tag: u64) -> (u32, i64, u32) {
    (
        (tag >> 32) as u32,
        ((tag >> 30) & 0x3) as i64,
        (tag & ((1 << 30) - 1)) as u32,
    )
}

struct PendingIo {
    conn: ConnId,
    tag: u64,
    msg_type: i64,
    io_size: u32,
}

/// The storage server: FIFO IO queue in front of a RAM-disk with a fixed
/// service bandwidth. READs respond with `io_size` bytes; WRITEs with a
/// 100 B acknowledgement.
pub struct StorageServer {
    pub port: u16,
    /// RAM-disk service bandwidth, bits/second.
    pub disk_bps: u64,
    io_queue: VecDeque<PendingIo>,
    busy: bool,
    /// Serviced bytes per op type (throughput accounting).
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub ops_serviced: u64,
    /// Peak IO-queue depth observed (diagnoses the starvation effect).
    pub peak_queue: usize,
}

/// Timer token for service completion.
const SERVICE_DONE: u64 = 10;

impl StorageServer {
    /// A server on `port` with `disk_bps` of RAM-disk bandwidth.
    pub fn new(port: u16, disk_bps: u64) -> StorageServer {
        StorageServer {
            port,
            disk_bps,
            io_queue: VecDeque::new(),
            busy: false,
            read_bytes: 0,
            write_bytes: 0,
            ops_serviced: 0,
            peak_queue: 0,
        }
    }

    fn start_service(&mut self, ctx: &mut Ctx<'_>) {
        if self.busy {
            return;
        }
        if let Some(io) = self.io_queue.front() {
            self.busy = true;
            let service = Time::serialization(io.io_size as usize, self.disk_bps);
            ctx.timer_in(service, transport::app_timer_token(SERVICE_DONE));
        }
    }
}

impl App for StorageServer {
    fn on_timer(&mut self, token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        match token {
            SERVICE_DONE => {
                self.busy = false;
                if let Some(io) = self.io_queue.pop_front() {
                    self.ops_serviced += 1;
                    match io.msg_type {
                        MSG_TYPE_READ => {
                            self.read_bytes += u64::from(io.io_size);
                            stack.send_message(io.conn, io.io_size, io.tag, None, ctx);
                        }
                        _ => {
                            self.write_bytes += u64::from(io.io_size);
                            stack.send_message(io.conn, 100, io.tag, None, ctx);
                        }
                    }
                }
                self.start_service(ctx);
            }
            _ => stack.listen(self.port),
        }
    }

    fn on_message(
        &mut self,
        conn: ConnId,
        app_tag: u64,
        _size: u32,
        _stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        let (_seq, msg_type, io_size) = unpack_io_tag(app_tag);
        self.io_queue.push_back(PendingIo {
            conn,
            tag: app_tag,
            msg_type,
            io_size,
        });
        self.peak_queue = self.peak_queue.max(self.io_queue.len());
        self.start_service(ctx);
    }
}

/// A closed-loop tenant: keeps `window` IOs outstanding against the server.
pub struct TenantClient {
    pub server: u32,
    pub server_port: u16,
    pub tenant: i64,
    /// `MSG_TYPE_READ` or `MSG_TYPE_WRITE`.
    pub msg_type: i64,
    pub io_size: u32,
    pub window: usize,
    /// Stage classifying this tenant's IOs (attaches tenant + op size).
    pub stage: Stage,
    /// Issue no new IOs after this time.
    pub stop_at: Time,
    conn: Option<ConnId>,
    next_seq: u32,
    /// Completed operations and their completion times.
    pub completions: Vec<(Time, u32)>,
}

impl TenantClient {
    /// A tenant client; `stage` should come from
    /// [`crate::stages::storage_stage`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        server: u32,
        server_port: u16,
        tenant: i64,
        msg_type: i64,
        io_size: u32,
        window: usize,
        stage: Stage,
        stop_at: Time,
    ) -> TenantClient {
        TenantClient {
            server,
            server_port,
            tenant,
            msg_type,
            io_size,
            window,
            stage,
            stop_at,
            conn: None,
            next_seq: 0,
            completions: Vec::new(),
        }
    }

    /// Bytes of completed IO inside `[from, to)`.
    pub fn bytes_completed_between(&self, from: Time, to: Time) -> u64 {
        self.completions
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, b)| u64::from(b))
            .sum()
    }

    fn issue(&mut self, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conn else { return };
        if ctx.now() >= self.stop_at {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let tag = pack_io_tag(seq, self.msg_type, self.io_size);
        let mut meta = self.stage.classify(&[
            ("msg_type", FieldValue::Int(self.msg_type)),
            ("tenant", FieldValue::Int(self.tenant)),
            ("msg_size", FieldValue::Int(i64::from(self.io_size))),
        ]);
        meta.msg_size = i64::from(self.io_size);
        meta.tenant = self.tenant;
        // WRITE carries the data; READ sends a 100B request
        let wire_bytes = if self.msg_type == MSG_TYPE_WRITE {
            self.io_size
        } else {
            100
        };
        stack.send_message(conn, wire_bytes, tag, Some(meta), ctx);
    }
}

impl App for TenantClient {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        if self.conn.is_none() {
            self.conn = Some(stack.connect(self.server, self.server_port, ctx));
        }
    }

    fn on_connected(&mut self, _conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        for _ in 0..self.window {
            self.issue(stack, ctx);
        }
    }

    fn on_message(
        &mut self,
        _conn: ConnId,
        app_tag: u64,
        _size: u32,
        stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        let (_seq, _ty, io_size) = unpack_io_tag(app_tag);
        self.completions.push((ctx.now(), io_size));
        self.issue(stack, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_tag_round_trips() {
        let tag = pack_io_tag(12345, MSG_TYPE_READ, 65536);
        assert_eq!(unpack_io_tag(tag), (12345, MSG_TYPE_READ, 65536));
        let tag = pack_io_tag(u32::MAX, MSG_TYPE_WRITE, (1 << 30) - 1);
        assert_eq!(
            unpack_io_tag(tag),
            (u32::MAX, MSG_TYPE_WRITE, (1 << 30) - 1)
        );
    }
}
