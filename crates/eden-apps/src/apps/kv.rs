//! A UDP key-value client and replica servers demonstrating
//! application-aware replica selection (mcrouter-style, §2.1.1).
//!
//! The client addresses every request to a *virtual* service IP; its stage
//! attaches the key hash, and the enclave's `replica-select` function
//! rewrites the destination to a concrete replica — same key, same replica,
//! so caches stay warm. memcached really does speak UDP, which keeps the
//! demo faithful as well as connection-free.

use eden_core::{FieldValue, Stage};
use netsim::{Ctx, EdenMeta, Packet, Time, UdpHeader};
use transport::{App, ConnId, Stack};

/// KV request op codes carried in the UDP source port's high bit — the
/// payload is length-only, so servers learn GET/PUT from packet metadata.
pub const KV_PORT: u16 = 11211;

/// A replica server: counts requests and echoes a response to the sender.
#[derive(Default)]
pub struct KvReplica {
    /// Requests received, by key hash (for distribution checks).
    pub requests: Vec<i64>,
}

impl App for KvReplica {
    fn on_raw(&mut self, packet: Packet, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        let key_hash = packet.meta.as_ref().map(|m| m.key_hash).unwrap_or(0);
        self.requests.push(key_hash);
        // respond to the source with a small value
        let reply = Packet::udp(
            stack.addr,
            packet.ip.src,
            UdpHeader {
                src_port: KV_PORT,
                dst_port: packet.five_tuple().map(|(_, sp, _, _, _)| sp).unwrap_or(0),
            },
            512,
        );
        stack.send_raw(reply, ctx);
    }
}

/// The client: sends GET requests for keys drawn from a small keyspace to
/// the virtual service address.
pub struct KvClient {
    /// Virtual service IP the stage-visible application uses.
    pub service_ip: u32,
    /// Keys to cycle through.
    pub keys: Vec<String>,
    /// Requests to send.
    pub count: usize,
    /// Gap between requests.
    pub gap: Time,
    pub stage: Stage,
    sent: usize,
    /// Responses received, by source replica IP.
    pub responses: Vec<u32>,
}

impl KvClient {
    /// A client that will send `count` GETs round-robin over `keys`.
    pub fn new(service_ip: u32, keys: Vec<String>, count: usize, gap: Time, stage: Stage) -> Self {
        KvClient {
            service_ip,
            keys,
            count,
            gap,
            stage,
            sent: 0,
            responses: Vec::new(),
        }
    }
}

impl App for KvClient {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        if self.sent >= self.count {
            return;
        }
        let key = &self.keys[self.sent % self.keys.len()];
        let meta: EdenMeta = self.stage.classify(&[
            ("msg_type", FieldValue::Str("GET".into())),
            ("key", FieldValue::Str(key.clone())),
        ]);
        let mut packet = Packet::udp(
            stack.addr,
            self.service_ip,
            UdpHeader {
                src_port: 40000,
                dst_port: KV_PORT,
            },
            64,
        );
        packet.meta = Some(meta);
        stack.send_raw(packet, ctx);
        self.sent += 1;
        if self.sent < self.count {
            ctx.timer_in(self.gap, transport::app_timer_token(0));
        }
    }

    fn on_raw(&mut self, packet: Packet, _stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        self.responses.push(packet.ip.src);
    }

    // unused TCP callbacks
    fn on_connected(&mut self, _c: ConnId, _s: &mut Stack, _x: &mut Ctx<'_>) {}
}
