//! Case study 1 applications (§5.1): a request-response pair under
//! background load.
//!
//! The client fires small requests at the worker following a Poisson
//! process; the worker answers each with a response flow whose size is
//! drawn from the search distribution, classified through its stage so the
//! response packets carry message id/size metadata. Background senders pump
//! one giant message each toward the client, saturating whatever capacity
//! the responses leave free. Flow completion time is measured at the
//! client, per the paper's flow classes (small / intermediate).

use std::collections::{HashMap, VecDeque};

use eden_core::{FieldValue, Stage};
use netsim::{Ctx, EdenMeta, SimRng, Time};
use transport::{App, ConnId, Stack};

use crate::workload::{FlowSizeDist, PoissonArrivals};

/// Timer tokens used by [`RequestClient`].
const START: u64 = 0;
const ARRIVAL: u64 = 1;

/// One completed request-response exchange.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Request tag.
    pub tag: u64,
    /// Response flow size in bytes.
    pub size: u32,
    /// Request-to-full-response latency.
    pub fct: Time,
}

/// The measuring client: issues requests, receives responses, sinks
/// background traffic.
pub struct RequestClient {
    pub worker: u32,
    pub worker_port: u16,
    pub arrivals: PoissonArrivals,
    pub rng: SimRng,
    pub num_conns: usize,
    /// Stop issuing new requests at this time (drain continues).
    pub stop_at: Time,
    /// Port on which background senders are sunk.
    pub sink_port: u16,

    conns: Vec<ConnId>,
    free: Vec<usize>,
    conn_index: HashMap<ConnId, usize>,
    pending: HashMap<u64, Time>,
    deferred: VecDeque<u64>,
    next_tag: u64,
    /// Completed exchanges.
    pub completions: Vec<Completion>,
    /// Requests never answered by `stop_at` + drain (diagnostics).
    pub outstanding: usize,
    /// Background bytes sunk.
    pub background_bytes: u64,
    background_conns: Vec<ConnId>,
}

impl RequestClient {
    /// Build a client; schedule its `START` timer (token 0) at t=0.
    pub fn new(
        worker: u32,
        worker_port: u16,
        arrivals: PoissonArrivals,
        rng: SimRng,
        num_conns: usize,
        stop_at: Time,
    ) -> RequestClient {
        RequestClient {
            worker,
            worker_port,
            arrivals,
            rng,
            num_conns,
            stop_at,
            sink_port: 7001,
            conns: Vec::new(),
            free: Vec::new(),
            conn_index: HashMap::new(),
            pending: HashMap::new(),
            deferred: VecDeque::new(),
            next_tag: 1,
            completions: Vec::new(),
            outstanding: 0,
            background_bytes: 0,
            background_conns: Vec::new(),
        }
    }

    fn issue(&mut self, tag: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        match self.free.pop() {
            Some(idx) => {
                self.pending.insert(tag, ctx.now());
                self.outstanding += 1;
                stack.send_message(self.conns[idx], 100, tag, None, ctx);
            }
            None => self.deferred.push_back(tag),
        }
    }
}

impl App for RequestClient {
    fn on_timer(&mut self, token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        match token {
            START => {
                stack.listen(self.sink_port);
                for _ in 0..self.num_conns {
                    let c = stack.connect(self.worker, self.worker_port, ctx);
                    self.conn_index.insert(c, self.conns.len());
                    self.conns.push(c);
                }
                let gap = self.arrivals.next_gap_ns(&mut self.rng);
                ctx.timer_in(Time::from_nanos(gap), transport::app_timer_token(ARRIVAL));
            }
            ARRIVAL if ctx.now() < self.stop_at => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.issue(tag, stack, ctx);
                let gap = self.arrivals.next_gap_ns(&mut self.rng);
                ctx.timer_in(Time::from_nanos(gap), transport::app_timer_token(ARRIVAL));
            }
            _ => {}
        }
    }

    fn on_connected(&mut self, conn: ConnId, _stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        if let Some(&idx) = self.conn_index.get(&conn) {
            self.free.push(idx);
        }
    }

    fn on_accept(&mut self, conn: ConnId, _stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        self.background_conns.push(conn);
    }

    fn on_data(&mut self, conn: ConnId, bytes: u32, _stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        if self.background_conns.contains(&conn) {
            self.background_bytes += u64::from(bytes);
        }
    }

    fn on_message(
        &mut self,
        conn: ConnId,
        app_tag: u64,
        size: u32,
        stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(sent) = self.pending.remove(&app_tag) else {
            return; // background message completions are not exchanges
        };
        self.outstanding -= 1;
        self.completions.push(Completion {
            tag: app_tag,
            size,
            fct: ctx.now().saturating_sub(sent),
        });
        if let Some(&idx) = self.conn_index.get(&conn) {
            self.free.push(idx);
        }
        if let Some(tag) = self.deferred.pop_front() {
            self.issue(tag, stack, ctx);
        }
    }
}

/// The responding worker: answers each request with a search-sized
/// response, classified through its stage so packets carry Eden metadata.
pub struct Worker {
    pub port: u16,
    pub dist: FlowSizeDist,
    pub rng: SimRng,
    /// Stage classifying responses (msg_type RESP + msg_size).
    pub stage: Stage,
    /// Whether to attach stage metadata to responses (off = vanilla app).
    pub attach_meta: bool,
    /// Responses sent.
    pub responses: u64,
}

impl Worker {
    /// A worker with a fresh default stage (callers installing enclave
    /// functions usually build the stage through the controller instead and
    /// overwrite this field).
    pub fn new(port: u16, dist: FlowSizeDist, rng: SimRng) -> Worker {
        Worker {
            port,
            dist,
            rng,
            stage: Stage::new("worker", &["msg_type", "msg_size"], &["msg_id", "msg_size"]),
            attach_meta: true,
            responses: 0,
        }
    }
}

impl App for Worker {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, _ctx: &mut Ctx<'_>) {
        stack.listen(self.port);
    }

    fn on_message(
        &mut self,
        conn: ConnId,
        app_tag: u64,
        _size: u32,
        stack: &mut Stack,
        ctx: &mut Ctx<'_>,
    ) {
        let size = self.dist.sample(&mut self.rng).min(u32::MAX as u64) as u32;
        let meta = if self.attach_meta {
            let mut meta = self.stage.classify(&[
                ("msg_type", FieldValue::Str("RESP".into())),
                ("msg_size", FieldValue::Int(i64::from(size))),
            ]);
            meta.msg_size = i64::from(size);
            Some(meta)
        } else {
            None
        };
        self.responses += 1;
        stack.send_message(conn, size, app_tag, meta, ctx);
    }
}

/// A background source: one connection, one giant message, classified as
/// background so scheduling functions can demote it immediately.
pub struct BackgroundSender {
    pub dst: u32,
    pub dst_port: u16,
    /// Total bytes to pump (effectively "forever" for the run length).
    pub bytes: u32,
    /// Class ids to stamp on the flow (e.g. the background class).
    pub classes: Vec<u32>,
    /// Message id base (must be unique across senders).
    pub msg_id: u64,
    started: bool,
}

impl BackgroundSender {
    /// Sender of one `bytes`-sized background message.
    pub fn new(dst: u32, dst_port: u16, bytes: u32, classes: Vec<u32>, msg_id: u64) -> Self {
        BackgroundSender {
            dst,
            dst_port,
            bytes,
            classes,
            msg_id,
            started: false,
        }
    }
}

impl App for BackgroundSender {
    fn on_timer(&mut self, _token: u64, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            stack.connect(self.dst, self.dst_port, ctx);
        }
    }

    fn on_connected(&mut self, conn: ConnId, stack: &mut Stack, ctx: &mut Ctx<'_>) {
        let meta = EdenMeta {
            classes: self.classes.clone(),
            msg_id: self.msg_id,
            msg_size: i64::from(self.bytes),
            msg_start: true,
            ..Default::default()
        };
        stack.send_message(conn, self.bytes, self.msg_id, Some(meta), ctx);
    }
}
