//! Ready-made stages with the classification surfaces of Table 2.
//!
//! | Stage | Classifiers | Meta-data |
//! |---|---|---|
//! | memcache | `<msg_type, key>` | msg id, msg type, key, msg size |
//! | HTTP library | `<msg_type, url>` | msg id, msg type, url, msg size |
//! | storage | `<msg_type, tenant>` | msg id, msg type, tenant, msg size |
//! | Eden enclave | five-tuple | msg id |
//!
//! (The storage stage is the custom IO application of case study 3; the
//! enclave's own five-tuple row lives in `eden_core::Enclave::add_flow_rule`.)
//!
//! Each builder installs the paper's canonical rule-sets through the
//! controller, so class names are properly interned and fully qualified.

use eden_core::{ClassId, Controller, Matcher, Stage};

use crate::functions::{MSG_TYPE_READ, MSG_TYPE_WRITE};

/// Classes installed for the memcached stage (Figure 6's rule-sets).
#[derive(Debug, Clone, Copy)]
pub struct MemcachedClasses {
    pub get: ClassId,
    pub put: ClassId,
    pub default: ClassId,
}

/// Build a memcached stage with rule-sets `r1` (GET/PUT) and `r2`
/// (DEFAULT), per Figure 6.
pub fn memcached_stage(controller: &mut Controller) -> (Stage, MemcachedClasses) {
    let mut stage = Stage::new(
        "memcached",
        &["msg_type", "key"],
        &["msg_id", "msg_type", "key", "msg_size"],
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact("GET".into()))],
        "GET",
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact("PUT".into()))],
        "PUT",
    );
    controller.create_stage_rule(&mut stage, "r2", vec![], "DEFAULT");
    let classes = MemcachedClasses {
        get: controller.class("memcached.r1.GET"),
        put: controller.class("memcached.r1.PUT"),
        default: controller.class("memcached.r2.DEFAULT"),
    };
    (stage, classes)
}

/// Classes installed for the HTTP stage.
#[derive(Debug, Clone, Copy)]
pub struct HttpClasses {
    pub api: ClassId,
    pub static_content: ClassId,
    pub other: ClassId,
}

/// Build an HTTP-library stage classifying by URL prefix.
pub fn http_stage(controller: &mut Controller) -> (Stage, HttpClasses) {
    let mut stage = Stage::new(
        "http",
        &["msg_type", "url"],
        &["msg_id", "msg_type", "url", "msg_size"],
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("url".into(), Matcher::Prefix("/api/".into()))],
        "API",
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("url".into(), Matcher::Prefix("/static/".into()))],
        "STATIC",
    );
    controller.create_stage_rule(&mut stage, "r1", vec![], "OTHER");
    let classes = HttpClasses {
        api: controller.class("http.r1.API"),
        static_content: controller.class("http.r1.STATIC"),
        other: controller.class("http.r1.OTHER"),
    };
    (stage, classes)
}

/// Classes installed for the storage stage.
#[derive(Debug, Clone, Copy)]
pub struct StorageClasses {
    pub read: ClassId,
    pub write: ClassId,
    pub io: ClassId,
}

/// Build the storage-IO stage of case study 3: classifies READ vs WRITE
/// and tags tenant + operation size, which is exactly what Pulsar's rate
/// control consumes.
pub fn storage_stage(controller: &mut Controller) -> (Stage, StorageClasses) {
    let mut stage = Stage::new(
        "storage",
        &["msg_type", "tenant"],
        &["msg_id", "msg_type", "tenant", "msg_size"],
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact(MSG_TYPE_READ.into()))],
        "READ",
    );
    controller.create_stage_rule(
        &mut stage,
        "r1",
        vec![("msg_type".into(), Matcher::Exact(MSG_TYPE_WRITE.into()))],
        "WRITE",
    );
    controller.create_stage_rule(&mut stage, "r2", vec![], "IO");
    let classes = StorageClasses {
        read: controller.class("storage.r1.READ"),
        write: controller.class("storage.r1.WRITE"),
        io: controller.class("storage.r2.IO"),
    };
    (stage, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_core::FieldValue;

    #[test]
    fn memcached_stage_matches_table_2() {
        let mut c = Controller::new();
        let (stage, classes) = memcached_stage(&mut c);
        let info = stage.get_info();
        assert_eq!(info.classifiers, vec!["msg_type", "key"]);
        assert!(info.metadata.contains(&"msg_size".to_string()));

        let mut stage = stage;
        let meta = stage.classify(&[
            ("msg_type", FieldValue::Str("GET".into())),
            ("key", FieldValue::Str("user:1".into())),
            ("msg_size", FieldValue::Int(1234)),
        ]);
        assert!(meta.classes.contains(&classes.get.0));
        assert!(meta.classes.contains(&classes.default.0));
        assert!(!meta.classes.contains(&classes.put.0));
        assert_eq!(meta.msg_size, 1234);
    }

    #[test]
    fn storage_stage_classifies_reads_and_writes() {
        let mut c = Controller::new();
        let (mut stage, classes) = storage_stage(&mut c);
        let read = stage.classify(&[
            ("msg_type", FieldValue::Int(super::MSG_TYPE_READ)),
            ("tenant", FieldValue::Int(0)),
            ("msg_size", FieldValue::Int(65536)),
        ]);
        assert!(read.classes.contains(&classes.read.0));
        assert!(read.classes.contains(&classes.io.0));
        assert_eq!(read.msg_type, super::MSG_TYPE_READ);
        assert_eq!(read.tenant, 0);

        let write = stage.classify(&[
            ("msg_type", FieldValue::Int(super::MSG_TYPE_WRITE)),
            ("tenant", FieldValue::Int(1)),
        ]);
        assert!(write.classes.contains(&classes.write.0));
        assert!(!write.classes.contains(&classes.read.0));
    }

    #[test]
    fn http_stage_prefix_routing() {
        let mut c = Controller::new();
        let (mut stage, classes) = http_stage(&mut c);
        let api = stage.classify(&[("url", FieldValue::Str("/api/v1/users".into()))]);
        assert_eq!(api.classes, vec![classes.api.0]);
        let img = stage.classify(&[("url", FieldValue::Str("/static/logo.png".into()))]);
        assert_eq!(img.classes, vec![classes.static_content.0]);
        let other = stage.classify(&[("url", FieldValue::Str("/index.html".into()))]);
        assert_eq!(other.classes, vec![classes.other.0]);
    }
}
