//! The network-function library: the paper's Table 1 as a scenario matrix,
//! every function in two semantically identical forms:
//!
//! * **DSL source** — compiled by the controller and interpreted in the
//!   enclave (the paper's "Eden" arm); stateful NFs are declared as
//!   [`eden_lang::xfsm`] machines and lowered to source;
//! * **native closure** — the same logic hard-coded in Rust (the paper's
//!   "native" arm, §5.1).
//!
//! Each [`FunctionBundle`] carries both plus the schema (Figure 8-style
//! annotations) they share. The unit tests at the bottom drive every bundle
//! with randomized packet streams and assert the two arms agree bit for
//! bit — the precondition for the evaluation's overhead comparisons.
//!
//! ## Table 1 coverage
//!
//! | Table 1 scenario                    | Bundle(s)                          | Status |
//! |-------------------------------------|------------------------------------|--------|
//! | Load balancing (Ananta L4 LB)       | `l4lb`, `conn-steer`               | supported |
//! | Load balancing (WCMP/ECMP)          | `wcmp`, `message-wcmp`             | supported |
//! | Path selection (CONGA/Duet DRE)     | `conga`                            | supported |
//! | Replica selection (mcrouter/SINBAD) | `replica-select`                   | supported |
//! | Flow scheduling (PIAS)              | `pias`, `pias-fig7`                | supported |
//! | Flow scheduling (SFF)               | `sff`                              | supported |
//! | Flow scheduling (QJump)             | `qjump`                            | supported |
//! | Network QoS (fixed classes)         | `fixed-priority`                   | supported |
//! | Rate control (Pulsar)               | `pulsar`, `dist-rate-limit`        | supported |
//! | Rate control (explicit windows)     | `rate-limit`                       | supported |
//! | Stateful firewall / conn tracking   | `conntrack`, `stateful-firewall`   | supported |
//! | IDS (signature scoring)             | `ids`                              | supported |
//! | Port knocking (OpenState)           | `port-knock`                       | supported |
//! | Telemetry / flow counters           | `flow-counter`                     | supported |
//! | Deep packet inspection (payload)    | —                                  | missing: the VM sees header fields and metadata only, no payload bytes |
//! | TCP offload / transport rewrite     | —                                  | missing: needs segment-level rewrite below the enclave hook |

use eden_core::{InstalledFunction, NativeEnv, NativeFn};
use eden_lang::xfsm::{arr, arr_field, arr_len, glob, lit, local, msg, now, pkt};
use eden_lang::{compile, Access, Concurrency, HeaderField, ReplMode, Schema};
use eden_lang::{Helper, XAction, XBin, XState, Xfsm};
use eden_vm::{Outcome, VmError};

/// One catalogue entry: a network function in both execution forms.
pub struct FunctionBundle {
    /// Short identifier, e.g. `"pias"`.
    pub name: &'static str,
    /// Paper reference, e.g. `"PIAS [8] / Figure 4"`.
    pub paper_ref: &'static str,
    /// DSL source (hand-written, or rendered from an [`Xfsm`] machine).
    pub source: String,
    schema: fn() -> Schema,
    native: fn() -> NativeFn,
    /// Concurrency the compiler should derive (checked in tests).
    pub concurrency: Concurrency,
}

impl FunctionBundle {
    /// The state schema both forms bind against.
    pub fn schema(&self) -> Schema {
        (self.schema)()
    }

    /// Compile the DSL form.
    pub fn interpreted(&self) -> InstalledFunction {
        let compiled = compile(self.name, &self.source, &self.schema()).unwrap_or_else(|e| {
            panic!("{} does not compile: {}", self.name, e.render(&self.source))
        });
        assert_eq!(
            compiled.concurrency, self.concurrency,
            "{}: derived concurrency drifted from the documented one",
            self.name
        );
        InstalledFunction::interpreted(self.name, compiled)
    }

    /// Build the native form.
    pub fn native(&self) -> InstalledFunction {
        InstalledFunction::native(self.name, (self.native)(), self.schema(), self.concurrency)
    }
}

// ======================================================================
// PIAS — flow scheduling without application support (Figure 4 / §2.1.3)
// ======================================================================

/// Shared schema for the priority-demotion functions.
fn pias_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .msg_field("Size", Access::ReadWrite)
        .msg_field("Priority", Access::ReadOnly)
        .global_array(
            "Priorities",
            &["MessageSizeLimit", "Priority"],
            Access::ReadOnly,
        )
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const PIAS_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let msg_size = msg.Size + packet.Size
    msg.Size <- msg_size
    let priorities = _global.Priorities
    let rec search index =
        if index >= priorities.Length then 0
        elif msg_size <= priorities.[index].MessageSizeLimit then
            priorities.[index].Priority
        else search (index + 1)
    packet.Priority <- search (0)
"#;

/// The shared PIAS skeleton: accumulate the message's bytes, then look the
/// running total up in the demotion table. `tag` is the single-state
/// tagging action.
fn pias_machine(name: &str, tag: XAction) -> Xfsm {
    Xfsm::new(name)
        .array("priorities", "Priorities")
        .entry(XAction::bind("msg_size", msg("Size").add(pkt("Size"))))
        .entry(XAction::set_msg("Size", local("msg_size")))
        .helper(Helper::select(
            "search",
            "priorities",
            XBin::Le,
            local("msg_size"),
            Some("MessageSizeLimit"),
            Some("Priority"),
            lit(0),
        ))
        .state(XState::new(0, "tag").otherwise(vec![tag], None))
}

fn pias_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let msg_size = env.msg(0)? + env.pkt(0)?;
        env.set_msg(0, msg_size)?;
        let n = env.arr_len(0)? / 2;
        let mut prio = 0;
        for i in 0..n {
            if msg_size <= env.arr(0, i * 2)? {
                prio = env.arr(0, i * 2 + 1)?;
                break;
            }
        }
        env.set_pkt(1, prio)?;
        Ok(Outcome::Done)
    })
}

/// PIAS: demote a message's priority as its byte count grows.
pub fn pias() -> FunctionBundle {
    FunctionBundle {
        name: "pias",
        paper_ref: "PIAS [8] / paper Figure 4",
        source: pias_machine(
            "pias",
            XAction::set_pkt("Priority", Helper::select_call("search")),
        )
        .render(),
        schema: pias_schema,
        native: pias_native,
        concurrency: Concurrency::PerMessage,
    }
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const PIAS_FIG7_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let msg_size = msg.Size + packet.Size
    msg.Size <- msg_size
    let priorities = _global.Priorities
    let rec search index =
        if index >= priorities.Length then 0
        elif msg_size <= priorities.[index].MessageSizeLimit then
            priorities.[index].Priority
        else search (index + 1)
    packet.Priority <-
        let desired = msg.Priority
        if desired < 1 then desired
        else search (0)
"#;

/// The verbatim Figure 7 port: like [`pias`] but honouring a message's
/// self-declared background priority (`msg.Priority < 1`).
pub fn pias_fig7() -> FunctionBundle {
    fn native() -> NativeFn {
        Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
            let msg_size = env.msg(0)? + env.pkt(0)?;
            env.set_msg(0, msg_size)?;
            let desired = env.msg(1)?;
            let prio = if desired < 1 {
                desired
            } else {
                let n = env.arr_len(0)? / 2;
                let mut p = 0;
                for i in 0..n {
                    if msg_size <= env.arr(0, i * 2)? {
                        p = env.arr(0, i * 2 + 1)?;
                        break;
                    }
                }
                p
            };
            env.set_pkt(1, prio)?;
            Ok(Outcome::Done)
        })
    }
    FunctionBundle {
        name: "pias-fig7",
        paper_ref: "paper Figure 7 (verbatim port)",
        source: pias_machine(
            "pias-fig7",
            XAction::set_pkt(
                "Priority",
                msg("Priority")
                    .lt(lit(1))
                    .pick(msg("Priority"), Helper::select_call("search")),
            ),
        )
        .render(),
        schema: pias_schema,
        native,
        concurrency: Concurrency::PerMessage,
    }
}

// ======================================================================
// SFF — shortest flow first with application-provided sizes (§5.1)
// ======================================================================

fn sff_schema() -> Schema {
    Schema::new()
        .packet_field("MsgSize", Access::ReadOnly, Some(HeaderField::MetaMsgSize))
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .global_array(
            "Priorities",
            &["MessageSizeLimit", "Priority"],
            Access::ReadOnly,
        )
}

const SFF_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let priorities = _global.Priorities
    let size = packet.MsgSize
    let rec search index =
        if index >= priorities.Length then 0
        elif size <= priorities.[index].MessageSizeLimit then
            priorities.[index].Priority
        else search (index + 1)
    packet.Priority <- search (0)
"#;

fn sff_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let size = env.pkt(0)?;
        let n = env.arr_len(0)? / 2;
        let mut prio = 0;
        for i in 0..n {
            if size <= env.arr(0, i * 2)? {
                prio = env.arr(0, i * 2 + 1)?;
                break;
            }
        }
        env.set_pkt(1, prio)?;
        Ok(Outcome::Done)
    })
}

/// SFF: priority from the stage-declared message size — "in
/// closed-environments like datacenters, it is possible to modify
/// applications … to directly provide information about the size of a
/// flow" (§2.1.3). The mapping of flows to classes happens when the flow
/// starts and never changes (§5.1).
pub fn sff() -> FunctionBundle {
    FunctionBundle {
        name: "sff",
        paper_ref: "shortest flow first, §5.1",
        source: SFF_SRC.to_string(),
        schema: sff_schema,
        native: sff_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// Fixed priority — tag a class with a constant priority (background)
// ======================================================================

fn fixed_priority_schema() -> Schema {
    Schema::new()
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .global_field("Level", Access::ReadOnly)
}

const FIXED_PRIORITY_SRC: &str = "fun (packet, msg, _global) -> packet.Priority <- _global.Level";

fn fixed_priority_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let level = env.global(0)?;
        env.set_pkt(0, level)?;
        Ok(Outcome::Done)
    })
}

/// Constant priority for a class (network QoS building block; used for the
/// background class in case study 1).
pub fn fixed_priority() -> FunctionBundle {
    FunctionBundle {
        name: "fixed-priority",
        paper_ref: "network QoS [9,51,38,33]",
        source: FIXED_PRIORITY_SRC.to_string(),
        schema: fixed_priority_schema,
        native: fixed_priority_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// WCMP — weighted load balancing (Figure 2 / §2.1.1)
// ======================================================================

fn wcmp_schema() -> Schema {
    Schema::new()
        .packet_field("PathLabel", Access::ReadWrite, Some(HeaderField::Dot1qVid))
        .global_field("TotalWeight", Access::ReadOnly)
        .global_array("Paths", &["Label", "Weight"], Access::ReadOnly)
}

const WCMP_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let paths = _global.Paths
    let pick = randRange (_global.TotalWeight)
    let rec walk index acc =
        let acc2 = acc + paths.[index].Weight
        if pick < acc2 then paths.[index].Label
        else walk (index + 1, acc2)
    packet.PathLabel <- walk (0, 0)
"#;

fn wcmp_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let total = env.global(0)?;
        let pick = env.rand_range(total)?;
        let n = env.arr_len(0)? / 2;
        let mut acc = 0;
        let mut label = 0;
        for i in 0..n {
            acc += env.arr(0, i * 2 + 1)?;
            if pick < acc {
                label = env.arr(0, i * 2)?;
                break;
            }
        }
        env.set_pkt(0, label)?;
        Ok(Outcome::Done)
    })
}

/// Per-packet WCMP: choose a source-route label in a weighted random
/// fashion (the paper's Figure 2, first listing). ECMP is the same function
/// with equal weights.
pub fn wcmp() -> FunctionBundle {
    FunctionBundle {
        name: "wcmp",
        paper_ref: "WCMP [65] / paper Figure 2",
        source: WCMP_SRC.to_string(),
        schema: wcmp_schema,
        native: wcmp_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// message-WCMP — all packets of one message take one path (Figure 2)
// ======================================================================

fn message_wcmp_schema() -> Schema {
    Schema::new()
        .packet_field("PathLabel", Access::ReadWrite, Some(HeaderField::Dot1qVid))
        .msg_field("CachedLabel", Access::ReadWrite)
        .global_field("TotalWeight", Access::ReadOnly)
        .global_array("Paths", &["Label", "Weight"], Access::ReadOnly)
}

const MESSAGE_WCMP_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    if msg.CachedLabel = 0 then (
        let paths = _global.Paths
        let pick = randRange (_global.TotalWeight)
        let rec walk index acc =
            let acc2 = acc + paths.[index].Weight
            if pick < acc2 then paths.[index].Label
            else walk (index + 1, acc2)
        msg.CachedLabel <- walk (0, 0)
    )
    packet.PathLabel <- msg.CachedLabel
"#;

fn message_wcmp_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        if env.msg(0)? == 0 {
            let total = env.global(0)?;
            let pick = env.rand_range(total)?;
            let n = env.arr_len(0)? / 2;
            let mut acc = 0;
            let mut label = 0;
            for i in 0..n {
                acc += env.arr(0, i * 2 + 1)?;
                if pick < acc {
                    label = env.arr(0, i * 2)?;
                    break;
                }
            }
            env.set_msg(0, label)?;
        }
        let cached = env.msg(0)?;
        env.set_pkt(0, cached)?;
        Ok(Outcome::Done)
    })
}

/// Message-level WCMP ("messageWCMP", Figure 2, second listing): the first
/// packet of a message picks the weighted path; all later packets of the
/// same message reuse it, trading a little load imbalance for no
/// reordering. Labels must be non-zero (0 marks "not yet chosen").
pub fn message_wcmp() -> FunctionBundle {
    FunctionBundle {
        name: "message-wcmp",
        paper_ref: "message-based WCMP / paper Figure 2",
        source: MESSAGE_WCMP_SRC.to_string(),
        schema: message_wcmp_schema,
        native: message_wcmp_native,
        concurrency: Concurrency::PerMessage,
    }
}

// ======================================================================
// Pulsar — datacenter QoS with size-aware charging (Figure 3 / §2.1.2)
// ======================================================================

/// Message type conventions for the storage stage.
pub const MSG_TYPE_READ: i64 = 1;
/// WRITE IO.
pub const MSG_TYPE_WRITE: i64 = 2;

fn pulsar_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("MsgType", Access::ReadOnly, Some(HeaderField::MetaMsgType))
        .packet_field("MsgSize", Access::ReadOnly, Some(HeaderField::MetaMsgSize))
        .packet_field("Tenant", Access::ReadOnly, Some(HeaderField::MetaTenant))
        .global_array("QueueMap", &[""], Access::ReadOnly)
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const PULSAR_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let queueMap = _global.QueueMap
    let size =
        if packet.MsgType = 1 then packet.MsgSize
        else packet.Size
    setQueue (queueMap.[packet.Tenant], size)
"#;

fn pulsar_machine() -> Xfsm {
    Xfsm::new("pulsar")
        .array("queueMap", "QueueMap")
        .state(XState::new(0, "charge").otherwise(
            vec![XAction::SetQueue(
                arr("queueMap", pkt("Tenant")),
                pkt("MsgType").eq(lit(1)).pick(pkt("MsgSize"), pkt("Size")),
            )],
            None,
        ))
}

fn pulsar_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let size = if env.pkt(1)? == MSG_TYPE_READ {
            env.pkt(2)?
        } else {
            env.pkt(0)?
        };
        let tenant = env.pkt(3)?;
        let queue = env.arr(0, tenant)?;
        env.set_queue(queue, size)?;
        Ok(Outcome::Done)
    })
}

/// Pulsar rate control (the paper's Figure 3): queue a packet at its
/// tenant's rate limiter, charging READ requests by *operation* size and
/// everything else by packet size.
pub fn pulsar() -> FunctionBundle {
    FunctionBundle {
        name: "pulsar",
        paper_ref: "Pulsar [6] / paper Figure 3",
        source: pulsar_machine().render(),
        schema: pulsar_schema,
        native: pulsar_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// Replica selection — mcrouter/SINBAD-style key routing (§2.1.1)
// ======================================================================

fn replica_select_schema() -> Schema {
    Schema::new()
        .packet_field("KeyHash", Access::ReadOnly, Some(HeaderField::MetaKeyHash))
        .packet_field("Dst", Access::ReadWrite, Some(HeaderField::Ipv4Dst))
        .global_array("Replicas", &[""], Access::ReadOnly)
}

// The modulo must be taken euclidean-style: application key hashes are
// arbitrary i64s, and a negative remainder would index out of bounds.
const REPLICA_SELECT_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let replicas = _global.Replicas
    let rem = packet.KeyHash % replicas.Length
    let index = if rem < 0 then rem + replicas.Length else rem
    packet.Dst <- replicas.[index]
"#;

fn replica_select_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let n = env.arr_len(0)?;
        let mut idx = env.pkt(0)? % n;
        if idx < 0 {
            idx += n;
        }
        let dst = env.arr(0, idx)?;
        env.set_pkt(1, dst)?;
        Ok(Outcome::Done)
    })
}

/// Key-based replica selection: rewrite the destination address by hashing
/// the application key over the replica set — the data-plane half of an
/// mcrouter-style request router. Same key ⇒ same replica, so caches stay
/// warm.
pub fn replica_select() -> FunctionBundle {
    FunctionBundle {
        name: "replica-select",
        paper_ref: "mcrouter [40], SINBAD [17]",
        source: REPLICA_SELECT_SRC.to_string(),
        schema: replica_select_schema,
        native: replica_select_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// Port knocking — stateful firewall (Table 1 / OpenState [13])
// ======================================================================

fn port_knock_schema() -> Schema {
    Schema::new()
        .packet_field("DstPort", Access::ReadOnly, Some(HeaderField::DstPort))
        .global_field("Stage", Access::ReadWrite)
        .global_field("Knock1", Access::ReadOnly)
        .global_field("Knock2", Access::ReadOnly)
        .global_field("Knock3", Access::ReadOnly)
        .global_field("Protected", Access::ReadOnly)
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const PORT_KNOCK_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let port = packet.DstPort
    if port = _global.Knock1 && _global.Stage = 0 then
        _global.Stage <- 1
    elif port = _global.Knock2 && _global.Stage = 1 then
        _global.Stage <- 2
    elif port = _global.Knock3 && _global.Stage = 2 then
        _global.Stage <- 3
    elif port = _global.Protected then (
        if _global.Stage < 3 then drop ()
    )
    elif _global.Stage < 3 then
        _global.Stage <- 0
"#;

/// Port knocking as the textbook XFSM: one state per knock observed, the
/// protected port droppable from every closed state, any other port a
/// reset. The explicit reset to 0 in the `otherwise` rows reproduces the
/// legacy program's (same-value) state write byte for byte.
fn port_knock_machine() -> Xfsm {
    let knock_state = |code: i64, name: &str, knock: &str, next: i64| {
        XState::new(code, name)
            .on(local("port").eq(glob(knock)), vec![], Some(next))
            .on(
                local("port").eq(glob("Protected")),
                vec![XAction::Drop],
                None,
            )
            .otherwise(vec![], Some(0))
    };
    Xfsm::new("port-knock")
        .state_in_global("Stage")
        .entry(XAction::bind("port", pkt("DstPort")))
        .state(knock_state(0, "shut", "Knock1", 1))
        .state(knock_state(1, "one-knock", "Knock2", 2))
        .state(knock_state(2, "two-knocks", "Knock3", 3))
        .state(XState::new(3, "open"))
}

fn port_knock_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let port = env.pkt(0)?;
        let stage = env.global(0)?;
        if port == env.global(1)? && stage == 0 {
            env.set_global(0, 1)?;
        } else if port == env.global(2)? && stage == 1 {
            env.set_global(0, 2)?;
        } else if port == env.global(3)? && stage == 2 {
            env.set_global(0, 3)?;
        } else if port == env.global(4)? {
            if stage < 3 {
                env.drop_packet()?;
                return Ok(Outcome::Dropped);
            }
        } else if stage < 3 {
            env.set_global(0, 0)?;
        }
        Ok(Outcome::Done)
    })
}

/// Port knocking: packets to the protected port are dropped until the
/// secret knock sequence has been observed; a wrong port resets progress.
/// The canonical stateful-firewall example (Table 1's last row).
pub fn port_knock() -> FunctionBundle {
    FunctionBundle {
        name: "port-knock",
        paper_ref: "port knocking [13]",
        source: port_knock_machine().render(),
        schema: port_knock_schema,
        native: port_knock_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// Flow counter — telemetry building block (used by ablations)
// ======================================================================

fn flow_counter_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .msg_field("Bytes", Access::ReadWrite)
        .msg_field("Packets", Access::ReadWrite)
        .global_field("TotalBytes", Access::ReadWrite)
        .global_field("TotalPackets", Access::ReadWrite)
}

const FLOW_COUNTER_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    msg.Bytes <- msg.Bytes + packet.Size
    msg.Packets <- msg.Packets + 1
    _global.TotalBytes <- _global.TotalBytes + packet.Size
    _global.TotalPackets <- _global.TotalPackets + 1
"#;

fn flow_counter_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let size = env.pkt(0)?;
        let b = env.msg(0)? + size;
        env.set_msg(0, b)?;
        let p = env.msg(1)? + 1;
        env.set_msg(1, p)?;
        let tb = env.global(0)? + size;
        env.set_global(0, tb)?;
        let tp = env.global(1)? + 1;
        env.set_global(1, tp)?;
        Ok(Outcome::Done)
    })
}

/// Per-message and global byte/packet counters — the minimal stateful
/// function, used for telemetry and as the ablation workload.
pub fn flow_counter() -> FunctionBundle {
    FunctionBundle {
        name: "flow-counter",
        paper_ref: "telemetry building block",
        source: FLOW_COUNTER_SRC.to_string(),
        schema: flow_counter_schema,
        native: flow_counter_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// QJump-style class enforcement (Table 1: flow scheduling / QJump [28])
// ======================================================================

fn qjump_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("Level", Access::ReadOnly, Some(HeaderField::MetaMsgType))
        .packet_field("Priority", Access::ReadWrite, Some(HeaderField::Dot1qPcp))
        .global_array("Levels", &["Priority", "Queue"], Access::ReadOnly)
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const QJUMP_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let levels = _global.Levels
    let level =
        if packet.Level < levels.Length then packet.Level
        else 0
    packet.Priority <- levels.[level].Priority
    let queue = levels.[level].Queue
    if queue >= 0 then
        setQueue (queue, packet.Size)
"#;

fn qjump_machine() -> Xfsm {
    Xfsm::new("qjump")
        .array("levels", "Levels")
        .entry(XAction::bind(
            "level",
            pkt("Level")
                .lt(arr_len("levels"))
                .pick(pkt("Level"), lit(0)),
        ))
        .entry(XAction::set_pkt(
            "Priority",
            arr_field("levels", local("level"), "Priority"),
        ))
        .entry(XAction::bind(
            "queue",
            arr_field("levels", local("level"), "Queue"),
        ))
        .state(XState::new(0, "enqueue").on(
            local("queue").ge(lit(0)),
            vec![XAction::SetQueue(local("queue"), pkt("Size"))],
            None,
        ))
}

fn qjump_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let n = env.arr_len(0)? / 2;
        let mut level = env.pkt(1)?;
        if level >= n {
            level = 0;
        }
        let prio = env.arr(0, level * 2)?;
        env.set_pkt(2, prio)?;
        let queue = env.arr(0, level * 2 + 1)?;
        if queue >= 0 {
            let size = env.pkt(0)?;
            env.set_queue(queue, size)?;
        }
        Ok(Outcome::Done)
    })
}

/// QJump-style latency classes: an application-declared level maps to a
/// network priority *and* a rate-limited queue, trading throughput for
/// bounded latency at the higher levels. Levels with queue −1 are
/// unthrottled.
pub fn qjump() -> FunctionBundle {
    FunctionBundle {
        name: "qjump",
        paper_ref: "QJump [28]",
        source: qjump_machine().render(),
        schema: qjump_schema,
        native: qjump_native,
        concurrency: Concurrency::Parallel,
    }
}

// ======================================================================
// Connection tracking — stateful firewall over flow state (Table 1)
// ======================================================================

fn conntrack_schema() -> Schema {
    Schema::new()
        .packet_field("Direction", Access::ReadOnly, Some(HeaderField::Direction))
        .msg_field("Established", Access::ReadWrite)
        .global_field("Blocked", Access::ReadWrite)
}

/// Pre-XFSM hand-rolled source, kept as the equivalence oracle.
#[cfg(test)]
const CONNTRACK_LEGACY_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    if packet.Direction = 0 then
        msg.Established <- 1
    elif msg.Established = 0 then (
        _global.Blocked <- _global.Blocked + 1
        drop ()
    )
"#;

/// Connection tracking as a two-state per-flow machine. The established
/// state's (same-value) re-write on outbound packets reproduces the
/// legacy program's unconditional `msg.Established <- 1`.
fn conntrack_machine() -> Xfsm {
    Xfsm::new("conntrack")
        .state_in_msg("Established")
        .state(
            XState::new(0, "new")
                .on(pkt("Direction").eq(lit(0)), vec![], Some(1))
                .otherwise(
                    vec![
                        XAction::set_glob("Blocked", glob("Blocked").add(lit(1))),
                        XAction::Drop,
                    ],
                    None,
                ),
        )
        .state(XState::new(1, "established").on(pkt("Direction").eq(lit(0)), vec![], Some(1)))
}

fn conntrack_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        if env.pkt(0)? == 0 {
            env.set_msg(0, 1)?;
        } else if env.msg(0)? == 0 {
            let blocked = env.global(0)? + 1;
            env.set_global(0, blocked)?;
            env.drop_packet()?;
            return Ok(Outcome::Dropped);
        }
        Ok(Outcome::Done)
    })
}

/// Connection tracking: outbound packets mark their flow established;
/// inbound packets of unestablished flows are dropped. Relies on the
/// enclave's direction-canonical flow-as-message ids, so both directions
/// of a connection share one state block — the stateful-firewall row of
/// Table 1 with per-flow (rather than the port-knock demo's global) state.
pub fn conntrack() -> FunctionBundle {
    FunctionBundle {
        name: "conntrack",
        paper_ref: "stateful firewall / IDS [19]",
        source: conntrack_machine().render(),
        schema: conntrack_schema,
        native: conntrack_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// Distributed rate limiting — Pulsar over a fleet-wide budget (eden-repl)
// ======================================================================

fn dist_rate_limit_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("MsgType", Access::ReadOnly, Some(HeaderField::MetaMsgType))
        .packet_field("MsgSize", Access::ReadOnly, Some(HeaderField::MetaMsgSize))
        .packet_field("Tenant", Access::ReadOnly, Some(HeaderField::MetaTenant))
        .global_field("Limit", Access::ReadOnly)
        .global_field("Used", Access::ReadWrite)
        .replicated(ReplMode::MergedSum)
        .global_array("QueueMap", &[""], Access::ReadOnly)
}

const DIST_RATE_LIMIT_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    let size =
        if packet.MsgType = 1 then packet.MsgSize
        else packet.Size
    if _global.Used + size > _global.Limit then drop ()
    else (
        _global.Used <- _global.Used + size
        let queueMap = _global.QueueMap
        setQueue (queueMap.[packet.Tenant], size)
    )
"#;

fn dist_rate_limit_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let size = if env.pkt(1)? == MSG_TYPE_READ {
            env.pkt(2)?
        } else {
            env.pkt(0)?
        };
        let used = env.global(1)?;
        if used + size > env.global(0)? {
            env.drop_packet()?;
            return Ok(Outcome::Dropped);
        }
        env.set_global(1, used + size)?;
        let tenant = env.pkt(3)?;
        let queue = env.arr(0, tenant)?;
        env.set_queue(queue, size)?;
        Ok(Outcome::Done)
    })
}

/// Pulsar charging against a *fleet-wide* byte budget: `Used` is declared
/// `replicated(merged)`, so every read of it returns this host's spend
/// plus the controller-merged spend of every other host, and every write
/// lands in the local contribution that the next pong carries up. The
/// function body is oblivious — it reads and writes `_global.Used` exactly
/// as if the budget were host-local, which is the subsystem's point:
/// local decisions on replicated state.
pub fn dist_rate_limit() -> FunctionBundle {
    FunctionBundle {
        name: "dist-rate-limit",
        paper_ref: "Pulsar [6] over replicated state (§3.3)",
        source: DIST_RATE_LIMIT_SRC.to_string(),
        schema: dist_rate_limit_schema,
        native: dist_rate_limit_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// Connection steering — least-connections LB on sequenced state
// ======================================================================

fn conn_steer_schema() -> Schema {
    Schema::new()
        .packet_field("Dst", Access::ReadWrite, Some(HeaderField::Ipv4Dst))
        .msg_field("Picked", Access::ReadWrite)
        .global_array("Conns", &[""], Access::ReadWrite)
        .replicated(ReplMode::Sequenced)
        .global_array("Backends", &[""], Access::ReadOnly)
}

const CONN_STEER_SRC: &str = r#"
fun (packet: Packet, msg: Message, _global: Global) ->
    if msg.Picked = 0 then (
        let conns = _global.Conns
        let backends = _global.Backends
        let rec least index best =
            if index >= conns.Length then best
            elif conns.[index] < conns.[best] then least (index + 1, index)
            else least (index + 1, best)
        let pick = least (1, 0)
        conns.[pick] <- conns.[pick] + 1
        msg.Picked <- backends.[pick]
    )
    packet.Dst <- msg.Picked
"#;

fn conn_steer_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        if env.msg(0)? == 0 {
            let n = env.arr_len(0)?;
            let mut best: i64 = 0;
            for i in 1..n {
                if env.arr(0, i)? < env.arr(0, best)? {
                    best = i;
                }
            }
            let bumped = env.arr(0, best)? + 1;
            env.set_arr(0, best, bumped)?;
            let backend = env.arr(1, best)?;
            env.set_msg(0, backend)?;
        }
        let picked = env.msg(0)?;
        env.set_pkt(0, picked)?;
        Ok(Outcome::Done)
    })
}

/// Least-connections steering over `replicated(sequenced)` counts: the
/// first packet of each flow picks the backend with the fewest fleet-wide
/// connections and increments that count. The increment is *deferred* —
/// it rides the next pong to the controller, gets a global sequence
/// number, and applies on every host in the same order, so all hosts
/// converge on identical counts regardless of arrival order. Until its
/// own write comes back a host steers on slightly stale counts — the
/// trade the paper makes for a synchronization-free data path. Backend
/// addresses must be non-zero (0 marks "not yet picked").
pub fn conn_steer() -> FunctionBundle {
    FunctionBundle {
        name: "conn-steer",
        paper_ref: "Ananta-style LB [42] over sequenced state (§3.3)",
        source: CONN_STEER_SRC.to_string(),
        schema: conn_steer_schema,
        native: conn_steer_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// L4 load balancing — Ananta-style VIP→DIP with per-flow NAT state
// ======================================================================

fn l4lb_schema() -> Schema {
    Schema::new()
        .packet_field("KeyHash", Access::ReadOnly, Some(HeaderField::MetaKeyHash))
        .packet_field("Dst", Access::ReadWrite, Some(HeaderField::Ipv4Dst))
        .msg_field("State", Access::ReadWrite)
        .msg_field("Dip", Access::ReadWrite)
        .global_array("Dips", &[""], Access::ReadOnly)
        .global_array("Active", &[""], Access::ReadWrite)
        .replicated(ReplMode::MergedSum)
}

/// Ananta's data path as a two-state machine: the first packet of a flow
/// runs rendezvous hashing over the DIP pool and records the pick in
/// per-flow NAT state; every later packet replays the cached translation.
fn l4lb_machine() -> Xfsm {
    Xfsm::new("l4lb")
        .state_in_msg("State")
        .array("dips", "Dips")
        .array("active", "Active")
        .helper(Helper::arg_max_hash("best", "dips", pkt("KeyHash")))
        .state(XState::new(0, "select").otherwise(
            vec![
                XAction::bind("pick", Helper::arg_max_hash_call("best")),
                XAction::set_arr(
                    "active",
                    local("pick"),
                    arr("active", local("pick")).add(lit(1)),
                ),
                XAction::set_msg("Dip", arr("dips", local("pick"))),
            ],
            Some(1),
        ))
        .state(XState::new(1, "nat"))
        .epilogue(XAction::set_pkt("Dst", msg("Dip")))
}

fn l4lb_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        if env.msg(0)? == 0 {
            let key = env.pkt(0)?;
            let n = env.arr_len(0)?;
            let mut champ = 0i64;
            let mut score = -1i64;
            for i in 0..n {
                let dip = env.arr(0, i)?;
                let s = env.hash(key, dip);
                if s > score {
                    champ = i;
                    score = s;
                }
            }
            let bumped = env.arr(1, champ)? + 1;
            env.set_arr(1, champ, bumped)?;
            let dip = env.arr(0, champ)?;
            env.set_msg(1, dip)?;
            env.set_msg(0, 1)?;
        }
        let dip = env.msg(1)?;
        env.set_pkt(1, dip)?;
        Ok(Outcome::Done)
    })
}

/// Ananta-style L4 load balancing: each flow's first packet picks a DIP by
/// rendezvous hashing (same key + same pool ⇒ same winner on every host,
/// no coordination) and bumps that DIP's fleet-wide active-flow gauge —
/// `Active` is `replicated(merged)`, so reads see the whole fleet's count
/// while writes stay local. Later packets replay the per-flow NAT state.
pub fn l4lb() -> FunctionBundle {
    FunctionBundle {
        name: "l4lb",
        paper_ref: "Ananta-style L4 LB [42]",
        source: l4lb_machine().render(),
        schema: l4lb_schema,
        native: l4lb_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// CONGA/Duet-style path selection — per-path DRE fed by ack events
// ======================================================================

fn conga_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .packet_field("Direction", Access::ReadOnly, Some(HeaderField::Direction))
        .packet_field("PathLabel", Access::ReadWrite, Some(HeaderField::Dot1qVid))
        .msg_field("Path", Access::ReadWrite)
        .global_array("PathDre", &[""], Access::ReadWrite)
}

/// Congestion-aware path selection: outbound packets go to the path with
/// the smallest discounting-rate-estimator value and charge it; ack-side
/// (ingress) events drain the flow's recorded path. One state, two events.
fn conga_machine() -> Xfsm {
    Xfsm::new("conga")
        .array("dre", "PathDre")
        .helper(Helper::arg_min("least", "dre"))
        .state(
            XState::new(0, "route")
                .on(
                    pkt("Direction").eq(lit(0)),
                    vec![
                        XAction::bind("pick", Helper::arg_min_call("least")),
                        XAction::set_arr(
                            "dre",
                            local("pick"),
                            arr("dre", local("pick")).add(pkt("Size")),
                        ),
                        XAction::set_msg("Path", local("pick")),
                        XAction::set_pkt("PathLabel", local("pick")),
                    ],
                    None,
                )
                .on(
                    pkt("Direction")
                        .eq(lit(1))
                        .and(msg("Path").lt(arr_len("dre"))),
                    vec![
                        XAction::bind("drained", arr("dre", msg("Path")).sub(pkt("Size"))),
                        XAction::set_arr(
                            "dre",
                            msg("Path"),
                            local("drained").lt(lit(0)).pick(lit(0), local("drained")),
                        ),
                    ],
                    None,
                ),
        )
}

fn conga_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let direction = env.pkt(1)?;
        if direction == 0 {
            let n = env.arr_len(0)?;
            let mut pick = 0i64;
            for i in 1..n {
                if env.arr(0, i)? < env.arr(0, pick)? {
                    pick = i;
                }
            }
            let charged = env.arr(0, pick)? + env.pkt(0)?;
            env.set_arr(0, pick, charged)?;
            env.set_msg(0, pick)?;
            env.set_pkt(2, pick)?;
        } else if direction == 1 && env.msg(0)? < env.arr_len(0)? {
            let path = env.msg(0)?;
            let drained = env.arr(0, path)? - env.pkt(0)?;
            env.set_arr(0, path, drained.max(0))?;
        }
        Ok(Outcome::Done)
    })
}

/// CONGA/Duet-style congestion-aware path selection: per-path DRE
/// (discounting rate estimator) gauges charged by outbound bytes and
/// drained by ack events on the flow's recorded path, with each new
/// decision steering to the least-congested path.
pub fn conga() -> FunctionBundle {
    FunctionBundle {
        name: "conga",
        paper_ref: "CONGA [4] / Duet [24] path selection",
        source: conga_machine().render(),
        schema: conga_schema,
        native: conga_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// IDS — per-flow signature scoring with a block state
// ======================================================================

fn ids_schema() -> Schema {
    Schema::new()
        .packet_field("DstPort", Access::ReadOnly, Some(HeaderField::DstPort))
        .msg_field("State", Access::ReadWrite)
        .msg_field("Score", Access::ReadWrite)
        .global_field("Threshold", Access::ReadOnly)
        .global_field("Alerts", Access::ReadWrite)
        .global_array("Sigs", &["Port", "Weight"], Access::ReadOnly)
}

/// Signature-scoring IDS: each packet's destination port is looked up in
/// the signature table and its weight added to the flow's score. The guard
/// checks the score *before* this packet's contribution, so the signature
/// walk runs exactly once per packet: a flow already over the threshold
/// drops and moves to the terminal block state, otherwise the walk's
/// weight is accumulated and crossing the threshold raises a global alert
/// (the crossing packet itself still passes; the next one blocks).
fn ids_machine() -> Xfsm {
    Xfsm::new("ids")
        .state_in_msg("State")
        .array("sigs", "Sigs")
        .helper(Helper::select(
            "lookup",
            "sigs",
            XBin::Eq,
            pkt("DstPort"),
            Some("Port"),
            Some("Weight"),
            lit(0),
        ))
        .state(
            XState::new(0, "monitor")
                .on(
                    msg("Score").ge(glob("Threshold")),
                    vec![XAction::Drop],
                    Some(1),
                )
                .otherwise(
                    vec![
                        XAction::bind("hit", msg("Score").add(Helper::select_call("lookup"))),
                        XAction::set_msg("Score", local("hit")),
                        XAction::When(
                            local("hit").ge(glob("Threshold")),
                            vec![XAction::set_glob("Alerts", glob("Alerts").add(lit(1)))],
                        ),
                    ],
                    None,
                ),
        )
        .state(XState::new(1, "block").otherwise(vec![XAction::Drop], None))
}

fn ids_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        match env.msg(0)? {
            0 => {
                if env.msg(1)? >= env.global(0)? {
                    env.set_msg(0, 1)?;
                    env.drop_packet()?;
                    return Ok(Outcome::Dropped);
                }
                let port = env.pkt(0)?;
                let n = env.arr_len(0)? / 2;
                let mut weight = 0;
                for i in 0..n {
                    if port == env.arr(0, i * 2)? {
                        weight = env.arr(0, i * 2 + 1)?;
                        break;
                    }
                }
                let hit = env.msg(1)? + weight;
                env.set_msg(1, hit)?;
                if hit >= env.global(0)? {
                    let alerts = env.global(1)? + 1;
                    env.set_global(1, alerts)?;
                }
            }
            1 => {
                env.drop_packet()?;
                return Ok(Outcome::Dropped);
            }
            _ => {}
        }
        Ok(Outcome::Done)
    })
}

/// Intrusion detection as Table 1 frames it: per-flow suspicion scoring
/// over a controller-pushed signature table, alert + block on crossing the
/// threshold.
pub fn ids() -> FunctionBundle {
    FunctionBundle {
        name: "ids",
        paper_ref: "IDS [19] signature scoring",
        source: ids_machine().render(),
        schema: ids_schema,
        native: ids_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// Stateful firewall — conntrack with an idle timeout
// ======================================================================

fn stateful_firewall_schema() -> Schema {
    Schema::new()
        .packet_field("Direction", Access::ReadOnly, Some(HeaderField::Direction))
        .msg_field("State", Access::ReadWrite)
        .msg_field("Seen", Access::ReadWrite)
        .global_field("IdleNs", Access::ReadOnly)
        .global_field("Blocked", Access::ReadWrite)
}

/// [`conntrack`] plus the piece every real firewall needs: an idle
/// timeout, declared with the XFSM timeout row. A flow idle for longer
/// than `IdleNs` is conservatively closed — the packet that observes the
/// expiry is dropped (and counted), and the flow must re-establish with an
/// outbound packet.
fn stateful_firewall_machine() -> Xfsm {
    Xfsm::new("stateful-firewall")
        .state_in_msg("State")
        .state(
            XState::new(0, "new")
                .on(
                    pkt("Direction").eq(lit(0)),
                    vec![XAction::set_msg("Seen", now())],
                    Some(1),
                )
                .otherwise(
                    vec![
                        XAction::set_glob("Blocked", glob("Blocked").add(lit(1))),
                        XAction::Drop,
                    ],
                    None,
                ),
        )
        .state(
            XState::new(1, "established")
                .timeout(
                    msg("Seen"),
                    glob("IdleNs"),
                    vec![
                        XAction::set_glob("Blocked", glob("Blocked").add(lit(1))),
                        XAction::Drop,
                    ],
                    Some(0),
                )
                .otherwise(vec![XAction::set_msg("Seen", now())], None),
        )
}

fn stateful_firewall_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        match env.msg(0)? {
            0 => {
                if env.pkt(0)? == 0 {
                    let t = env.now_ns();
                    env.set_msg(1, t)?;
                    env.set_msg(0, 1)?;
                } else {
                    let blocked = env.global(1)? + 1;
                    env.set_global(1, blocked)?;
                    env.drop_packet()?;
                    return Ok(Outcome::Dropped);
                }
            }
            1 => {
                // mirror the machine's draw order: the timeout guard reads
                // the clock once, the refresh row reads it again
                let t = env.now_ns();
                if t - env.msg(1)? >= env.global(0)? {
                    let blocked = env.global(1)? + 1;
                    env.set_global(1, blocked)?;
                    env.set_msg(0, 0)?;
                    env.drop_packet()?;
                    return Ok(Outcome::Dropped);
                }
                let t = env.now_ns();
                env.set_msg(1, t)?;
            }
            _ => {}
        }
        Ok(Outcome::Done)
    })
}

/// Stateful firewall (Table 1's conn-tracking row with lifecycle): inbound
/// packets only pass on flows an outbound packet established, and flows
/// idle past `IdleNs` are closed by the declared timeout transition.
pub fn stateful_firewall() -> FunctionBundle {
    FunctionBundle {
        name: "stateful-firewall",
        paper_ref: "stateful firewall [19] with idle timeout",
        source: stateful_firewall_machine().render(),
        schema: stateful_firewall_schema,
        native: stateful_firewall_native,
        concurrency: Concurrency::Serialized,
    }
}

// ======================================================================
// Explicit rate control — windowed byte budget
// ======================================================================

fn rate_limit_schema() -> Schema {
    Schema::new()
        .packet_field("Size", Access::ReadOnly, Some(HeaderField::Ipv4TotalLength))
        .global_field("WindowNs", Access::ReadOnly)
        .global_field("LimitBytes", Access::ReadOnly)
        .global_field("WindowStart", Access::ReadWrite)
        .global_field("Used", Access::ReadWrite)
}

/// Tumbling-window rate limiting: the entry action rolls the window when
/// it has aged out, then a packet either fits in the remaining budget or
/// is dropped.
fn rate_limit_machine() -> Xfsm {
    Xfsm::new("rate-limit")
        .entry(XAction::When(
            now().sub(glob("WindowStart")).ge(glob("WindowNs")),
            vec![
                XAction::set_glob("WindowStart", now()),
                XAction::set_glob("Used", lit(0)),
            ],
        ))
        .state(
            XState::new(0, "account")
                .on(
                    glob("Used").add(pkt("Size")).gt(glob("LimitBytes")),
                    vec![XAction::Drop],
                    None,
                )
                .otherwise(
                    vec![XAction::set_glob("Used", glob("Used").add(pkt("Size")))],
                    None,
                ),
        )
}

fn rate_limit_native() -> NativeFn {
    Box::new(|env: &mut NativeEnv<'_>| -> Result<Outcome, VmError> {
        let t = env.now_ns();
        if t - env.global(2)? >= env.global(0)? {
            let start = env.now_ns();
            env.set_global(2, start)?;
            env.set_global(3, 0)?;
        }
        let size = env.pkt(0)?;
        let used = env.global(3)?;
        if used + size > env.global(1)? {
            env.drop_packet()?;
            return Ok(Outcome::Dropped);
        }
        env.set_global(3, used + size)?;
        Ok(Outcome::Done)
    })
}

/// Explicit rate control (Table 1): a per-enclave tumbling byte window —
/// packets beyond `LimitBytes` within `WindowNs` are dropped. The
/// host-local complement of [`dist_rate_limit`]'s fleet-wide budget.
pub fn rate_limit() -> FunctionBundle {
    FunctionBundle {
        name: "rate-limit",
        paper_ref: "explicit rate control (Table 1)",
        source: rate_limit_machine().render(),
        schema: rate_limit_schema,
        native: rate_limit_native,
        concurrency: Concurrency::Serialized,
    }
}

/// The whole catalogue, for Table 1 sweeps.
pub fn catalogue() -> Vec<FunctionBundle> {
    vec![
        pias(),
        pias_fig7(),
        sff(),
        fixed_priority(),
        wcmp(),
        message_wcmp(),
        pulsar(),
        replica_select(),
        port_knock(),
        flow_counter(),
        conntrack(),
        qjump(),
        dist_rate_limit(),
        conn_steer(),
        l4lb(),
        conga(),
        ids(),
        stateful_firewall(),
        rate_limit(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_core::{ClassId, Enclave, EnclaveConfig, MatchSpec, TableId};
    use netsim::{EdenMeta, Packet, SimRng, TcpHeader, Time};
    use transport::HookVerdict;

    /// Install `bundle` (given form) into a fresh enclave matching class 1,
    /// with case-study-ish state.
    fn build(bundle: &FunctionBundle, native: bool) -> Enclave {
        build_installed(
            bundle,
            if native {
                bundle.native()
            } else {
                bundle.interpreted()
            },
        )
    }

    /// Like [`build`], but with a caller-supplied form (the equivalence
    /// tests install legacy pre-XFSM programs this way).
    fn build_installed(bundle: &FunctionBundle, form: InstalledFunction) -> Enclave {
        let mut e = Enclave::new(EnclaveConfig::default());
        let f = e.install_function(form);
        e.install_rule(TableId(0), MatchSpec::Class(ClassId(1)), f);
        match bundle.name {
            "pias" | "pias-fig7" | "sff" => {
                e.set_array(f, 0, vec![10 * 1024, 7, 1024 * 1024, 5, i64::MAX, 1]);
            }
            "fixed-priority" => e.set_global(f, 0, 3),
            "wcmp" | "message-wcmp" => {
                e.set_array(f, 0, vec![101, 10, 102, 1]);
                e.set_global(f, 0, 11);
            }
            "pulsar" => e.set_array(f, 0, vec![0, 1, 2]),
            "dist-rate-limit" => {
                // budget sized so the 3000-packet agreement stream crosses
                // it mid-run and exercises the drop path in both forms
                e.set_global(f, 0, 500_000_000);
                e.set_array(f, 0, vec![0, 1, 2]);
            }
            "conn-steer" => {
                e.set_array(f, 0, vec![5, 2, 9]);
                e.set_array(f, 1, vec![71, 72, 73]);
            }
            "qjump" => e.set_array(f, 0, vec![7, 0, 4, 1, 0, -1]),
            "replica-select" => e.set_array(f, 0, vec![50, 51, 52]),
            "port-knock" => {
                e.set_global(f, 1, 1001);
                e.set_global(f, 2, 1002);
                e.set_global(f, 3, 1003);
                e.set_global(f, 4, 22);
            }
            "l4lb" => {
                e.set_array(f, 0, vec![71, 72, 73]);
                e.set_array(f, 1, vec![0, 0, 0]);
            }
            "conga" => e.set_array(f, 0, vec![5, 2, 9]),
            "ids" => {
                // ports 22 and 1001 carry weights; threshold low enough
                // that the 3000-packet stream trips flows into block
                e.set_global(f, 0, 40);
                e.set_array(f, 0, vec![22, 7, 1001, 5]);
            }
            "stateful-firewall" => {
                // the agreement stream revisits each of the 7 flows every
                // 7 ns, so a 6 ns idle expires a flow on every revisit —
                // establish and timeout both run thousands of times
                e.set_global(f, 0, 6);
            }
            "rate-limit" => {
                e.set_global(f, 0, 200); // window ns
                e.set_global(f, 1, 100_000); // bytes per window
            }
            _ => {}
        }
        e
    }

    fn packet(rng: &mut SimRng, i: u64) -> Packet {
        let mut p = Packet::tcp(
            1,
            2,
            TcpHeader {
                src_port: 40000 + (i % 5) as u16,
                dst_port: [80, 22, 1001, 1002, 1003][(rng.below(5)) as usize],
                ..Default::default()
            },
            rng.below(1400) as usize,
        );
        p.meta = Some(EdenMeta {
            classes: vec![1],
            msg_id: 1 + i % 7,
            msg_type: 1 + (rng.below(2) as i64),
            msg_size: rng.below(2_000_000) as i64,
            tenant: rng.below(3) as i64,
            key_hash: rng.next_i64(),
            msg_start: false,
        });
        p
    }

    #[test]
    fn all_bundles_compile_and_state_their_concurrency() {
        for bundle in catalogue() {
            let _ = bundle.interpreted(); // asserts concurrency internally
        }
    }

    #[test]
    fn native_and_interpreted_agree_on_random_streams() {
        for bundle in catalogue() {
            let mut interp = build(&bundle, false);
            let mut native = build(&bundle, true);
            // identical RNG seeds so stochastic functions (WCMP) agree
            let mut r1 = SimRng::new(99);
            let mut r2 = SimRng::new(99);
            let mut gen = SimRng::new(7);
            for i in 0..3000 {
                let p = packet(&mut gen, i);
                let mut a = p.clone();
                let mut b = p;
                let va = interp.process(&mut a, &mut r1, Time::from_nanos(i));
                let vb = native.process(&mut b, &mut r2, Time::from_nanos(i));
                assert_eq!(va, vb, "{}: verdict diverged at packet {i}", bundle.name);
                assert_eq!(a, b, "{}: packet state diverged at packet {i}", bundle.name);
            }
            assert_eq!(
                interp.stats.faults, 0,
                "{}: interpreted form trapped",
                bundle.name
            );
            assert_eq!(
                native.stats.faults, 0,
                "{}: native form trapped",
                bundle.name
            );
        }
    }

    #[test]
    fn wcmp_distributes_10_to_1() {
        let mut e = build(&wcmp(), false);
        let mut rng = SimRng::new(5);
        let mut gen = SimRng::new(6);
        let mut counts = [0u32; 2];
        for i in 0..11_000 {
            let mut p = packet(&mut gen, i);
            e.process(&mut p, &mut rng, Time::ZERO);
            match p.route_label() {
                101 => counts[0] += 1,
                102 => counts[1] += 1,
                other => panic!("unexpected label {other}"),
            }
        }
        assert!(counts[0] > 9_300 && counts[0] < 10_700, "{counts:?}");
    }

    #[test]
    fn message_wcmp_pins_messages_to_paths() {
        let mut e = build(&message_wcmp(), false);
        let mut rng = SimRng::new(5);
        // many packets of the same message: all take the same label
        let mut labels = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: 42,
                ..Default::default()
            });
            e.process(&mut p, &mut rng, Time::ZERO);
            labels.insert(p.route_label());
        }
        assert_eq!(labels.len(), 1, "one message, one path");

        // across many messages both paths get used
        let mut seen = std::collections::HashSet::new();
        for m in 0..200 {
            let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: 1000 + m,
                ..Default::default()
            });
            e.process(&mut p, &mut rng, Time::ZERO);
            seen.insert(p.route_label());
        }
        assert_eq!(seen.len(), 2, "different messages spread across paths");
    }

    #[test]
    fn pulsar_charges_reads_by_operation_size() {
        let mut e = build(&pulsar(), false);
        let mut rng = SimRng::new(5);
        let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
        p.meta = Some(EdenMeta {
            classes: vec![1],
            msg_id: 1,
            msg_type: MSG_TYPE_READ,
            msg_size: 65536,
            tenant: 2,
            ..Default::default()
        });
        let v = e.process(&mut p, &mut rng, Time::ZERO);
        assert_eq!(
            v,
            HookVerdict::Queue {
                queue: 2,
                charge: 65536
            }
        );

        let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
        p.meta = Some(EdenMeta {
            classes: vec![1],
            msg_id: 2,
            msg_type: MSG_TYPE_WRITE,
            msg_size: 65536,
            tenant: 0,
            ..Default::default()
        });
        let v = e.process(&mut p, &mut rng, Time::ZERO);
        assert_eq!(
            v,
            HookVerdict::Queue {
                queue: 0,
                charge: 140 // IP total length of a 100B-payload TCP packet
            }
        );
    }

    #[test]
    fn replica_select_is_stable_per_key() {
        let mut e = build(&replica_select(), false);
        let mut rng = SimRng::new(5);
        let mk = |key_hash: i64| {
            let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: 1,
                key_hash,
                ..Default::default()
            });
            p
        };
        let mut a = mk(12345);
        let mut b = mk(12345);
        e.process(&mut a, &mut rng, Time::ZERO);
        e.process(&mut b, &mut rng, Time::ZERO);
        assert_eq!(a.ip.dst, b.ip.dst, "same key, same replica");
        assert!([50, 51, 52].contains(&a.ip.dst));

        // all replicas reachable over many keys
        let mut gen = SimRng::new(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut p = mk(gen.next_i64());
            e.process(&mut p, &mut rng, Time::ZERO);
            seen.insert(p.ip.dst);
        }
        assert_eq!(seen.len(), 3);
    }

    // Pinned by the fuzz harness (exec-diff oracle): application key
    // hashes are arbitrary i64s, and a negative one used to make
    // `KeyHash % Length` negative — an out-of-bounds array index that
    // trapped both forms. The remainder is now folded into [0, Length).
    #[test]
    fn replica_select_handles_negative_key_hashes() {
        for native in [false, true] {
            let mut e = build(&replica_select(), native);
            let mut rng = SimRng::new(5);
            for (i, key_hash) in [-1, i64::MIN, -8_399_315_476_207_701_023, -3]
                .into_iter()
                .enumerate()
            {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: 1 + i as u64,
                    key_hash,
                    ..Default::default()
                });
                let v = e.process(&mut p, &mut rng, Time::ZERO);
                assert_eq!(v, HookVerdict::Pass, "native={native} hash={key_hash}");
                assert!(
                    [50, 51, 52].contains(&p.ip.dst),
                    "native={native} hash={key_hash} routed to {}",
                    p.ip.dst
                );
            }
            assert_eq!(e.stats.faults, 0, "native={native}: negative hash trapped");
        }
    }

    #[test]
    fn port_knock_state_machine() {
        let mut e = build(&port_knock(), false);
        let mut rng = SimRng::new(5);
        let knock = |e: &mut Enclave, rng: &mut SimRng, port: u16| {
            let mut p = Packet::tcp(
                1,
                2,
                TcpHeader {
                    dst_port: port,
                    ..Default::default()
                },
                0,
            );
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: u64::from(port),
                ..Default::default()
            });
            e.process(&mut p, rng, Time::ZERO)
        };

        // protected port before the knock: dropped
        assert_eq!(knock(&mut e, &mut rng, 22), HookVerdict::Drop);
        // correct sequence
        assert_eq!(knock(&mut e, &mut rng, 1001), HookVerdict::Pass);
        assert_eq!(knock(&mut e, &mut rng, 1002), HookVerdict::Pass);
        assert_eq!(knock(&mut e, &mut rng, 1003), HookVerdict::Pass);
        // now open
        assert_eq!(knock(&mut e, &mut rng, 22), HookVerdict::Pass);

        // wrong port mid-sequence resets
        let mut e = build(&port_knock(), false);
        assert_eq!(knock(&mut e, &mut rng, 1001), HookVerdict::Pass);
        assert_eq!(knock(&mut e, &mut rng, 9999), HookVerdict::Pass); // resets
        assert_eq!(knock(&mut e, &mut rng, 1002), HookVerdict::Pass); // ignored
        assert_eq!(knock(&mut e, &mut rng, 1003), HookVerdict::Pass); // ignored
        assert_eq!(
            knock(&mut e, &mut rng, 22),
            HookVerdict::Drop,
            "still locked"
        );
    }

    #[test]
    fn dist_rate_limit_enforces_fleet_budget_via_replica_view() {
        for native in [false, true] {
            let mut e = build(&dist_rate_limit(), native);
            let f = eden_core::FuncId(0);
            e.set_global(f, 0, 10_000); // shrink the fleet-wide budget
            let mut rng = SimRng::new(5);
            let mk = |i: u64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: 1 + i,
                    msg_type: MSG_TYPE_WRITE,
                    tenant: 1,
                    ..Default::default()
                });
                p
            };

            // within budget: queued at the tenant's limiter, charged 1040
            let mut p = mk(0);
            let v = e.process(&mut p, &mut rng, Time::ZERO);
            assert_eq!(
                v,
                HookVerdict::Queue {
                    queue: 1,
                    charge: 1040
                },
                "native={native}"
            );

            // a controller view reports the rest of the fleet spent 9000
            e.apply_repl_view(
                &eden_repl::FuncView {
                    func: 0,
                    version: 1,
                    remote: vec![(1, 9_000)],
                    ..Default::default()
                },
                0,
            );
            assert_eq!(e.global_effective(f, 1), 10_040);
            assert_eq!(e.global(f, 1), 1_040, "local contribution unchanged");

            // the same packet now exceeds the *fleet-wide* budget: dropped
            // on purely local state, no coordination on the drop path
            let mut p = mk(1);
            let v = e.process(&mut p, &mut rng, Time::ZERO);
            assert_eq!(v, HookVerdict::Drop, "native={native}");
            assert_eq!(e.stats.faults, 0);
        }
    }

    #[test]
    fn conn_steer_picks_least_loaded_and_defers_the_increment() {
        for native in [false, true] {
            let mut e = build(&conn_steer(), native);
            let f = eden_core::FuncId(0);
            let mut rng = SimRng::new(5);
            let mk = |m: u64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: m,
                    ..Default::default()
                });
                p
            };

            // Conns = [5, 2, 9] → backend 1 (addr 72) has the fewest
            let mut p = mk(1);
            e.process(&mut p, &mut rng, Time::ZERO);
            assert_eq!(p.ip.dst, 72, "native={native}");

            // the increment queued for controller ordering; the local
            // count is unchanged until the sequenced entry comes back
            assert_eq!(e.array_effective(f, 0, 1), 2, "native={native}");
            assert_eq!(e.repl_host(0).unwrap().pending_len(), 1);

            // a second flow decides on the same (stale) counts — the
            // documented trade for a synchronization-free data path
            let mut p = mk(2);
            e.process(&mut p, &mut rng, Time::ZERO);
            assert_eq!(p.ip.dst, 72, "native={native}");
            assert_eq!(e.repl_host(0).unwrap().pending_len(), 2);

            // later packets of flow 1 stick to the cached pick
            let mut p = mk(1);
            e.process(&mut p, &mut rng, Time::ZERO);
            assert_eq!(p.ip.dst, 72, "native={native}");
            assert_eq!(e.repl_host(0).unwrap().pending_len(), 2, "no new op");
            assert_eq!(e.stats.faults, 0);
        }
    }

    #[test]
    fn flow_counter_counts() {
        let mut e = build(&flow_counter(), false);
        let mut rng = SimRng::new(5);
        for i in 0..10 {
            let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: 1 + (i % 2),
                ..Default::default()
            });
            e.process(&mut p, &mut rng, Time::ZERO);
        }
        // globals: slot 0 TotalBytes, slot 1 TotalPackets
        let f = eden_core::FuncId(0);
        assert_eq!(e.global(f, 1), 10);
        assert_eq!(e.global(f, 0), 10 * 1040);
    }

    #[test]
    fn catalogue_is_pinned_and_names_are_unique() {
        let c = catalogue();
        assert!(c.len() >= 18, "Table 1 catalogue shrank to {}", c.len());
        assert_eq!(
            c.len(),
            19,
            "catalogue grew — update this pin and the docs matrix"
        );
        let names: std::collections::HashSet<&str> = c.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), c.len(), "duplicate bundle names");
    }

    #[test]
    fn l4lb_pins_flows_to_dips_and_gauges_active_flows() {
        for native in [false, true] {
            let mut e = build(&l4lb(), native);
            let f = eden_core::FuncId(0);
            let mut rng = SimRng::new(5);
            let mk = |m: u64, key_hash: i64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: m,
                    key_hash,
                    ..Default::default()
                });
                p
            };

            // first packet of a flow picks a DIP by rendezvous hash
            let mut a = mk(1, 12345);
            e.process(&mut a, &mut rng, Time::ZERO);
            assert!([71, 72, 73].contains(&a.ip.dst), "native={native}");

            // later packets replay the NAT state even if the key changes
            let mut b = mk(1, 999);
            e.process(&mut b, &mut rng, Time::ZERO);
            assert_eq!(a.ip.dst, b.ip.dst, "native={native}");

            // a second flow with the same key agrees (rendezvous is
            // deterministic per key), and the gauge counts both flows
            let mut c = mk(2, 12345);
            e.process(&mut c, &mut rng, Time::ZERO);
            assert_eq!(c.ip.dst, a.ip.dst, "native={native}");
            let total: i64 = (0..3).map(|i| e.array_effective(f, 1, i)).sum();
            assert_eq!(total, 2, "native={native}: one bump per flow");
            assert_eq!(e.stats.faults, 0, "native={native}");
        }
    }

    #[test]
    fn conga_steers_to_least_loaded_path() {
        for native in [false, true] {
            let mut e = build(&conga(), native);
            let mut rng = SimRng::new(5);
            let mut send = |e: &mut Enclave, m: u64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: m,
                    ..Default::default()
                });
                e.process(&mut p, &mut rng, Time::ZERO);
                p.route_label()
            };
            // DRE starts [5, 2, 9]: path 1 is least loaded, then the
            // 1040-byte charge makes it [5, 1042, 9] so path 0 wins, then
            // [1045, 1042, 9] leaves path 2
            assert_eq!(send(&mut e, 1), 1, "native={native}");
            assert_eq!(send(&mut e, 2), 0, "native={native}");
            assert_eq!(send(&mut e, 3), 2, "native={native}");
            assert_eq!(e.stats.faults, 0, "native={native}");
        }
    }

    #[test]
    fn ids_blocks_a_flow_whose_score_crosses_the_threshold() {
        for native in [false, true] {
            let mut e = build(&ids(), native);
            let f = eden_core::FuncId(0);
            let mut rng = SimRng::new(5);
            let mut send = |e: &mut Enclave, m: u64, port: u16| {
                let mut p = Packet::tcp(
                    1,
                    2,
                    TcpHeader {
                        dst_port: port,
                        ..Default::default()
                    },
                    100,
                );
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: m,
                    ..Default::default()
                });
                e.process(&mut p, &mut rng, Time::ZERO)
            };
            // port 22 carries weight 7; packet 6 crosses the threshold
            // (score reaches 42 ≥ 40) — it still passes but raises the
            // alert; every later packet of the flow drops, even on
            // unscored ports
            for i in 0..6 {
                assert_eq!(
                    send(&mut e, 1, 22),
                    HookVerdict::Pass,
                    "native={native} i={i}"
                );
            }
            assert_eq!(e.global(f, 1), 1, "native={native}: one alert");
            assert_eq!(send(&mut e, 1, 22), HookVerdict::Drop, "native={native}");
            assert_eq!(send(&mut e, 1, 80), HookVerdict::Drop, "native={native}");
            assert_eq!(e.global(f, 1), 1, "native={native}: still one alert");

            // an unrelated flow is unaffected
            assert_eq!(send(&mut e, 2, 80), HookVerdict::Pass, "native={native}");
            assert_eq!(e.stats.faults, 0, "native={native}");
        }
    }

    #[test]
    fn stateful_firewall_times_idle_flows_out() {
        for native in [false, true] {
            let mut e = build(&stateful_firewall(), native);
            let f = eden_core::FuncId(0);
            let mut rng = SimRng::new(5);
            let mut send = |e: &mut Enclave, t: u64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 100);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: 1,
                    ..Default::default()
                });
                e.process(&mut p, &mut rng, Time::from_nanos(t))
            };
            // establish at t=0, refresh at t=5 (within the 6 ns idle)
            assert_eq!(send(&mut e, 0), HookVerdict::Pass, "native={native}");
            assert_eq!(send(&mut e, 5), HookVerdict::Pass, "native={native}");
            // t=20 observes a 15 ns gap: the timeout row fires — drop,
            // count, back to NEW
            assert_eq!(send(&mut e, 20), HookVerdict::Drop, "native={native}");
            assert_eq!(e.global(f, 1), 1, "native={native}: blocked count");
            // the next outbound packet re-establishes
            assert_eq!(send(&mut e, 21), HookVerdict::Pass, "native={native}");
            assert_eq!(e.stats.faults, 0, "native={native}");
        }
    }

    #[test]
    fn rate_limit_enforces_the_window_budget() {
        for native in [false, true] {
            let mut e = build(&rate_limit(), native);
            let mut rng = SimRng::new(5);
            let mut send = |e: &mut Enclave, i: u64, t: u64| {
                let mut p = Packet::tcp(1, 2, TcpHeader::default(), 1000);
                p.meta = Some(EdenMeta {
                    classes: vec![1],
                    msg_id: 1 + i,
                    ..Default::default()
                });
                e.process(&mut p, &mut rng, Time::from_nanos(t))
            };
            // 96 × 1040-byte packets fit the 100 kB window; the 97th trips
            for i in 0..96 {
                assert_eq!(
                    send(&mut e, i, 1),
                    HookVerdict::Pass,
                    "native={native} i={i}"
                );
            }
            assert_eq!(send(&mut e, 96, 1), HookVerdict::Drop, "native={native}");
            // a fresh window admits traffic again
            assert_eq!(send(&mut e, 97, 300), HookVerdict::Pass, "native={native}");
            assert_eq!(e.stats.faults, 0, "native={native}");
        }
    }

    /// Satellite: the XFSM-lowered programs must be observationally
    /// equivalent to the pre-refactor hand-rolled sources — verdicts,
    /// header writes, message/global state, punts, and RNG draw counts —
    /// on random packet streams, serial and batched, against both the
    /// legacy interpreter form and the (unchanged) native form.
    mod xfsm_equivalence {
        use super::*;
        use eden_core::FuncId;
        use proptest::prelude::*;

        fn legacy_source(name: &str) -> &'static str {
            match name {
                "pias" => PIAS_LEGACY_SRC,
                "pias-fig7" => PIAS_FIG7_LEGACY_SRC,
                "pulsar" => PULSAR_LEGACY_SRC,
                "qjump" => QJUMP_LEGACY_SRC,
                "port-knock" => PORT_KNOCK_LEGACY_SRC,
                "conntrack" => CONNTRACK_LEGACY_SRC,
                other => panic!("no legacy oracle for {other}"),
            }
        }

        fn refactored() -> Vec<FunctionBundle> {
            vec![
                pias(),
                pias_fig7(),
                pulsar(),
                qjump(),
                port_knock(),
                conntrack(),
            ]
        }

        /// The legacy program compiled against the bundle's (unchanged)
        /// schema — same concurrency class, same bindings.
        fn legacy_form(bundle: &FunctionBundle) -> InstalledFunction {
            let src = legacy_source(bundle.name);
            let compiled = compile(bundle.name, src, &bundle.schema())
                .unwrap_or_else(|e| panic!("legacy {}: {}", bundle.name, e.render(src)));
            assert_eq!(compiled.concurrency, bundle.concurrency);
            InstalledFunction::interpreted(bundle.name, compiled)
        }

        #[derive(Debug, Clone)]
        struct Spec {
            port_idx: usize,
            payload: usize,
            msg: u64,
            msg_type: i64,
            msg_size: i64,
            tenant: i64,
            key_hash: i64,
        }

        fn spec() -> impl Strategy<Value = Spec> {
            (
                0usize..5,
                0usize..1400,
                1u64..8,
                1i64..3,
                0i64..2_000_000,
                0i64..3,
                any::<i64>(),
            )
                .prop_map(
                    |(port_idx, payload, msg, msg_type, msg_size, tenant, key_hash)| Spec {
                        port_idx,
                        payload,
                        msg,
                        msg_type,
                        msg_size,
                        tenant,
                        key_hash,
                    },
                )
        }

        fn mk_packet(s: &Spec) -> Packet {
            let mut p = Packet::tcp(
                1,
                2,
                TcpHeader {
                    src_port: 40000,
                    dst_port: [80, 22, 1001, 1002, 1003][s.port_idx],
                    ..Default::default()
                },
                s.payload,
            );
            p.meta = Some(EdenMeta {
                classes: vec![1],
                msg_id: s.msg,
                msg_type: s.msg_type,
                msg_size: s.msg_size,
                tenant: s.tenant,
                key_hash: s.key_hash,
                msg_start: false,
            });
            p
        }

        /// Everything observable about a run: per-packet verdicts, final
        /// header bytes, punts, and the function's whole state.
        #[derive(Debug, PartialEq)]
        struct Observed {
            verdicts: Vec<HookVerdict>,
            packets: Vec<Packet>,
            punted: Vec<Packet>,
            msg_state: Vec<(u64, Vec<i64>)>,
            global: Vec<i64>,
            arrays: Vec<Vec<i64>>,
            faults: u64,
            rng_probe: i64,
        }

        /// Run `specs` through an enclave serially (chunked timestamps
        /// matching the batch leg) or via `process_batch`.
        fn run(
            bundle: &FunctionBundle,
            form: InstalledFunction,
            specs: &[Spec],
            chunk: usize,
            batched: bool,
            seed: u64,
        ) -> Observed {
            let mut e = build_installed(bundle, form);
            let f = FuncId(0);
            let mut rng = SimRng::new(seed);
            let mut verdicts = Vec::new();
            let mut packets = Vec::new();
            for (ci, chunk_specs) in specs.chunks(chunk).enumerate() {
                let now = Time::from_nanos(1 + ci as u64);
                let mut batch: Vec<Packet> = chunk_specs.iter().map(mk_packet).collect();
                if batched {
                    verdicts.extend(e.process_batch(&mut batch, &mut rng, now));
                } else {
                    for p in batch.iter_mut() {
                        verdicts.push(e.process(p, &mut rng, now));
                    }
                }
                packets.extend(batch);
            }
            let punted = e.take_punted();
            let state = e.function_state(f);
            Observed {
                verdicts,
                packets,
                punted,
                msg_state: state.msg_dump(),
                global: state.global.clone(),
                arrays: state.arrays.clone(),
                faults: e.stats.faults,
                rng_probe: rng.next_i64(), // equal only if draw counts matched
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// XFSM ≡ legacy, interpreted, serial and batched, plus the
            /// (pre-refactor) native form as a third witness.
            #[test]
            fn xfsm_matches_legacy_on_random_streams(
                specs in proptest::collection::vec(spec(), 1..120),
                chunk in 1usize..16,
                seed in 0u64..1000,
            ) {
                for bundle in refactored() {
                    let baseline = run(&bundle, legacy_form(&bundle), &specs, chunk, false, seed);
                    let xfsm_serial = run(&bundle, bundle.interpreted(), &specs, chunk, false, seed);
                    prop_assert_eq!(&baseline, &xfsm_serial, "{}: serial", bundle.name);
                    let xfsm_batch = run(&bundle, bundle.interpreted(), &specs, chunk, true, seed);
                    prop_assert_eq!(&baseline, &xfsm_batch, "{}: batch", bundle.name);
                    let native_serial = run(&bundle, bundle.native(), &specs, chunk, false, seed);
                    prop_assert_eq!(&baseline, &native_serial, "{}: native", bundle.name);
                    let native_batch = run(&bundle, bundle.native(), &specs, chunk, true, seed);
                    prop_assert_eq!(&baseline, &native_batch, "{}: native batch", bundle.name);
                }
            }
        }
    }
}
