//! Workload generation for the evaluation.
//!
//! Case study 1 uses "a realistic request-response workload, with responses
//! reflecting the flow size distribution found in search applications
//! [2, 8]" — mostly small flows of a few packets with a heavy tail, high
//! flow arrival/termination rate. [`FlowSizeDist::web_search`] reproduces that shape
//! as an empirical CDF sampled by inverse transform (log-linear
//! interpolation between knots), after the web-search distribution used by
//! DCTCP and PIAS.

use netsim::SimRng;

/// An empirical flow-size distribution: `(size_bytes, cdf)` knots, sampled
/// by inverse transform with log-linear interpolation.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    knots: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build from `(size_bytes, cdf)` knots; cdf must start at 0, end at 1,
    /// and be non-decreasing.
    pub fn new(knots: &[(u64, f64)]) -> FlowSizeDist {
        assert!(knots.len() >= 2);
        assert_eq!(knots[0].1, 0.0, "cdf must start at 0");
        assert!((knots.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
        for w in knots.windows(2) {
            assert!(w[0].1 <= w[1].1, "cdf must be non-decreasing");
            assert!(w[0].0 < w[1].0, "sizes must be increasing");
        }
        FlowSizeDist {
            knots: knots.iter().map(|&(s, c)| (s as f64, c)).collect(),
        }
    }

    /// The web-search distribution (after DCTCP / PIAS): ~60% of
    /// flows under 10 KB, a heavy tail to 30 MB, mean ≈ 1.6 MB.
    pub fn web_search() -> FlowSizeDist {
        FlowSizeDist::new(&[
            (1_000, 0.0),
            (2_000, 0.15),
            (5_000, 0.40),
            (10_000, 0.60),
            (50_000, 0.70),
            (200_000, 0.78),
            (1_000_000, 0.88),
            (5_000_000, 0.95),
            (10_000_000, 0.98),
            (30_000_000, 1.0),
        ])
    }

    /// Sample one flow size in bytes.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        let idx = self
            .knots
            .windows(2)
            .position(|w| u <= w[1].1)
            .unwrap_or(self.knots.len() - 2);
        let (s0, c0) = self.knots[idx];
        let (s1, c1) = self.knots[idx + 1];
        if c1 <= c0 {
            return s1 as u64;
        }
        let t = (u - c0) / (c1 - c0);
        // log-linear interpolation matches heavy-tailed shapes better
        let ls = s0.ln() + t * (s1.ln() - s0.ln());
        ls.exp().round().max(1.0) as u64
    }

    /// Mean flow size by numeric integration over many samples (testing &
    /// load planning).
    pub fn empirical_mean(&self, rng: &mut SimRng, samples: usize) -> f64 {
        let total: f64 = (0..samples).map(|_| self.sample(rng) as f64).sum();
        total / samples as f64
    }
}

/// Poisson arrival process: exponential inter-arrival gaps with a given
/// mean rate (flows/second).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_gap_ns: f64,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_sec`.
    pub fn new(rate_per_sec: f64) -> PoissonArrivals {
        assert!(rate_per_sec > 0.0);
        PoissonArrivals {
            mean_gap_ns: 1e9 / rate_per_sec,
        }
    }

    /// The arrival rate that drives a link of `link_bps` at `load`
    /// utilization with flows of `mean_flow_bytes`.
    pub fn for_load(link_bps: f64, load: f64, mean_flow_bytes: f64) -> PoissonArrivals {
        assert!(load > 0.0 && load < 1.0);
        let flow_bits = mean_flow_bytes * 8.0;
        PoissonArrivals::new(link_bps * load / flow_bits)
    }

    /// Sample the next inter-arrival gap in nanoseconds (≥ 1).
    pub fn next_gap_ns(&self, rng: &mut SimRng) -> u64 {
        (rng.exponential(self.mean_gap_ns).round() as u64).max(1)
    }
}

/// Flow-class boundaries of case study 1 (§5.1): small (<10 KB),
/// intermediate (10 KB–1 MB), background (everything larger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    Small,
    Intermediate,
    Background,
}

/// Classify a flow size per the case-study boundaries.
pub fn flow_class(bytes: u64) -> FlowClass {
    if bytes < 10 * 1024 {
        FlowClass::Small
    } else if bytes < 1024 * 1024 {
        FlowClass::Intermediate
    } else {
        FlowClass::Background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_within_support() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1_000..=30_000_000).contains(&s), "{s}");
        }
    }

    #[test]
    fn small_flow_fraction_matches_cdf() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) <= 10_000).count() as f64 / n as f64;
        assert!((small - 0.60).abs() < 0.02, "small fraction {small}");
    }

    #[test]
    fn mean_is_heavy_tail_dominated() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(3);
        let mean = d.empirical_mean(&mut rng, 50_000);
        // mean is far above the median (~7 KB): the tail carries the bytes
        assert!(mean > 500_000.0, "mean {mean}");
        assert!(mean < 3_000_000.0, "mean {mean}");
    }

    #[test]
    fn poisson_rate_for_load() {
        // 10G at 70% with 1 MB flows → 875 flows/s → mean gap ~1.14ms
        let p = PoissonArrivals::for_load(10e9, 0.7, 1e6);
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean_gap = total as f64 / n as f64;
        assert!((mean_gap - 1.142e6).abs() < 0.05e6, "mean gap {mean_gap}");
    }

    #[test]
    fn flow_classes_split_at_case_study_boundaries() {
        assert_eq!(flow_class(1_000), FlowClass::Small);
        assert_eq!(flow_class(10 * 1024), FlowClass::Intermediate);
        assert_eq!(flow_class(1024 * 1024), FlowClass::Background);
    }

    #[test]
    #[should_panic(expected = "cdf must start at 0")]
    fn bad_cdf_rejected() {
        let _ = FlowSizeDist::new(&[(1, 0.5), (2, 1.0)]);
    }
}
