//! # eden-apps — stages, workloads, and the network-function library
//!
//! Everything above the architecture layer that the paper's evaluation
//! needs:
//!
//! * [`functions`] — the Table 1 catalogue: every network function the
//!   paper says Eden supports out of the box, each in two semantically
//!   identical forms: DSL source (compiled and interpreted — "Eden") and a
//!   native Rust closure (the evaluation's "native" baseline).
//! * [`stages`] — ready-made stages with the classification surfaces of
//!   Table 2: a memcached-like key-value stage, an HTTP-library stage, and
//!   a storage-IO stage.
//! * [`workload`] — flow-size distributions (a search-like heavy-tailed
//!   mix after the DCTCP/PIAS workloads), Poisson arrivals, and helpers.
//! * [`apps`] — simulated applications driving the case studies: a
//!   request-response worker (case study 1), bulk senders (case study 2),
//!   and a storage server with tenant clients (case study 3).

pub mod apps;
pub mod functions;
pub mod stages;
pub mod workload;

pub use functions::FunctionBundle;
